//! Mapped LUT/flip-flop network.
//!
//! A [`LutNetwork`] is the output of technology mapping: a sequential
//! network of k-input LUTs and D flip-flops. It is the input of the NanoMap
//! flow proper — plane extraction, folding-level selection, scheduling,
//! clustering, placement and routing all operate on this structure (or
//! views of it).
//!
//! Each LUT optionally records its *origin*: the RTL module instance it was
//! expanded from and its logic depth inside that module. Origins drive the
//! LUT-cluster partitioning of Section 3 of the paper.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::ids::{FfId, InputId, LutId, ModuleId};
use crate::truth::TruthTable;

/// A single-bit signal source in a [`LutNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SignalRef {
    /// A primary input bit.
    Input(InputId),
    /// The output of a LUT.
    Lut(LutId),
    /// The Q output of a flip-flop.
    Ff(FfId),
    /// A constant.
    Const(bool),
}

/// Provenance of a LUT: which RTL module instance produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LutOrigin {
    /// The originating module instance.
    pub module: ModuleId,
    /// 1-based logic depth of this LUT inside the module.
    pub depth_in_module: u32,
}

/// A configured look-up table.
#[derive(Debug, Clone)]
pub struct Lut {
    /// The Boolean function; arity equals `inputs.len()`.
    pub truth: TruthTable,
    /// Input connections, variable 0 first.
    pub inputs: Vec<SignalRef>,
    /// RTL provenance, if expanded from a module.
    pub origin: Option<LutOrigin>,
    /// Optional diagnostic name.
    pub name: Option<String>,
}

/// A D flip-flop.
#[derive(Debug, Clone)]
pub struct FlipFlop {
    /// The D input.
    pub d: SignalRef,
    /// Optional diagnostic name (e.g. `reg1[3]`).
    pub name: Option<String>,
    /// Register bank this bit belongs to. An RTL register levelizes as a
    /// unit (the paper levelizes word-level registers, Section 3);
    /// bank-less flip-flops levelize individually.
    pub bank: Option<u32>,
}

/// A mapped network of LUTs and flip-flops.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::{LutNetwork, SignalRef, TruthTable};
///
/// let mut net = LutNetwork::new("toggle");
/// let ff = net.add_ff(SignalRef::Const(false), Some("t".into()));
/// let inv = net.add_lut(TruthTable::inverter(), vec![SignalRef::Ff(ff)]);
/// net.set_ff_input(ff, inv);
/// net.add_output("q", SignalRef::Ff(ff));
/// assert_eq!(net.num_luts(), 1);
/// assert_eq!(net.num_ffs(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LutNetwork {
    name: String,
    input_names: Vec<String>,
    outputs: Vec<(String, SignalRef)>,
    luts: Vec<Lut>,
    ffs: Vec<FlipFlop>,
    /// Names of module instances referenced by [`LutOrigin::module`].
    module_names: Vec<String>,
    /// Names of flip-flop banks referenced by [`FlipFlop::bank`].
    bank_names: Vec<String>,
}

impl LutNetwork {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input bit, returning its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalRef {
        let id = InputId::new(self.input_names.len());
        self.input_names.push(name.into());
        SignalRef::Input(id)
    }

    /// Adds a LUT with no provenance, returning its output signal.
    ///
    /// # Panics
    ///
    /// Panics if the truth-table arity differs from `inputs.len()`.
    pub fn add_lut(&mut self, truth: TruthTable, inputs: Vec<SignalRef>) -> SignalRef {
        self.add_lut_full(truth, inputs, None, None)
    }

    /// Adds a LUT with full metadata, returning its output signal.
    ///
    /// # Panics
    ///
    /// Panics if the truth-table arity differs from `inputs.len()`.
    pub fn add_lut_full(
        &mut self,
        truth: TruthTable,
        inputs: Vec<SignalRef>,
        origin: Option<LutOrigin>,
        name: Option<String>,
    ) -> SignalRef {
        assert_eq!(
            truth.num_inputs() as usize,
            inputs.len(),
            "LUT arity mismatch"
        );
        let id = LutId::new(self.luts.len());
        self.luts.push(Lut {
            truth,
            inputs,
            origin,
            name,
        });
        SignalRef::Lut(id)
    }

    /// Adds a flip-flop (D connection may be fixed later), returning its id.
    pub fn add_ff(&mut self, d: SignalRef, name: Option<String>) -> FfId {
        self.add_ff_in_bank(d, name, None)
    }

    /// Adds a flip-flop belonging to a register bank (see
    /// [`Self::add_bank`]), returning its id.
    pub fn add_ff_in_bank(
        &mut self,
        d: SignalRef,
        name: Option<String>,
        bank: Option<u32>,
    ) -> FfId {
        let id = FfId::new(self.ffs.len());
        self.ffs.push(FlipFlop { d, name, bank });
        id
    }

    /// Registers a named flip-flop bank (an RTL register), returning the
    /// bank id used by [`Self::add_ff_in_bank`].
    pub fn add_bank(&mut self, name: impl Into<String>) -> u32 {
        self.bank_names.push(name.into());
        (self.bank_names.len() - 1) as u32
    }

    /// Name of a registered flip-flop bank.
    pub fn bank_name(&self, bank: u32) -> &str {
        &self.bank_names[bank as usize]
    }

    /// Number of registered flip-flop banks.
    pub fn num_banks(&self) -> usize {
        self.bank_names.len()
    }

    /// Re-targets a flip-flop's D input (used when closing feedback loops).
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    pub fn set_ff_input(&mut self, ff: FfId, d: SignalRef) {
        self.ffs[ff.index()].d = d;
    }

    /// Updates the `depth_in_module` of a LUT's origin, if it has one.
    ///
    /// Technology mapping fixes up module depths in a final pass once the
    /// whole network exists; this is the only mutable access to origins.
    ///
    /// # Panics
    ///
    /// Panics if `lut` is out of range.
    pub fn set_lut_origin_depth(&mut self, lut: LutId, depth_in_module: u32) {
        if let Some(origin) = &mut self.luts[lut.index()].origin {
            origin.depth_in_module = depth_in_module;
        }
    }

    /// Declares a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, signal: SignalRef) {
        self.outputs.push((name.into(), signal));
    }

    /// Registers a module-instance name, returning the id used in [`LutOrigin`].
    pub fn add_module(&mut self, name: impl Into<String>) -> ModuleId {
        let id = ModuleId::new(self.module_names.len());
        self.module_names.push(name.into());
        id
    }

    /// Name of a registered module instance.
    pub fn module_name(&self, id: ModuleId) -> &str {
        &self.module_names[id.index()]
    }

    /// Number of registered module instances.
    pub fn num_modules(&self) -> usize {
        self.module_names.len()
    }

    /// Number of LUTs.
    pub fn num_luts(&self) -> usize {
        self.luts.len()
    }

    /// Number of flip-flops.
    pub fn num_ffs(&self) -> usize {
        self.ffs.len()
    }

    /// Number of primary input bits.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Primary input names in index order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Primary outputs as `(name, signal)` pairs.
    pub fn outputs(&self) -> &[(String, SignalRef)] {
        &self.outputs
    }

    /// Returns a LUT by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn lut(&self, id: LutId) -> &Lut {
        &self.luts[id.index()]
    }

    /// Returns a flip-flop by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ff(&self, id: FfId) -> &FlipFlop {
        &self.ffs[id.index()]
    }

    /// Iterates over `(id, lut)` pairs.
    pub fn luts(&self) -> impl Iterator<Item = (LutId, &Lut)> {
        self.luts
            .iter()
            .enumerate()
            .map(|(i, l)| (LutId::new(i), l))
    }

    /// Iterates over `(id, ff)` pairs.
    pub fn ffs(&self) -> impl Iterator<Item = (FfId, &FlipFlop)> {
        self.ffs.iter().enumerate().map(|(i, f)| (FfId::new(i), f))
    }

    /// A topological order of the LUTs (flip-flop outputs are sources).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if LUT-to-LUT edges form
    /// a cycle.
    pub fn topo_order(&self) -> Result<Vec<LutId>, NetlistError> {
        let n = self.luts.len();
        let mut indegree = vec![0usize; n];
        let mut fanout: Vec<Vec<LutId>> = vec![Vec::new(); n];
        for (id, lut) in self.luts() {
            for input in &lut.inputs {
                if let SignalRef::Lut(src) = input {
                    indegree[id.index()] += 1;
                    fanout[src.index()].push(id);
                }
            }
        }
        let mut queue: Vec<LutId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(LutId::new)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            order.push(id);
            for &succ in &fanout[id.index()] {
                indegree[succ.index()] -= 1;
                if indegree[succ.index()] == 0 {
                    queue.push(succ);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .expect("cycle implies residual indegree");
            let name = self.luts[stuck]
                .name
                .clone()
                .unwrap_or_else(|| format!("lut{stuck}"));
            return Err(NetlistError::CombinationalCycle { node: name });
        }
        Ok(order)
    }

    /// Validates structural sanity: arities, reference ranges, acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let check = |sig: &SignalRef, who: String| -> Result<(), NetlistError> {
            match *sig {
                SignalRef::Input(i) if i.index() >= self.input_names.len() => Err(
                    NetlistError::Invalid(format!("{who} references unknown input {i}")),
                ),
                SignalRef::Lut(l) if l.index() >= self.luts.len() => Err(NetlistError::Invalid(
                    format!("{who} references unknown lut {l}"),
                )),
                SignalRef::Ff(f) if f.index() >= self.ffs.len() => Err(NetlistError::Invalid(
                    format!("{who} references unknown ff {f}"),
                )),
                _ => Ok(()),
            }
        };
        for (id, lut) in self.luts() {
            if lut.truth.num_inputs() as usize != lut.inputs.len() {
                return Err(NetlistError::Invalid(format!("lut {id} arity mismatch")));
            }
            for input in &lut.inputs {
                check(input, format!("lut {id}"))?;
            }
            if let Some(origin) = lut.origin {
                if origin.module.index() >= self.module_names.len() {
                    return Err(NetlistError::Invalid(format!(
                        "lut {id} references unknown module {}",
                        origin.module
                    )));
                }
            }
        }
        for (id, ff) in self.ffs() {
            check(&ff.d, format!("ff {id}"))?;
        }
        for (name, sig) in &self.outputs {
            check(sig, format!("output {name}"))?;
        }
        self.topo_order()?;
        Ok(())
    }

    /// Logic depth of every LUT (1-based; LUTs fed only by inputs/FFs have
    /// depth 1), plus the network's maximum depth.
    ///
    /// # Errors
    ///
    /// Returns an error if the network is cyclic.
    pub fn lut_depths(&self) -> Result<(Vec<u32>, u32), NetlistError> {
        let order = self.topo_order()?;
        let mut depth = vec![0u32; self.luts.len()];
        let mut max = 0;
        for id in order {
            let d = 1 + self
                .lut(id)
                .inputs
                .iter()
                .map(|s| match s {
                    SignalRef::Lut(l) => depth[l.index()],
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
            depth[id.index()] = d;
            max = max.max(d);
        }
        Ok((depth, max))
    }

    /// Fanout lists: for each LUT/FF/input, the LUTs, FFs and outputs it feeds.
    pub fn fanouts(&self) -> Fanouts {
        let mut f = Fanouts {
            lut_to_luts: vec![Vec::new(); self.luts.len()],
            ff_to_luts: vec![Vec::new(); self.ffs.len()],
            lut_to_ffs: vec![Vec::new(); self.luts.len()],
        };
        for (id, lut) in self.luts() {
            for input in &lut.inputs {
                match *input {
                    SignalRef::Lut(src) => f.lut_to_luts[src.index()].push(id),
                    SignalRef::Ff(src) => f.ff_to_luts[src.index()].push(id),
                    _ => {}
                }
            }
        }
        for (id, ff) in self.ffs() {
            if let SignalRef::Lut(src) = ff.d {
                f.lut_to_ffs[src.index()].push(id);
            }
        }
        f
    }

    /// Map from LUT diagnostic name to id, for named LUTs.
    pub fn lut_names(&self) -> HashMap<&str, LutId> {
        self.luts()
            .filter_map(|(id, l)| l.name.as_deref().map(|n| (n, id)))
            .collect()
    }
}

/// Pre-computed fanout adjacency of a [`LutNetwork`].
#[derive(Debug, Clone)]
pub struct Fanouts {
    /// LUTs fed by each LUT.
    pub lut_to_luts: Vec<Vec<LutId>>,
    /// LUTs fed by each flip-flop.
    pub ff_to_luts: Vec<Vec<LutId>>,
    /// Flip-flops fed by each LUT.
    pub lut_to_ffs: Vec<Vec<FfId>>,
}

/// Cycle-accurate simulator for a [`LutNetwork`].
///
/// This is the reference executor used to verify that temporal folding
/// preserves circuit behaviour.
#[derive(Debug)]
pub struct LutSimulator<'a> {
    net: &'a LutNetwork,
    topo: Vec<LutId>,
    lut_values: Vec<bool>,
    ff_state: Vec<bool>,
    inputs: Vec<bool>,
}

impl<'a> LutSimulator<'a> {
    /// Creates a simulator with all inputs and flip-flops at zero.
    ///
    /// # Errors
    ///
    /// Returns an error if the network fails validation.
    pub fn new(net: &'a LutNetwork) -> Result<Self, NetlistError> {
        net.validate()?;
        Ok(Self {
            net,
            topo: net.topo_order()?,
            lut_values: vec![false; net.num_luts()],
            ff_state: vec![false; net.num_ffs()],
            inputs: vec![false; net.num_inputs()],
        })
    }

    /// Sets all primary inputs at once (index order).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the input count.
    pub fn set_inputs(&mut self, values: &[bool]) {
        assert_eq!(values.len(), self.net.num_inputs());
        self.inputs.copy_from_slice(values);
    }

    /// Current flip-flop state (index order).
    pub fn ff_state(&self) -> &[bool] {
        &self.ff_state
    }

    /// Overwrites the flip-flop state (index order).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the flip-flop count.
    pub fn set_ff_state(&mut self, values: &[bool]) {
        assert_eq!(values.len(), self.net.num_ffs());
        self.ff_state.copy_from_slice(values);
    }

    fn value(&self, sig: SignalRef) -> bool {
        match sig {
            SignalRef::Input(i) => self.inputs[i.index()],
            SignalRef::Lut(l) => self.lut_values[l.index()],
            SignalRef::Ff(f) => self.ff_state[f.index()],
            SignalRef::Const(c) => c,
        }
    }

    /// Evaluates all combinational logic with current inputs and state.
    pub fn eval_comb(&mut self) {
        for &id in &self.topo {
            let lut = self.net.lut(id);
            let ins: Vec<bool> = lut.inputs.iter().map(|&s| self.value(s)).collect();
            self.lut_values[id.index()] = lut.truth.eval(&ins);
        }
    }

    /// Advances one clock cycle (evaluate, then latch all flip-flops).
    pub fn step(&mut self) {
        self.eval_comb();
        let next: Vec<bool> = self.net.ffs.iter().map(|ff| self.value(ff.d)).collect();
        self.ff_state = next;
    }

    /// Reads the primary outputs (valid after [`Self::eval_comb`] or [`Self::step`]).
    pub fn outputs(&self) -> Vec<bool> {
        self.net
            .outputs
            .iter()
            .map(|&(_, s)| self.value(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_ff_oscillates() {
        let mut net = LutNetwork::new("toggle");
        let ff = net.add_ff(SignalRef::Const(false), Some("t".into()));
        let inv = net.add_lut(TruthTable::inverter(), vec![SignalRef::Ff(ff)]);
        net.set_ff_input(ff, inv);
        net.add_output("q", SignalRef::Ff(ff));
        let mut sim = LutSimulator::new(&net).unwrap();
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(sim.outputs()[0]);
            sim.step();
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn depth_computation() {
        let mut net = LutNetwork::new("chain");
        let a = net.add_input("a");
        let l1 = net.add_lut(TruthTable::buffer(), vec![a]);
        let l2 = net.add_lut(TruthTable::buffer(), vec![l1]);
        let l3 = net.add_lut(TruthTable::and(2), vec![l2, a]);
        net.add_output("y", l3);
        let (depths, max) = net.lut_depths().unwrap();
        assert_eq!(depths, vec![1, 2, 3]);
        assert_eq!(max, 3);
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let mut net = LutNetwork::new("bad");
        let a = net.add_input("a");
        // Construct an inconsistent LUT by editing internals through the
        // public API: a 2-input table with one connection is impossible via
        // add_lut (it panics), so check the panic instead.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut n2 = net.clone();
            n2.add_lut(TruthTable::and(2), vec![a]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn validate_catches_cycles() {
        let mut net = LutNetwork::new("cyc");
        // lut0 <- lut1 <- lut0
        let l0 = net.add_lut(TruthTable::buffer(), vec![SignalRef::Lut(LutId::new(1))]);
        let _l1 = net.add_lut(TruthTable::buffer(), vec![l0]);
        net.add_output("y", l0);
        assert!(matches!(
            net.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn fanouts_are_complete() {
        let mut net = LutNetwork::new("f");
        let a = net.add_input("a");
        let l0 = net.add_lut(TruthTable::buffer(), vec![a]);
        let l1 = net.add_lut(TruthTable::buffer(), vec![l0]);
        let ff = net.add_ff(l0, None);
        net.add_output("y", l1);
        net.add_output("q", SignalRef::Ff(ff));
        let f = net.fanouts();
        assert_eq!(f.lut_to_luts[0], vec![LutId::new(1)]);
        assert_eq!(f.lut_to_ffs[0], vec![FfId::new(0)]);
        assert!(f.lut_to_luts[1].is_empty());
    }

    #[test]
    fn module_registry() {
        let mut net = LutNetwork::new("m");
        let m = net.add_module("mult0");
        assert_eq!(net.module_name(m), "mult0");
        assert_eq!(net.num_modules(), 1);
    }
}
