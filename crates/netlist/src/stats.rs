//! Network statistics: the circuit parameters NanoMap's folding-level
//! selection consumes, plus structural profiles useful for debugging
//! generators and mappers.

use std::fmt;

use crate::lut::{LutNetwork, SignalRef};
use crate::plane::PlaneSet;

/// Structural statistics of a [`LutNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total LUTs.
    pub num_luts: usize,
    /// Total flip-flops.
    pub num_ffs: usize,
    /// Primary input bits.
    pub num_inputs: usize,
    /// Primary output bits.
    pub num_outputs: usize,
    /// Number of planes.
    pub num_planes: usize,
    /// `LUT_max` — the largest plane's LUT count.
    pub lut_max: usize,
    /// `depth_max` — the deepest plane's logic depth.
    pub depth_max: u32,
    /// LUT count per input arity (index = arity, 0..=6).
    pub arity_histogram: [usize; 7],
    /// Largest LUT fanout (consumers of one LUT output).
    pub max_fanout: usize,
    /// Mean LUT fanout ×1000 (fixed point, avoids float Eq).
    pub mean_fanout_milli: usize,
}

impl NetworkStats {
    /// Computes statistics for a network.
    ///
    /// # Panics
    ///
    /// Panics if the network fails validation.
    pub fn compute(net: &LutNetwork) -> Self {
        let planes = PlaneSet::extract(net).expect("stats require a valid network");
        let mut arity_histogram = [0usize; 7];
        for (_, lut) in net.luts() {
            arity_histogram[lut.inputs.len().min(6)] += 1;
        }
        let mut fanout = vec![0usize; net.num_luts()];
        let bump = |sig: &SignalRef, fanout: &mut [usize]| {
            if let SignalRef::Lut(l) = sig {
                fanout[l.index()] += 1;
            }
        };
        for (_, lut) in net.luts() {
            for input in &lut.inputs {
                bump(input, &mut fanout);
            }
        }
        for (_, ff) in net.ffs() {
            bump(&ff.d, &mut fanout);
        }
        for (_, sig) in net.outputs() {
            bump(sig, &mut fanout);
        }
        let max_fanout = fanout.iter().copied().max().unwrap_or(0);
        let total: usize = fanout.iter().sum();
        let mean_fanout_milli = if net.num_luts() == 0 {
            0
        } else {
            total * 1000 / net.num_luts()
        };
        Self {
            num_luts: net.num_luts(),
            num_ffs: net.num_ffs(),
            num_inputs: net.num_inputs(),
            num_outputs: net.outputs().len(),
            num_planes: planes.num_planes(),
            lut_max: planes.lut_max(),
            depth_max: planes.depth_max(),
            arity_histogram,
            max_fanout,
            mean_fanout_milli,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} LUTs, {} FFs, {} inputs, {} outputs",
            self.num_luts, self.num_ffs, self.num_inputs, self.num_outputs
        )?;
        writeln!(
            f,
            "{} plane(s), LUT_max {}, depth_max {}",
            self.num_planes, self.lut_max, self.depth_max
        )?;
        write!(f, "arity histogram:")?;
        for (arity, &count) in self.arity_histogram.iter().enumerate() {
            if count > 0 {
                write!(f, " {arity}:{count}")?;
            }
        }
        writeln!(f)?;
        write!(
            f,
            "fanout: max {}, mean {:.3}",
            self.max_fanout,
            self.mean_fanout_milli as f64 / 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    #[test]
    fn computes_basic_profile() {
        let mut net = LutNetwork::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let l1 = net.add_lut(TruthTable::xor(2), vec![a, b]);
        let l2 = net.add_lut(TruthTable::inverter(), vec![l1]);
        let l3 = net.add_lut(TruthTable::and(2), vec![l1, l2]);
        net.add_output("y", l3);
        let stats = NetworkStats::compute(&net);
        assert_eq!(stats.num_luts, 3);
        assert_eq!(stats.num_planes, 1);
        assert_eq!(stats.depth_max, 3);
        assert_eq!(stats.arity_histogram[1], 1);
        assert_eq!(stats.arity_histogram[2], 2);
        assert_eq!(stats.max_fanout, 2); // l1 feeds l2 and l3
        let text = stats.to_string();
        assert!(text.contains("3 LUTs"));
        assert!(text.contains("depth_max 3"));
    }

    #[test]
    fn empty_network_is_fine() {
        let mut net = LutNetwork::new("e");
        let a = net.add_input("a");
        net.add_output("y", a);
        let stats = NetworkStats::compute(&net);
        assert_eq!(stats.num_luts, 0);
        assert_eq!(stats.mean_fanout_milli, 0);
    }
}
