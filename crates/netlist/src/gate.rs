//! Gate-level (Boolean network) representation.
//!
//! A [`GateNetwork`] is a combinational Boolean network of simple gates —
//! the input format of the FlowMap technology mapper and the target of the
//! BLIF parser. Sequential circuits enter the flow at RTL; `GateNetwork`
//! models gate-level benchmark circuits such as the ISCAS'85 suite.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::ids::GateId;

/// Primitive gate types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND of all inputs.
    And,
    /// Logical OR of all inputs.
    Or,
    /// Complement of AND.
    Nand,
    /// Complement of OR.
    Nor,
    /// Odd parity.
    Xor,
    /// Even parity.
    Xnor,
    /// Single-input complement.
    Not,
    /// Single-input identity.
    Buf,
}

impl GateKind {
    /// Evaluates the gate on concrete inputs.
    ///
    /// # Panics
    ///
    /// Panics if `Not`/`Buf` receive other than exactly one input, or a
    /// multi-input gate receives no inputs.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            Self::And => inputs.iter().all(|&b| b),
            Self::Or => inputs.iter().any(|&b| b),
            Self::Nand => !inputs.iter().all(|&b| b),
            Self::Nor => !inputs.iter().any(|&b| b),
            Self::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            Self::Xnor => inputs.iter().filter(|&&b| b).count() % 2 == 0,
            Self::Not => {
                assert_eq!(inputs.len(), 1, "NOT takes exactly one input");
                !inputs[0]
            }
            Self::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes exactly one input");
                inputs[0]
            }
        }
    }

    /// Returns `true` for the single-input gates `Not` and `Buf`.
    pub fn is_unary(self) -> bool {
        matches!(self, Self::Not | Self::Buf)
    }
}

/// A single-bit signal source inside a [`GateNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateSignal {
    /// Primary input with the given index.
    Input(usize),
    /// Output of a gate.
    Gate(GateId),
    /// A constant value.
    Const(bool),
}

/// One gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Gate type.
    pub kind: GateKind,
    /// Input signals, in order.
    pub inputs: Vec<GateSignal>,
    /// Optional source-level name (e.g. from BLIF).
    pub name: Option<String>,
}

/// A combinational Boolean network of primitive gates.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::gate::{GateKind, GateNetwork, GateSignal};
///
/// # fn main() -> Result<(), nanomap_netlist::NetlistError> {
/// let mut net = GateNetwork::new("half_adder");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let sum = net.add_gate(GateKind::Xor, vec![a, b]);
/// let carry = net.add_gate(GateKind::And, vec![a, b]);
/// net.add_output("sum", sum);
/// net.add_output("carry", carry);
/// net.validate()?;
/// assert_eq!(net.num_gates(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GateNetwork {
    name: String,
    input_names: Vec<String>,
    outputs: Vec<(String, GateSignal)>,
    gates: Vec<Gate>,
}

impl GateNetwork {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input and returns its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateSignal {
        let idx = self.input_names.len();
        self.input_names.push(name.into());
        GateSignal::Input(idx)
    }

    /// Adds a gate and returns its output signal.
    pub fn add_gate(&mut self, kind: GateKind, inputs: Vec<GateSignal>) -> GateSignal {
        self.add_named_gate(kind, inputs, None)
    }

    /// Adds a gate with an optional source name.
    pub fn add_named_gate(
        &mut self,
        kind: GateKind,
        inputs: Vec<GateSignal>,
        name: Option<String>,
    ) -> GateSignal {
        let id = GateId::new(self.gates.len());
        self.gates.push(Gate { kind, inputs, name });
        GateSignal::Gate(id)
    }

    /// Declares a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, signal: GateSignal) {
        self.outputs.push((name.into(), signal));
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Primary input names, in index order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Primary outputs as `(name, signal)` pairs.
    pub fn outputs(&self) -> &[(String, GateSignal)] {
        &self.outputs
    }

    /// Returns the gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(id, gate)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::new(i), g))
    }

    /// A topological order of the gates.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the network is cyclic.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        let n = self.gates.len();
        let mut indegree = vec![0usize; n];
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); n];
        for (id, gate) in self.iter() {
            for input in &gate.inputs {
                if let GateSignal::Gate(src) = input {
                    indegree[id.index()] += 1;
                    fanout[src.index()].push(id);
                }
            }
        }
        let mut queue: Vec<GateId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(GateId::new)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            order.push(id);
            for &succ in &fanout[id.index()] {
                indegree[succ.index()] -= 1;
                if indegree[succ.index()] == 0 {
                    queue.push(succ);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .expect("cycle implies residual indegree");
            let name = self.gates[stuck]
                .name
                .clone()
                .unwrap_or_else(|| format!("g{stuck}"));
            return Err(NetlistError::CombinationalCycle { node: name });
        }
        Ok(order)
    }

    /// Validates that the network is acyclic, all gate arities are legal and
    /// there is at least one output.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        for (id, gate) in self.iter() {
            let arity_ok = if gate.kind.is_unary() {
                gate.inputs.len() == 1
            } else {
                !gate.inputs.is_empty()
            };
            if !arity_ok {
                return Err(NetlistError::Invalid(format!(
                    "gate {id} ({:?}) has illegal arity {}",
                    gate.kind,
                    gate.inputs.len()
                )));
            }
            for input in &gate.inputs {
                match *input {
                    GateSignal::Input(i) if i >= self.input_names.len() => {
                        return Err(NetlistError::Invalid(format!(
                            "gate {id} references unknown input {i}"
                        )));
                    }
                    GateSignal::Gate(g) if g.index() >= self.gates.len() => {
                        return Err(NetlistError::Invalid(format!(
                            "gate {id} references unknown gate {g}"
                        )));
                    }
                    _ => {}
                }
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Evaluates the network on concrete input values (index order).
    ///
    /// Returns the output values in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Self::num_inputs`] or the
    /// network is cyclic.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs(), "input count mismatch");
        let order = self.topo_order().expect("network must be acyclic");
        let mut gate_values = vec![false; self.gates.len()];
        let value = |sig: GateSignal, gate_values: &[bool]| match sig {
            GateSignal::Input(i) => inputs[i],
            GateSignal::Gate(g) => gate_values[g.index()],
            GateSignal::Const(c) => c,
        };
        for id in order {
            let gate = self.gate(id);
            let ins: Vec<bool> = gate
                .inputs
                .iter()
                .map(|&s| value(s, &gate_values))
                .collect();
            gate_values[id.index()] = gate.kind.eval(&ins);
        }
        self.outputs
            .iter()
            .map(|&(_, s)| value(s, &gate_values))
            .collect()
    }

    /// Logic depth: length of the longest input-to-output gate chain.
    pub fn depth(&self) -> u32 {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return 0,
        };
        let mut depth = vec![0u32; self.gates.len()];
        let mut max = 0;
        for id in order {
            let gate = self.gate(id);
            let d = 1 + gate
                .inputs
                .iter()
                .map(|s| match s {
                    GateSignal::Gate(g) => depth[g.index()],
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
            depth[id.index()] = d;
            max = max.max(d);
        }
        max
    }

    /// Map from gate name to id, for gates that carry names.
    pub fn names(&self) -> HashMap<&str, GateId> {
        self.iter()
            .filter_map(|(id, g)| g.name.as_deref().map(|n| (n, id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_kind_eval() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, false, false]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
    }

    fn full_adder() -> GateNetwork {
        let mut net = GateNetwork::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("cin");
        let sum = net.add_gate(GateKind::Xor, vec![a, b, c]);
        let ab = net.add_gate(GateKind::And, vec![a, b]);
        let ac = net.add_gate(GateKind::And, vec![a, c]);
        let bc = net.add_gate(GateKind::And, vec![b, c]);
        let carry = net.add_gate(GateKind::Or, vec![ab, ac, bc]);
        net.add_output("sum", sum);
        net.add_output("cout", carry);
        net
    }

    #[test]
    fn full_adder_truth() {
        let net = full_adder();
        net.validate().unwrap();
        for row in 0u32..8 {
            let ins = [row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1];
            let outs = net.eval(&ins);
            let total = ins.iter().filter(|&&x| x).count();
            assert_eq!(outs[0], total % 2 == 1);
            assert_eq!(outs[1], total >= 2);
        }
    }

    #[test]
    fn depth_counts_longest_chain() {
        let net = full_adder();
        assert_eq!(net.depth(), 2);
    }

    #[test]
    fn cyclic_network_rejected() {
        let mut net = GateNetwork::new("cyc");
        let a = net.add_input("a");
        // g0 depends on g1 and vice versa.
        let g0 = net.add_gate(GateKind::And, vec![a, GateSignal::Gate(GateId::new(1))]);
        let g1 = net.add_gate(GateKind::Or, vec![g0]);
        net.add_output("y", g1);
        assert!(matches!(
            net.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn arity_violation_rejected() {
        let mut net = GateNetwork::new("bad");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::Not, vec![a, b]);
        net.add_output("y", g);
        assert!(matches!(net.validate(), Err(NetlistError::Invalid(_))));
    }

    #[test]
    fn const_signals_evaluate() {
        let mut net = GateNetwork::new("c");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::And, vec![a, GateSignal::Const(true)]);
        net.add_output("y", g);
        assert_eq!(net.eval(&[true]), vec![true]);
        assert_eq!(net.eval(&[false]), vec![false]);
    }

    #[test]
    fn names_lookup() {
        let mut net = GateNetwork::new("n");
        let a = net.add_input("a");
        net.add_named_gate(GateKind::Buf, vec![a], Some("copy".into()));
        let names = net.names();
        assert!(names.contains_key("copy"));
    }
}
