//! Cycle-accurate functional simulation of RTL circuits.
//!
//! The simulator evaluates buses as `u64` values (so widths up to 64 bits,
//! 32 for multiplier operands). It is the golden reference the technology
//! mapper and the temporal-folding executor are verified against.

use std::collections::HashMap;

use super::{CombOp, NodeKind, RtlCircuit};
use crate::error::NetlistError;
use crate::ids::NodeId;

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// A cycle-accurate interpreter for [`RtlCircuit`]s.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::rtl::{CombOp, RtlBuilder, RtlSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = RtlBuilder::new("adder");
/// let a = b.input("a", 8);
/// let c = b.input("b", 8);
/// let gnd = b.constant("gnd", 1, 0);
/// let add = b.comb("add", CombOp::Add { width: 8 });
/// b.connect(a, 0, add, 0)?;
/// b.connect(c, 0, add, 1)?;
/// b.connect(gnd, 0, add, 2)?;
/// let y = b.output("y", 8);
/// b.connect(add, 0, y, 0)?;
/// let circuit = b.finish()?;
///
/// let mut sim = RtlSimulator::new(&circuit)?;
/// sim.set_input("a", 200);
/// sim.set_input("b", 100);
/// sim.eval_comb();
/// assert_eq!(sim.output("y"), Some(44)); // (200 + 100) mod 256
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RtlSimulator<'a> {
    circuit: &'a RtlCircuit,
    /// Current value of each node's output ports.
    values: Vec<Vec<u64>>,
    /// Register state (indexed like nodes; only registers used).
    state: Vec<u64>,
    inputs: HashMap<String, u64>,
    topo: Vec<NodeId>,
}

impl<'a> RtlSimulator<'a> {
    /// Creates a simulator with all inputs and registers at zero.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit fails validation (the simulator needs
    /// a combinational topological order).
    pub fn new(circuit: &'a RtlCircuit) -> Result<Self, NetlistError> {
        circuit.validate()?;
        let topo = circuit.topo_order_comb()?;
        let values = circuit
            .iter()
            .map(|(_, n)| vec![0u64; n.kind.output_ports().len()])
            .collect();
        Ok(Self {
            circuit,
            values,
            state: vec![0; circuit.num_nodes()],
            inputs: HashMap::new(),
            topo,
        })
    }

    /// Sets a primary input value (masked to the input's width).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a primary input.
    pub fn set_input(&mut self, name: &str, value: u64) {
        let id = self
            .circuit
            .find(name)
            .unwrap_or_else(|| panic!("no node named `{name}`"));
        match self.circuit.node(id).kind {
            NodeKind::Input { width } => {
                self.inputs.insert(name.to_string(), value & mask(width));
            }
            _ => panic!("node `{name}` is not a primary input"),
        }
    }

    /// Sets a register's current state directly (masked to its width).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a register.
    pub fn set_register(&mut self, name: &str, value: u64) {
        let id = self
            .circuit
            .find(name)
            .unwrap_or_else(|| panic!("no node named `{name}`"));
        match self.circuit.node(id).kind {
            NodeKind::Register { width } => {
                self.state[id.index()] = value & mask(width);
            }
            _ => panic!("node `{name}` is not a register"),
        }
    }

    /// Reads the current value of a register.
    pub fn register(&self, name: &str) -> Option<u64> {
        let id = self.circuit.find(name)?;
        self.circuit
            .node(id)
            .kind
            .is_sequential()
            .then(|| self.state[id.index()])
    }

    /// Evaluates all combinational logic with the current inputs and state.
    pub fn eval_comb(&mut self) {
        // Seed inputs and register outputs.
        for (id, node) in self.circuit.iter() {
            match &node.kind {
                NodeKind::Input { .. } => {
                    self.values[id.index()][0] = self.inputs.get(&node.name).copied().unwrap_or(0);
                }
                NodeKind::Register { .. } => {
                    self.values[id.index()][0] = self.state[id.index()];
                }
                _ => {}
            }
        }
        for &id in &self.topo.clone() {
            self.eval_node(id);
        }
    }

    /// Advances one clock cycle: evaluates logic, then latches registers.
    pub fn step(&mut self) {
        self.eval_comb();
        for (id, node) in self.circuit.iter() {
            if let NodeKind::Register { width } = node.kind {
                let d = self.input_value(id, 0);
                self.state[id.index()] = d & mask(width);
            }
        }
    }

    /// Reads a primary output value (valid after [`Self::eval_comb`] or [`Self::step`]).
    pub fn output(&self, name: &str) -> Option<u64> {
        let id = self.circuit.find(name)?;
        match self.circuit.node(id).kind {
            NodeKind::Output { width } => Some(self.input_value(id, 0) & mask(width)),
            _ => None,
        }
    }

    fn input_value(&self, id: NodeId, port: usize) -> u64 {
        let driver =
            self.circuit.node(id).inputs[port].expect("validated circuit has no floating inputs");
        self.values[driver.node.index()][driver.port as usize]
    }

    fn eval_node(&mut self, id: NodeId) {
        let node = self.circuit.node(id);
        let op = match &node.kind {
            NodeKind::Comb(op) => op.clone(),
            _ => return,
        };
        let ins: Vec<u64> = (0..node.inputs.len())
            .map(|p| self.input_value(id, p))
            .collect();
        let outs = eval_op(&op, &ins);
        self.values[id.index()] = outs;
    }
}

/// Evaluates a combinational operator on concrete input values.
///
/// Exposed for reuse by the technology-mapper equivalence tests.
pub fn eval_op(op: &CombOp, ins: &[u64]) -> Vec<u64> {
    match *op {
        CombOp::Add { width } => {
            let total = (ins[0] & mask(width)) + (ins[1] & mask(width)) + (ins[2] & 1);
            vec![total & mask(width), (total >> width) & 1]
        }
        CombOp::Sub { width } => {
            let a = ins[0] & mask(width);
            let b = ins[1] & mask(width);
            let diff = a.wrapping_sub(b) & mask(width);
            let borrow = u64::from(a < b);
            vec![diff, borrow]
        }
        CombOp::Mul { width } => {
            assert!(width <= 32, "multiplier operands limited to 32 bits");
            let prod = (ins[0] & mask(width)) * (ins[1] & mask(width));
            vec![prod & mask(2 * width)]
        }
        CombOp::Mux2 { width } => {
            let y = if ins[2] & 1 == 1 { ins[1] } else { ins[0] };
            vec![y & mask(width)]
        }
        CombOp::MuxN { width, n } => {
            let sel = (ins[n as usize] as usize).min(n as usize - 1);
            vec![ins[sel] & mask(width)]
        }
        CombOp::Eq { width } => {
            vec![u64::from((ins[0] & mask(width)) == (ins[1] & mask(width)))]
        }
        CombOp::Lt { width } => {
            vec![u64::from((ins[0] & mask(width)) < (ins[1] & mask(width)))]
        }
        CombOp::And { width } => vec![(ins[0] & ins[1]) & mask(width)],
        CombOp::Or { width } => vec![(ins[0] | ins[1]) & mask(width)],
        CombOp::Xor { width } => vec![(ins[0] ^ ins[1]) & mask(width)],
        CombOp::Not { width } => vec![!ins[0] & mask(width)],
        CombOp::ReduceAnd { width } => vec![u64::from(ins[0] & mask(width) == mask(width))],
        CombOp::ReduceOr { width } => vec![u64::from(ins[0] & mask(width) != 0)],
        CombOp::ReduceXor { width } => {
            vec![u64::from((ins[0] & mask(width)).count_ones() % 2 == 1)]
        }
        CombOp::Shl { width, amount } => {
            let y = if amount >= 64 { 0 } else { ins[0] << amount };
            vec![y & mask(width)]
        }
        CombOp::Shr { width, amount } => {
            let y = if amount >= 64 {
                0
            } else {
                (ins[0] & mask(width)) >> amount
            };
            vec![y]
        }
        CombOp::Const { width, value } => vec![value & mask(width)],
        CombOp::Lut { ref truth } => {
            let bits: Vec<bool> = ins.iter().map(|&v| v & 1 == 1).collect();
            vec![u64::from(truth.eval(&bits))]
        }
        CombOp::Gate { kind, .. } => {
            let bits: Vec<bool> = ins.iter().map(|&v| v & 1 == 1).collect();
            vec![u64::from(kind.eval(&bits))]
        }
        CombOp::Slice { lo, out_width, .. } => vec![(ins[0] >> lo) & mask(out_width)],
        CombOp::Concat { ref widths } => {
            let mut y = 0u64;
            let mut shift = 0;
            for (v, &w) in ins.iter().zip(widths) {
                y |= (v & mask(w)) << shift;
                shift += w;
            }
            vec![y]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::RtlBuilder;

    #[test]
    fn eval_op_arithmetic() {
        assert_eq!(eval_op(&CombOp::Add { width: 4 }, &[9, 9, 1]), vec![3, 1]);
        assert_eq!(eval_op(&CombOp::Sub { width: 4 }, &[3, 5]), vec![14, 1]);
        assert_eq!(eval_op(&CombOp::Mul { width: 4 }, &[15, 15]), vec![225]);
    }

    #[test]
    fn eval_op_mux_and_compare() {
        assert_eq!(eval_op(&CombOp::Mux2 { width: 2 }, &[1, 2, 1]), vec![2]);
        assert_eq!(
            eval_op(&CombOp::MuxN { width: 2, n: 3 }, &[1, 2, 3, 2]),
            vec![3]
        );
        assert_eq!(eval_op(&CombOp::Eq { width: 8 }, &[7, 7]), vec![1]);
        assert_eq!(eval_op(&CombOp::Lt { width: 8 }, &[9, 7]), vec![0]);
    }

    #[test]
    fn eval_op_reductions_and_shifts() {
        assert_eq!(eval_op(&CombOp::ReduceAnd { width: 3 }, &[0b111]), vec![1]);
        assert_eq!(eval_op(&CombOp::ReduceOr { width: 3 }, &[0]), vec![0]);
        assert_eq!(eval_op(&CombOp::ReduceXor { width: 3 }, &[0b110]), vec![0]);
        assert_eq!(
            eval_op(
                &CombOp::Shl {
                    width: 4,
                    amount: 2
                },
                &[0b0111]
            ),
            vec![0b1100]
        );
        assert_eq!(
            eval_op(
                &CombOp::Shr {
                    width: 4,
                    amount: 1
                },
                &[0b1010]
            ),
            vec![0b0101]
        );
    }

    #[test]
    fn eval_op_wiring() {
        assert_eq!(
            eval_op(
                &CombOp::Slice {
                    width: 8,
                    lo: 2,
                    out_width: 3
                },
                &[0b1011_0100]
            ),
            vec![0b101]
        );
        assert_eq!(
            eval_op(&CombOp::Concat { widths: vec![2, 3] }, &[0b11, 0b101]),
            vec![0b10111]
        );
    }

    #[test]
    fn counter_counts() {
        // 4-bit counter: acc <= acc + 1
        let mut b = RtlBuilder::new("counter");
        let acc = b.register("acc", 4);
        let one = b.constant("one", 4, 1);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 4 });
        b.connect(acc, 0, add, 0).unwrap();
        b.connect(one, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        b.connect(add, 0, acc, 0).unwrap();
        let y = b.output("y", 4);
        b.connect(acc, 0, y, 0).unwrap();
        let c = b.finish().unwrap();

        let mut sim = RtlSimulator::new(&c).unwrap();
        for expected in 0..20u64 {
            sim.eval_comb();
            assert_eq!(sim.output("y"), Some(expected % 16));
            sim.step();
        }
    }

    #[test]
    fn register_state_accessors() {
        let mut b = RtlBuilder::new("t");
        let r = b.register("r", 8);
        let inp = b.input("d", 8);
        b.connect(inp, 0, r, 0).unwrap();
        let y = b.output("y", 8);
        b.connect(r, 0, y, 0).unwrap();
        let c = b.finish().unwrap();
        let mut sim = RtlSimulator::new(&c).unwrap();
        sim.set_register("r", 0x5A);
        assert_eq!(sim.register("r"), Some(0x5A));
        sim.set_input("d", 0xFF);
        sim.step();
        assert_eq!(sim.register("r"), Some(0xFF));
    }
}
