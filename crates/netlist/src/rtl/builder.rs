//! Fluent construction of [`RtlCircuit`]s.

use super::{CombOp, NodeKind, RtlCircuit};
use crate::error::NetlistError;
use crate::ids::NodeId;
use crate::truth::TruthTable;

/// A convenience builder for [`RtlCircuit`]s.
///
/// The builder auto-generates unique names when the suggested one collides,
/// so generators can compose subcircuits without name bookkeeping, and
/// [`RtlBuilder::finish`] validates the result.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::rtl::{CombOp, RtlBuilder};
///
/// # fn main() -> Result<(), nanomap_netlist::NetlistError> {
/// let mut b = RtlBuilder::new("xor_gate");
/// let a = b.input("a", 1);
/// let c = b.input("b", 1);
/// let x = b.comb("x", CombOp::Xor { width: 1 });
/// b.connect(a, 0, x, 0)?;
/// b.connect(c, 0, x, 1)?;
/// let y = b.output("y", 1);
/// b.connect(x, 0, y, 0)?;
/// let circuit = b.finish()?;
/// assert_eq!(circuit.name(), "xor_gate");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RtlBuilder {
    circuit: RtlCircuit,
    unique: u64,
}

impl RtlBuilder {
    /// Starts building a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            circuit: RtlCircuit::new(name),
            unique: 0,
        }
    }

    fn add(&mut self, name: &str, kind: NodeKind) -> NodeId {
        // Fast path: the suggested name is free.
        if self.circuit.find(name).is_none() {
            return self
                .circuit
                .add_node(name, kind)
                .expect("name checked free");
        }
        // Slow path: append a disambiguating counter.
        loop {
            self.unique += 1;
            let candidate = format!("{name}_{}", self.unique);
            if self.circuit.find(&candidate).is_none() {
                return self
                    .circuit
                    .add_node(candidate, kind)
                    .expect("name checked free");
            }
        }
    }

    /// Adds a primary input bus.
    pub fn input(&mut self, name: &str, width: u32) -> NodeId {
        self.add(name, NodeKind::Input { width })
    }

    /// Adds a primary output bus.
    pub fn output(&mut self, name: &str, width: u32) -> NodeId {
        self.add(name, NodeKind::Output { width })
    }

    /// Adds a register bank.
    pub fn register(&mut self, name: &str, width: u32) -> NodeId {
        self.add(name, NodeKind::Register { width })
    }

    /// Adds a combinational operator node.
    pub fn comb(&mut self, name: &str, op: CombOp) -> NodeId {
        self.add(name, NodeKind::Comb(op))
    }

    /// Adds a constant bus.
    pub fn constant(&mut self, name: &str, width: u32, value: u64) -> NodeId {
        self.add(name, NodeKind::Comb(CombOp::Const { width, value }))
    }

    /// Adds a single-output LUT-style logic node.
    pub fn lut(&mut self, name: &str, truth: TruthTable) -> NodeId {
        self.add(name, NodeKind::Comb(CombOp::Lut { truth }))
    }

    /// Connects output `from_port` of `from` to input `to_port` of `to`.
    ///
    /// # Errors
    ///
    /// See [`RtlCircuit::connect`].
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: u32,
        to: NodeId,
        to_port: u32,
    ) -> Result<(), NetlistError> {
        self.circuit.connect(from, from_port, to, to_port)
    }

    /// Convenience: connects port 0 of `from` to input `to_port` of `to`.
    ///
    /// # Errors
    ///
    /// See [`RtlCircuit::connect`].
    pub fn wire(&mut self, from: NodeId, to: NodeId, to_port: u32) -> Result<(), NetlistError> {
        self.connect(from, 0, to, to_port)
    }

    /// Read-only access to the circuit under construction.
    pub fn circuit(&self) -> &RtlCircuit {
        &self.circuit
    }

    /// Validates and returns the finished circuit.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found by
    /// [`RtlCircuit::validate`].
    pub fn finish(self) -> Result<RtlCircuit, NetlistError> {
        self.circuit.validate()?;
        Ok(self.circuit)
    }

    /// Returns the circuit without validating (useful for negative tests).
    pub fn finish_unchecked(self) -> RtlCircuit {
        self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_disambiguates_names() {
        let mut b = RtlBuilder::new("t");
        let a = b.input("x", 1);
        let c = b.input("x", 1);
        assert_ne!(a, c);
        assert_eq!(b.circuit().num_nodes(), 2);
    }

    #[test]
    fn finish_validates() {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 1);
        let n = b.comb("n", CombOp::Not { width: 1 });
        // input of `n` left undriven on purpose; also no outputs
        let _ = (a, n);
        assert!(b.finish().is_err());
    }

    #[test]
    fn finish_unchecked_skips_validation() {
        let mut b = RtlBuilder::new("t");
        b.comb("n", CombOp::Not { width: 1 });
        let c = b.finish_unchecked();
        assert_eq!(c.num_nodes(), 1);
    }
}
