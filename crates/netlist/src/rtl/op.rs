//! Combinational RTL operator definitions and their port signatures.

use crate::gate::GateKind;
use crate::truth::TruthTable;

/// Direction of a port on an RTL node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// The port consumes a value.
    Input,
    /// The port produces a value.
    Output,
}

/// A port signature: name, direction and bit width.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortSpec {
    /// Port name, unique within the node.
    pub name: &'static str,
    /// Data direction.
    pub dir: PortDir,
    /// Width in bits.
    pub width: u32,
}

impl PortSpec {
    const fn input(name: &'static str, width: u32) -> Self {
        Self {
            name,
            dir: PortDir::Input,
            width,
        }
    }

    const fn output(name: &'static str, width: u32) -> Self {
        Self {
            name,
            dir: PortDir::Output,
            width,
        }
    }
}

/// A combinational RTL operator.
///
/// Each operator has a fixed port signature returned by
/// [`CombOp::input_ports`] / [`CombOp::output_ports`]. Multi-bit arithmetic
/// operators are later expanded into LUT networks by the technology mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombOp {
    /// Ripple-carry addition: `sum = a + b + cin`, with carry-out.
    Add {
        /// Operand width in bits.
        width: u32,
    },
    /// Subtraction `diff = a - b` (two's complement), with borrow-out.
    Sub {
        /// Operand width in bits.
        width: u32,
    },
    /// Parallel (array) multiplication: `prod = a * b`, product is `2*width` bits.
    Mul {
        /// Operand width in bits.
        width: u32,
    },
    /// 2:1 multiplexer: `y = sel ? b : a`.
    Mux2 {
        /// Data width in bits.
        width: u32,
    },
    /// N:1 multiplexer with a `ceil(log2(n))`-bit select.
    MuxN {
        /// Data width in bits.
        width: u32,
        /// Number of data inputs (must be >= 2).
        n: u32,
    },
    /// Equality comparison producing a single bit.
    Eq {
        /// Operand width in bits.
        width: u32,
    },
    /// Unsigned less-than comparison producing a single bit.
    Lt {
        /// Operand width in bits.
        width: u32,
    },
    /// Bitwise AND of two buses.
    And {
        /// Bus width in bits.
        width: u32,
    },
    /// Bitwise OR of two buses.
    Or {
        /// Bus width in bits.
        width: u32,
    },
    /// Bitwise XOR of two buses.
    Xor {
        /// Bus width in bits.
        width: u32,
    },
    /// Bitwise NOT of a bus.
    Not {
        /// Bus width in bits.
        width: u32,
    },
    /// AND-reduction of a bus to one bit.
    ReduceAnd {
        /// Bus width in bits.
        width: u32,
    },
    /// OR-reduction of a bus to one bit.
    ReduceOr {
        /// Bus width in bits.
        width: u32,
    },
    /// XOR-reduction (parity) of a bus to one bit.
    ReduceXor {
        /// Bus width in bits.
        width: u32,
    },
    /// Constant left shift by `amount` (zero fill).
    Shl {
        /// Bus width in bits.
        width: u32,
        /// Shift amount.
        amount: u32,
    },
    /// Constant logical right shift by `amount` (zero fill).
    Shr {
        /// Bus width in bits.
        width: u32,
        /// Shift amount.
        amount: u32,
    },
    /// A constant bus value.
    Const {
        /// Bus width in bits (at most 64).
        width: u32,
        /// Constant value, low bits significant.
        value: u64,
    },
    /// A single-output generic logic function (one LUT worth of logic).
    Lut {
        /// The Boolean function computed.
        truth: TruthTable,
    },
    /// A single primitive gate with `n` inputs.
    Gate {
        /// Gate type.
        kind: GateKind,
        /// Number of inputs (1 for `Not`/`Buf`).
        n: u32,
    },
    /// Extracts bits `lo .. lo + out_width` from a bus.
    Slice {
        /// Input bus width in bits.
        width: u32,
        /// Lowest extracted bit index.
        lo: u32,
        /// Output width in bits.
        out_width: u32,
    },
    /// Concatenates input buses, first input in the low bits.
    Concat {
        /// Widths of the concatenated inputs, low part first.
        widths: Vec<u32>,
    },
}

impl CombOp {
    /// Input port signatures for this operator.
    pub fn input_ports(&self) -> Vec<PortSpec> {
        match *self {
            Self::Add { width } => vec![
                PortSpec::input("a", width),
                PortSpec::input("b", width),
                PortSpec::input("cin", 1),
            ],
            Self::Sub { width } => {
                vec![PortSpec::input("a", width), PortSpec::input("b", width)]
            }
            Self::Mul { width } => {
                vec![PortSpec::input("a", width), PortSpec::input("b", width)]
            }
            Self::Mux2 { width } => vec![
                PortSpec::input("a", width),
                PortSpec::input("b", width),
                PortSpec::input("sel", 1),
            ],
            Self::MuxN { width, n } => {
                let mut ports: Vec<PortSpec> =
                    (0..n).map(|_| PortSpec::input("d", width)).collect();
                ports.push(PortSpec::input("sel", select_width(n)));
                ports
            }
            Self::Eq { width } | Self::Lt { width } => {
                vec![PortSpec::input("a", width), PortSpec::input("b", width)]
            }
            Self::And { width } | Self::Or { width } | Self::Xor { width } => {
                vec![PortSpec::input("a", width), PortSpec::input("b", width)]
            }
            Self::Not { width } => vec![PortSpec::input("a", width)],
            Self::ReduceAnd { width } | Self::ReduceOr { width } | Self::ReduceXor { width } => {
                vec![PortSpec::input("a", width)]
            }
            Self::Shl { width, .. } | Self::Shr { width, .. } => {
                vec![PortSpec::input("a", width)]
            }
            Self::Const { .. } => vec![],
            Self::Lut { ref truth } => (0..truth.num_inputs())
                .map(|_| PortSpec::input("i", 1))
                .collect(),
            Self::Gate { n, .. } => (0..n).map(|_| PortSpec::input("i", 1)).collect(),
            Self::Slice { width, .. } => vec![PortSpec::input("a", width)],
            Self::Concat { ref widths } => {
                widths.iter().map(|&w| PortSpec::input("part", w)).collect()
            }
        }
    }

    /// Output port signatures for this operator.
    pub fn output_ports(&self) -> Vec<PortSpec> {
        match *self {
            Self::Add { width } => {
                vec![PortSpec::output("sum", width), PortSpec::output("cout", 1)]
            }
            Self::Sub { width } => {
                vec![PortSpec::output("diff", width), PortSpec::output("bout", 1)]
            }
            Self::Mul { width } => vec![PortSpec::output("prod", 2 * width)],
            Self::Mux2 { width } | Self::MuxN { width, .. } => {
                vec![PortSpec::output("y", width)]
            }
            Self::Eq { .. } | Self::Lt { .. } => vec![PortSpec::output("y", 1)],
            Self::And { width }
            | Self::Or { width }
            | Self::Xor { width }
            | Self::Not { width } => {
                vec![PortSpec::output("y", width)]
            }
            Self::ReduceAnd { .. } | Self::ReduceOr { .. } | Self::ReduceXor { .. } => {
                vec![PortSpec::output("y", 1)]
            }
            Self::Shl { width, .. } | Self::Shr { width, .. } => {
                vec![PortSpec::output("y", width)]
            }
            Self::Const { width, .. } => vec![PortSpec::output("y", width)],
            Self::Lut { .. } | Self::Gate { .. } => vec![PortSpec::output("y", 1)],
            Self::Slice { out_width, .. } => vec![PortSpec::output("y", out_width)],
            Self::Concat { ref widths } => {
                vec![PortSpec::output("y", widths.iter().sum())]
            }
        }
    }

    /// Returns `true` for pure wiring operators that expand to zero LUTs.
    pub fn is_wiring(&self) -> bool {
        matches!(
            self,
            Self::Slice { .. } | Self::Concat { .. } | Self::Const { .. }
        )
    }
}

/// Width of the select bus for an `n`-way multiplexer. Degenerate muxes
/// (`n < 2`) still declare a 1-bit select so their port list stays
/// well-formed; expansion rejects them with a structured error.
pub fn select_width(n: u32) -> u32 {
    match n {
        0 | 1 => 1,
        _ => 32 - (n - 1).leading_zeros(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_ports() {
        let op = CombOp::Add { width: 4 };
        let ins = op.input_ports();
        assert_eq!(ins.len(), 3);
        assert_eq!(ins[0].width, 4);
        assert_eq!(ins[2].width, 1);
        let outs = op.output_ports();
        assert_eq!(outs[0].width, 4);
        assert_eq!(outs[1].width, 1);
    }

    #[test]
    fn mul_product_is_double_width() {
        let op = CombOp::Mul { width: 8 };
        assert_eq!(op.output_ports()[0].width, 16);
    }

    #[test]
    fn muxn_select_width() {
        assert_eq!(select_width(2), 1);
        assert_eq!(select_width(3), 2);
        assert_eq!(select_width(4), 2);
        assert_eq!(select_width(5), 3);
        assert_eq!(select_width(8), 3);
        assert_eq!(select_width(9), 4);
    }

    #[test]
    fn muxn_ports() {
        let op = CombOp::MuxN { width: 4, n: 5 };
        let ins = op.input_ports();
        assert_eq!(ins.len(), 6);
        assert_eq!(ins[5].width, 3);
    }

    #[test]
    fn concat_output_width_is_sum() {
        let op = CombOp::Concat {
            widths: vec![3, 5, 8],
        };
        assert_eq!(op.output_ports()[0].width, 16);
        assert_eq!(op.input_ports().len(), 3);
    }

    #[test]
    fn wiring_ops_flagged() {
        assert!(CombOp::Const { width: 4, value: 3 }.is_wiring());
        assert!(!CombOp::Add { width: 4 }.is_wiring());
    }
}
