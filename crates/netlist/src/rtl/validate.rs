//! Structural validation and topological ordering of RTL circuits.

use super::{NodeKind, RtlCircuit};
use crate::error::NetlistError;
use crate::ids::NodeId;

/// Checks all structural invariants of `circuit`.
pub(super) fn validate(circuit: &RtlCircuit) -> Result<(), NetlistError> {
    if circuit.outputs().is_empty() {
        return Err(NetlistError::NoOutputs);
    }
    for (_, node) in circuit.iter() {
        for (port, driver) in node.inputs.iter().enumerate() {
            if driver.is_none() {
                return Err(NetlistError::UndrivenInput {
                    node: node.name.clone(),
                    port,
                });
            }
        }
    }
    topo_order_comb(circuit)?;
    Ok(())
}

/// Computes a topological order over combinational nodes.
///
/// Registers and primary inputs act as sources: their outputs are available
/// before any combinational evaluation, so edges out of them do not
/// constrain the order. Primary outputs are pure sinks and are excluded.
pub(super) fn topo_order_comb(circuit: &RtlCircuit) -> Result<Vec<NodeId>, NetlistError> {
    let n = circuit.num_nodes();
    // in-degree counting only combinational -> combinational edges
    let mut indegree = vec![0usize; n];
    let mut fanout: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut is_comb = vec![false; n];
    for (id, node) in circuit.iter() {
        is_comb[id.index()] = matches!(node.kind, NodeKind::Comb(_));
    }
    for (id, node) in circuit.iter() {
        if !is_comb[id.index()] {
            continue;
        }
        for driver in node.inputs.iter().flatten() {
            if is_comb[driver.node.index()] {
                indegree[id.index()] += 1;
                fanout[driver.node.index()].push(id);
            }
        }
    }
    let mut queue: Vec<NodeId> = (0..n)
        .filter(|&i| is_comb[i] && indegree[i] == 0)
        .map(NodeId::new)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = queue.pop() {
        order.push(id);
        for &succ in &fanout[id.index()] {
            indegree[succ.index()] -= 1;
            if indegree[succ.index()] == 0 {
                queue.push(succ);
            }
        }
    }
    let num_comb = is_comb.iter().filter(|&&c| c).count();
    if order.len() != num_comb {
        // Find a node still carrying in-degree for the diagnostic.
        let stuck = (0..n)
            .find(|&i| is_comb[i] && indegree[i] > 0)
            .map(NodeId::new)
            .expect("cycle implies a node with residual indegree");
        return Err(NetlistError::CombinationalCycle {
            node: circuit.node(stuck).name.clone(),
        });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{CombOp, RtlBuilder};

    #[test]
    fn detects_combinational_cycle() {
        let mut b = RtlBuilder::new("t");
        let n1 = b.comb("n1", CombOp::Not { width: 1 });
        let n2 = b.comb("n2", CombOp::Not { width: 1 });
        b.connect(n1, 0, n2, 0).unwrap();
        b.connect(n2, 0, n1, 0).unwrap();
        let y = b.output("y", 1);
        b.connect(n1, 0, y, 0).unwrap();
        let c = b.finish_unchecked();
        assert!(matches!(
            c.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn register_breaks_cycle() {
        let mut b = RtlBuilder::new("t");
        let r = b.register("r", 1);
        let n = b.comb("n", CombOp::Not { width: 1 });
        b.connect(r, 0, n, 0).unwrap();
        b.connect(n, 0, r, 0).unwrap();
        let y = b.output("y", 1);
        b.connect(r, 0, y, 0).unwrap();
        let c = b.finish_unchecked();
        assert!(c.validate().is_ok());
    }

    #[test]
    fn undriven_input_reported() {
        let mut b = RtlBuilder::new("t");
        let n = b.comb("inv", CombOp::Not { width: 1 });
        let y = b.output("y", 1);
        b.connect(n, 0, y, 0).unwrap();
        let c = b.finish_unchecked();
        assert!(matches!(
            c.validate(),
            Err(NetlistError::UndrivenInput { .. })
        ));
    }

    #[test]
    fn no_outputs_reported() {
        let mut b = RtlBuilder::new("t");
        b.input("a", 1);
        let c = b.finish_unchecked();
        assert_eq!(c.validate(), Err(NetlistError::NoOutputs));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 1);
        let n1 = b.comb("n1", CombOp::Not { width: 1 });
        let n2 = b.comb("n2", CombOp::Not { width: 1 });
        let n3 = b.comb("n3", CombOp::Not { width: 1 });
        b.connect(a, 0, n1, 0).unwrap();
        b.connect(n1, 0, n2, 0).unwrap();
        b.connect(n2, 0, n3, 0).unwrap();
        let y = b.output("y", 1);
        b.connect(n3, 0, y, 0).unwrap();
        let c = b.finish().unwrap();
        let order = c.topo_order_comb().unwrap();
        let pos = |id| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(n1) < pos(n2));
        assert!(pos(n2) < pos(n3));
    }
}
