//! Register-transfer-level circuit representation.
//!
//! An [`RtlCircuit`] is a directed graph of [`RtlNode`]s: primary inputs and
//! outputs, register banks, and combinational operators ([`CombOp`]). Buses
//! are first-class — every port carries a width and connections are checked
//! for width compatibility.
//!
//! The RTL graph is the entry point of the NanoMap flow: it is levelized
//! into *planes* after technology mapping, and its module instances become
//! the *LUT clusters* scheduled by force-directed scheduling.

mod builder;
mod op;
mod sim;
mod validate;

pub use builder::RtlBuilder;
pub use op::{select_width, CombOp, PortDir, PortSpec};
pub use sim::RtlSimulator;

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::ids::NodeId;

/// What an RTL node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Primary input bus.
    Input {
        /// Width in bits.
        width: u32,
    },
    /// Primary output bus.
    Output {
        /// Width in bits.
        width: u32,
    },
    /// A bank of D flip-flops; port 0 is `d` (input), port 0 is `q` (output).
    Register {
        /// Width in bits.
        width: u32,
    },
    /// A combinational operator.
    Comb(CombOp),
}

impl NodeKind {
    /// Input port signatures of this node kind.
    pub fn input_ports(&self) -> Vec<PortSpec> {
        match self {
            Self::Input { .. } => vec![],
            Self::Output { width } => vec![PortSpec {
                name: "d",
                dir: PortDir::Input,
                width: *width,
            }],
            Self::Register { width } => vec![PortSpec {
                name: "d",
                dir: PortDir::Input,
                width: *width,
            }],
            Self::Comb(op) => op.input_ports(),
        }
    }

    /// Output port signatures of this node kind.
    pub fn output_ports(&self) -> Vec<PortSpec> {
        match self {
            Self::Input { width } => vec![PortSpec {
                name: "q",
                dir: PortDir::Output,
                width: *width,
            }],
            Self::Output { .. } => vec![],
            Self::Register { width } => vec![PortSpec {
                name: "q",
                dir: PortDir::Output,
                width: *width,
            }],
            Self::Comb(op) => op.output_ports(),
        }
    }

    /// Returns `true` if the node holds state (breaks combinational paths).
    pub fn is_sequential(&self) -> bool {
        matches!(self, Self::Register { .. })
    }
}

/// A driving endpoint: output port `port` of node `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Driver {
    /// Driving node.
    pub node: NodeId,
    /// Output port index on the driving node.
    pub port: u32,
}

/// One node of the RTL graph.
#[derive(Debug, Clone)]
pub struct RtlNode {
    /// Instance name, unique within the circuit.
    pub name: String,
    /// Node kind (operator / register / port).
    pub kind: NodeKind,
    /// Drivers of each input port, in port order. `None` means undriven.
    pub inputs: Vec<Option<Driver>>,
}

/// A register-transfer-level circuit.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::rtl::{CombOp, RtlBuilder};
///
/// # fn main() -> Result<(), nanomap_netlist::NetlistError> {
/// let mut b = RtlBuilder::new("accumulator");
/// let x = b.input("x", 8);
/// let acc = b.register("acc", 8);
/// let zero = b.constant("gnd", 1, 0);
/// let sum = b.comb("sum", CombOp::Add { width: 8 });
/// b.connect(x, 0, sum, 0)?;
/// b.connect(acc, 0, sum, 1)?;
/// b.connect(zero, 0, sum, 2)?;
/// b.connect(sum, 0, acc, 0)?;
/// let out = b.output("y", 8);
/// b.connect(acc, 0, out, 0)?;
/// let circuit = b.finish()?;
/// assert_eq!(circuit.num_registers(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RtlCircuit {
    name: String,
    nodes: Vec<RtlNode>,
    names: HashMap<String, NodeId>,
}

impl RtlCircuit {
    /// Creates an empty circuit with the given name.
    ///
    /// Most callers should use [`RtlBuilder`] instead, which validates the
    /// finished circuit.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            names: HashMap::new(),
        }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes in the graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of register banks.
    pub fn num_registers(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_sequential()).count()
    }

    /// Total number of flip-flop bits across all register banks.
    pub fn num_flip_flop_bits(&self) -> u32 {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Register { width } => Some(width),
                _ => None,
            })
            .sum()
    }

    /// Adds a node, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if `name` is already used.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
    ) -> Result<NodeId, NetlistError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = NodeId::new(self.nodes.len());
        let num_inputs = kind.input_ports().len();
        self.names.insert(name.clone(), id);
        self.nodes.push(RtlNode {
            name,
            kind,
            inputs: vec![None; num_inputs],
        });
        Ok(id)
    }

    /// Connects output `from_port` of `from` to input `to_port` of `to`.
    ///
    /// # Errors
    ///
    /// Returns an error if a port index is out of range, the widths differ,
    /// or the input port is already driven.
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: u32,
        to: NodeId,
        to_port: u32,
    ) -> Result<(), NetlistError> {
        let from_ports = self.node(from).kind.output_ports();
        let from_spec =
            from_ports
                .get(from_port as usize)
                .ok_or_else(|| NetlistError::PortOutOfRange {
                    node: self.node(from).name.clone(),
                    port: from_port as usize,
                    available: from_ports.len(),
                })?;
        let to_ports = self.node(to).kind.input_ports();
        let to_spec =
            to_ports
                .get(to_port as usize)
                .ok_or_else(|| NetlistError::PortOutOfRange {
                    node: self.node(to).name.clone(),
                    port: to_port as usize,
                    available: to_ports.len(),
                })?;
        if from_spec.width != to_spec.width {
            return Err(NetlistError::WidthMismatch {
                from: format!("{}.{}", self.node(from).name, from_spec.name),
                to: format!("{}.{}", self.node(to).name, to_spec.name),
                from_width: from_spec.width,
                to_width: to_spec.width,
            });
        }
        let slot = &mut self.nodes[to.index()].inputs[to_port as usize];
        if slot.is_some() {
            return Err(NetlistError::MultipleDrivers {
                node: self.nodes[to.index()].name.clone(),
                port: to_port as usize,
            });
        }
        *slot = Some(Driver {
            node: from,
            port: from_port,
        });
        Ok(())
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &RtlNode {
        &self.nodes[id.index()]
    }

    /// Looks a node up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &RtlNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i), n))
    }

    /// Ids of all primary input nodes.
    pub fn inputs(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Input { .. }))
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all primary output nodes.
    pub fn outputs(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Output { .. }))
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all register banks.
    pub fn registers(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.kind.is_sequential())
            .map(|(id, _)| id)
            .collect()
    }

    /// Validates structural invariants; see [`NetlistError`] for the checks.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: undriven inputs, combinational
    /// cycles, or a missing primary output.
    pub fn validate(&self) -> Result<(), NetlistError> {
        validate::validate(self)
    }

    /// A topological order of the combinational nodes (registers and inputs
    /// are sources and do not appear).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// subgraph is cyclic.
    pub fn topo_order_comb(&self) -> Result<Vec<NodeId>, NetlistError> {
        validate::topo_order_comb(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bit_adder() -> RtlCircuit {
        let mut c = RtlCircuit::new("t");
        let a = c.add_node("a", NodeKind::Input { width: 2 }).unwrap();
        let b = c.add_node("b", NodeKind::Input { width: 2 }).unwrap();
        let cin = c.add_node("cin", NodeKind::Input { width: 1 }).unwrap();
        let add = c
            .add_node("add", NodeKind::Comb(CombOp::Add { width: 2 }))
            .unwrap();
        let y = c.add_node("y", NodeKind::Output { width: 2 }).unwrap();
        c.connect(a, 0, add, 0).unwrap();
        c.connect(b, 0, add, 1).unwrap();
        c.connect(cin, 0, add, 2).unwrap();
        c.connect(add, 0, y, 0).unwrap();
        c
    }

    #[test]
    fn build_and_query() {
        let c = two_bit_adder();
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.inputs().len(), 3);
        assert_eq!(c.outputs().len(), 1);
        assert!(c.find("add").is_some());
        assert!(c.find("nonexistent").is_none());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut c = RtlCircuit::new("t");
        c.add_node("x", NodeKind::Input { width: 1 }).unwrap();
        let err = c.add_node("x", NodeKind::Input { width: 1 }).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateName("x".into()));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut c = RtlCircuit::new("t");
        let a = c.add_node("a", NodeKind::Input { width: 2 }).unwrap();
        let y = c.add_node("y", NodeKind::Output { width: 3 }).unwrap();
        let err = c.connect(a, 0, y, 0).unwrap_err();
        assert!(matches!(err, NetlistError::WidthMismatch { .. }));
    }

    #[test]
    fn double_drive_rejected() {
        let mut c = RtlCircuit::new("t");
        let a = c.add_node("a", NodeKind::Input { width: 1 }).unwrap();
        let b = c.add_node("b", NodeKind::Input { width: 1 }).unwrap();
        let y = c.add_node("y", NodeKind::Output { width: 1 }).unwrap();
        c.connect(a, 0, y, 0).unwrap();
        let err = c.connect(b, 0, y, 0).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn port_out_of_range_rejected() {
        let mut c = RtlCircuit::new("t");
        let a = c.add_node("a", NodeKind::Input { width: 1 }).unwrap();
        let y = c.add_node("y", NodeKind::Output { width: 1 }).unwrap();
        let err = c.connect(a, 3, y, 0).unwrap_err();
        assert!(matches!(err, NetlistError::PortOutOfRange { .. }));
    }

    #[test]
    fn flip_flop_bits_counted() {
        let mut c = RtlCircuit::new("t");
        c.add_node("r1", NodeKind::Register { width: 4 }).unwrap();
        c.add_node("r2", NodeKind::Register { width: 12 }).unwrap();
        assert_eq!(c.num_flip_flop_bits(), 16);
        assert_eq!(c.num_registers(), 2);
    }
}
