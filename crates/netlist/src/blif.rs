//! BLIF (Berkeley Logic Interchange Format) reader and writer.
//!
//! Supports the subset used by LUT-mapped benchmark circuits: `.model`,
//! `.inputs`, `.outputs`, `.names` (single-output cover), `.latch` and
//! `.end`, with `#` comments and `\` line continuations. `.names` functions
//! of up to [`crate::MAX_LUT_INPUTS`] inputs become LUTs;
//! `.latch` becomes a D flip-flop (clock and initial value are accepted and
//! ignored — NATURE flip-flops are zero-initialized).
//!
//! # Examples
//!
//! ```
//! let text = "\
//! .model xor2
//! .inputs a b
//! .outputs y
//! .names a b y
//! 10 1
//! 01 1
//! .end
//! ";
//! let net = nanomap_netlist::blif::parse(text)?;
//! assert_eq!(net.num_luts(), 1);
//! assert_eq!(net.name(), "xor2");
//! # Ok::<(), nanomap_netlist::ParseNetlistError>(())
//! ```

// This module faces untrusted input: every malformed file must surface
// as a `ParseNetlistError`, never a panic.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;

use crate::error::ParseNetlistError;
use crate::lut::{LutNetwork, SignalRef};
use crate::truth::{TruthTable, MAX_LUT_INPUTS};

#[derive(Debug)]
struct NamesBlock {
    line: usize,
    signals: Vec<String>, // inputs then output
    cover: Vec<(String, char)>,
}

#[derive(Debug)]
struct LatchBlock {
    line: usize,
    input: String,
    output: String,
}

/// Parses BLIF text into a [`LutNetwork`].
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] describing the first syntax or semantic
/// problem (unknown signal, over-wide function, malformed cover, …).
pub fn parse(text: &str) -> Result<LutNetwork, ParseNetlistError> {
    // --- Logical lines: strip comments, join continuations. ---
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let without_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let (fragment, continues) = match without_comment.trim_end().strip_suffix('\\') {
            Some(head) => (head.to_string(), true),
            None => (without_comment.to_string(), false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(&fragment);
                if continues {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((line_no, fragment));
                } else if !fragment.trim().is_empty() {
                    logical.push((line_no, fragment));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    // --- Pass 1: collect declarations. ---
    let mut model_name = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut names_blocks: Vec<NamesBlock> = Vec::new();
    let mut latches: Vec<LatchBlock> = Vec::new();

    let mut idx = 0;
    while idx < logical.len() {
        let (line_no, line) = &logical[idx];
        let line_no = *line_no;
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().unwrap_or("");
        match keyword {
            ".model" => {
                if let Some(name) = tokens.next() {
                    model_name = name.to_string();
                }
                idx += 1;
            }
            ".inputs" => {
                inputs.extend(tokens.map(str::to_string));
                idx += 1;
            }
            ".outputs" => {
                outputs.extend(tokens.map(str::to_string));
                idx += 1;
            }
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(ParseNetlistError::new(line_no, ".names needs an output"));
                }
                idx += 1;
                let mut cover = Vec::new();
                while idx < logical.len() {
                    let (row_line, row) = &logical[idx];
                    let trimmed = row.trim();
                    if trimmed.starts_with('.') {
                        break;
                    }
                    let parts: Vec<&str> = trimmed.split_whitespace().collect();
                    let (pattern, value) = match parts.len() {
                        1 if signals.len() == 1 => (String::new(), parts[0]),
                        2 => (parts[0].to_string(), parts[1]),
                        _ => {
                            return Err(ParseNetlistError::new(
                                *row_line,
                                format!("malformed cover row `{trimmed}`"),
                            ))
                        }
                    };
                    let bit = match value {
                        "0" => '0',
                        "1" => '1',
                        _ => {
                            return Err(ParseNetlistError::new(
                                *row_line,
                                format!("cover output must be 0 or 1, got `{value}`"),
                            ))
                        }
                    };
                    cover.push((pattern, bit));
                    idx += 1;
                }
                names_blocks.push(NamesBlock {
                    line: line_no,
                    signals,
                    cover,
                });
            }
            ".latch" => {
                let input = tokens.next().ok_or_else(|| {
                    ParseNetlistError::new(line_no, ".latch needs input and output")
                })?;
                let output = tokens.next().ok_or_else(|| {
                    ParseNetlistError::new(line_no, ".latch needs input and output")
                })?;
                latches.push(LatchBlock {
                    line: line_no,
                    input: input.to_string(),
                    output: output.to_string(),
                });
                idx += 1;
            }
            ".end" => {
                idx = logical.len();
            }
            other if other.starts_with('.') => {
                return Err(ParseNetlistError::new(
                    line_no,
                    format!("unsupported directive `{other}`"),
                ));
            }
            _ => {
                return Err(ParseNetlistError::new(
                    line_no,
                    format!("unexpected line `{line}`"),
                ));
            }
        }
    }

    // --- Pass 2: assign ids and resolve. ---
    let mut net = LutNetwork::new(model_name);
    let mut symbols: HashMap<String, SignalRef> = HashMap::new();
    for name in &inputs {
        let sig = net.add_input(name.clone());
        if symbols.insert(name.clone(), sig).is_some() {
            return Err(ParseNetlistError::new(
                0,
                format!("duplicate input `{name}`"),
            ));
        }
    }
    // Latch outputs are FF signals; D inputs resolved later.
    let mut latch_ids = Vec::with_capacity(latches.len());
    for latch in &latches {
        let ff = net.add_ff(SignalRef::Const(false), Some(latch.output.clone()));
        latch_ids.push(ff);
        if symbols
            .insert(latch.output.clone(), SignalRef::Ff(ff))
            .is_some()
        {
            return Err(ParseNetlistError::new(
                latch.line,
                format!("signal `{}` defined twice", latch.output),
            ));
        }
    }
    // Pre-register every .names output so forward references resolve. We
    // cannot know LutIds before insertion order, so insert placeholder
    // constants and fix up by building LUTs in dependency order instead:
    // simpler approach — topologically sort names blocks by signal deps.
    let mut defined: HashMap<&str, usize> = HashMap::new();
    for (i, block) in names_blocks.iter().enumerate() {
        let Some(output) = block.signals.last() else {
            return Err(ParseNetlistError::new(block.line, ".names needs an output"));
        };
        if symbols.contains_key(output) || defined.contains_key(output.as_str()) {
            return Err(ParseNetlistError::new(
                block.line,
                format!("signal `{output}` defined twice"),
            ));
        }
        defined.insert(output, i);
    }
    // Kahn's algorithm over blocks.
    let n = names_blocks.len();
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, block) in names_blocks.iter().enumerate() {
        for input in &block.signals[..block.signals.len() - 1] {
            if let Some(&src) = defined.get(input.as_str()) {
                indeg[i] += 1;
                succ[src].push(i);
            } else if !symbols.contains_key(input) {
                return Err(ParseNetlistError::new(
                    block.line,
                    format!("unknown signal `{input}`"),
                ));
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &s in &succ[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
        return Err(ParseNetlistError::new(
            names_blocks[stuck].line,
            "combinational cycle between .names blocks",
        ));
    }
    for i in order {
        let block = &names_blocks[i];
        let num_inputs = block.signals.len() - 1;
        if num_inputs as u32 > MAX_LUT_INPUTS {
            return Err(ParseNetlistError::new(
                block.line,
                format!(
                    "function of {num_inputs} inputs exceeds the {MAX_LUT_INPUTS}-input LUT limit"
                ),
            ));
        }
        let truth = cover_to_truth(num_inputs as u32, &block.cover, block.line)?;
        let input_sigs: Vec<SignalRef> = block.signals[..num_inputs]
            .iter()
            .map(|name| {
                symbols.get(name.as_str()).copied().ok_or_else(|| {
                    ParseNetlistError::new(block.line, format!("unknown signal `{name}`"))
                })
            })
            .collect::<Result<_, _>>()?;
        let output = block.signals[num_inputs].clone();
        let sig = net.add_lut_full(truth, input_sigs, None, Some(output.clone()));
        symbols.insert(output, sig);
    }
    // Close latch D inputs.
    for (latch, &ff) in latches.iter().zip(&latch_ids) {
        let d = *symbols.get(&latch.input).ok_or_else(|| {
            ParseNetlistError::new(latch.line, format!("unknown signal `{}`", latch.input))
        })?;
        net.set_ff_input(ff, d);
    }
    for name in &outputs {
        let sig = *symbols
            .get(name)
            .ok_or_else(|| ParseNetlistError::new(0, format!("unknown output `{name}`")))?;
        net.add_output(name.clone(), sig);
    }
    Ok(net)
}

fn cover_to_truth(
    num_inputs: u32,
    cover: &[(String, char)],
    line: usize,
) -> Result<TruthTable, ParseNetlistError> {
    if cover.is_empty() {
        // Empty cover is the constant 0.
        return Ok(TruthTable::constant_false(num_inputs));
    }
    let polarity = cover[0].1;
    let mut on = TruthTable::constant_false(num_inputs).bits();
    for (pattern, value) in cover {
        if *value != polarity {
            return Err(ParseNetlistError::new(
                line,
                "mixed ON-set and OFF-set rows in one cover",
            ));
        }
        if pattern.len() != num_inputs as usize {
            return Err(ParseNetlistError::new(
                line,
                format!(
                    "cover row `{pattern}` has {} literals, expected {num_inputs}",
                    pattern.len()
                ),
            ));
        }
        // Expand don't-cares.
        let chars: Vec<char> = pattern.chars().collect();
        for row in 0..(1u64 << num_inputs) {
            let matches = chars.iter().enumerate().all(|(bit, &c)| match c {
                '0' => (row >> bit) & 1 == 0,
                '1' => (row >> bit) & 1 == 1,
                '-' => true,
                _ => false,
            });
            let legal = chars.iter().all(|&c| matches!(c, '0' | '1' | '-'));
            if !legal {
                return Err(ParseNetlistError::new(
                    line,
                    format!("illegal literal in cover row `{pattern}`"),
                ));
            }
            if matches {
                on |= 1 << row;
            }
        }
    }
    let table = TruthTable::new(num_inputs, on);
    Ok(if polarity == '1' {
        table
    } else {
        table.complement()
    })
}

/// Serializes a [`LutNetwork`] to BLIF text.
///
/// LUT covers are written as full ON-set minterms (correct but not
/// minimized). Signals are named after the LUT/FF diagnostic names when
/// present, falling back to synthetic `lutN` / `ffN` names.
pub fn write(net: &LutNetwork) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", net.name()));
    out.push_str(".inputs");
    for name in net.input_names() {
        out.push_str(&format!(" {name}"));
    }
    out.push('\n');
    out.push_str(".outputs");
    for (name, _) in net.outputs() {
        out.push_str(&format!(" {name}"));
    }
    out.push('\n');

    let signal_name = |sig: SignalRef| -> String {
        match sig {
            SignalRef::Input(i) => net.input_names()[i.index()].clone(),
            SignalRef::Lut(l) => net
                .lut(l)
                .name
                .clone()
                .unwrap_or_else(|| format!("lut{}", l.index())),
            SignalRef::Ff(f) => net
                .ff(f)
                .name
                .clone()
                .unwrap_or_else(|| format!("ff{}", f.index())),
            SignalRef::Const(false) => "$false".to_string(),
            SignalRef::Const(true) => "$true".to_string(),
        }
    };

    // Constants used anywhere get generated .names blocks.
    let mut used_const = [false, false];
    let mut mark = |sig: SignalRef| {
        if let SignalRef::Const(c) = sig {
            used_const[c as usize] = true;
        }
    };
    for (_, lut) in net.luts() {
        lut.inputs.iter().copied().for_each(&mut mark);
    }
    for (_, ff) in net.ffs() {
        mark(ff.d);
    }
    for &(_, sig) in net.outputs() {
        mark(sig);
    }
    if used_const[0] {
        out.push_str(".names $false\n");
    }
    if used_const[1] {
        out.push_str(".names $true\n1\n");
    }

    for (id, ff) in net.ffs() {
        out.push_str(&format!(
            ".latch {} {} re clk 0\n",
            signal_name(ff.d),
            signal_name(SignalRef::Ff(id))
        ));
    }
    for (id, lut) in net.luts() {
        out.push_str(".names");
        for &input in &lut.inputs {
            out.push_str(&format!(" {}", signal_name(input)));
        }
        out.push_str(&format!(" {}\n", signal_name(SignalRef::Lut(id))));
        for row in 0..lut.truth.num_rows() {
            if lut.truth.eval_row(row) {
                for bit in 0..lut.truth.num_inputs() {
                    out.push(if (row >> bit) & 1 == 1 { '1' } else { '0' });
                }
                if lut.truth.num_inputs() > 0 {
                    out.push(' ');
                }
                out.push_str("1\n");
            }
        }
    }
    // Outputs whose declared name differs from the driving signal's name
    // need an explicit buffer block.
    for (name, sig) in net.outputs() {
        let driver = signal_name(*sig);
        if *name != driver {
            out.push_str(&format!(".names {driver} {name}\n1 1\n"));
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::LutSimulator;

    const XOR_BLIF: &str = "\
.model xor2
.inputs a b
.outputs y
.names a b y
10 1
01 1
.end
";

    #[test]
    fn parse_xor() {
        let net = parse(XOR_BLIF).unwrap();
        assert_eq!(net.num_inputs(), 2);
        assert_eq!(net.num_luts(), 1);
        let mut sim = LutSimulator::new(&net).unwrap();
        sim.set_inputs(&[true, false]);
        sim.eval_comb();
        assert_eq!(sim.outputs(), vec![true]);
        sim.set_inputs(&[true, true]);
        sim.eval_comb();
        assert_eq!(sim.outputs(), vec![false]);
    }

    #[test]
    fn parse_latch_counter_bit() {
        let text = "\
.model toggle
.inputs en
.outputs q
.latch d q re clk 0
.names en q d
10 1
01 1
.end
";
        let net = parse(text).unwrap();
        assert_eq!(net.num_ffs(), 1);
        let mut sim = LutSimulator::new(&net).unwrap();
        sim.set_inputs(&[true]);
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.eval_comb();
            seen.push(sim.outputs()[0]);
            sim.step();
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn parse_off_set_cover() {
        let text = "\
.model nand2
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let net = parse(text).unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        for (a, b, expected) in [
            (false, false, true),
            (true, false, true),
            (true, true, false),
        ] {
            sim.set_inputs(&[a, b]);
            sim.eval_comb();
            assert_eq!(sim.outputs(), vec![expected]);
        }
    }

    #[test]
    fn parse_dont_cares() {
        let text = "\
.model f
.inputs a b c
.outputs y
.names a b c y
1-1 1
.end
";
        let net = parse(text).unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        sim.set_inputs(&[true, false, true]);
        sim.eval_comb();
        assert_eq!(sim.outputs(), vec![true]);
        sim.set_inputs(&[true, true, true]);
        sim.eval_comb();
        assert_eq!(sim.outputs(), vec![true]);
        sim.set_inputs(&[false, true, true]);
        sim.eval_comb();
        assert_eq!(sim.outputs(), vec![false]);
    }

    #[test]
    fn parse_constant_blocks() {
        let text = "\
.model c
.inputs a
.outputs y z
.names y
1
.names z
.end
";
        let net = parse(text).unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        sim.set_inputs(&[false]);
        sim.eval_comb();
        assert_eq!(sim.outputs(), vec![true, false]);
    }

    #[test]
    fn out_of_order_definitions_resolve() {
        let text = "\
.model o
.inputs a
.outputs y
.names t y
1 1
.names a t
0 1
.end
";
        let net = parse(text).unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        sim.set_inputs(&[false]);
        sim.eval_comb();
        assert_eq!(sim.outputs(), vec![true]);
    }

    #[test]
    fn unknown_signal_is_error() {
        let text = "\
.model e
.inputs a
.outputs y
.names a ghost y
11 1
.end
";
        assert!(parse(text).is_err());
    }

    #[test]
    fn mixed_cover_polarity_is_error() {
        let text = "\
.model e
.inputs a b
.outputs y
.names a b y
11 1
00 0
.end
";
        assert!(parse(text).is_err());
    }

    #[test]
    fn too_wide_function_is_error() {
        let text = "\
.model e
.inputs a b c d e f g
.outputs y
.names a b c d e f g y
1111111 1
.end
";
        assert!(parse(text).is_err());
    }

    #[test]
    fn continuation_lines_join() {
        let text = ".model k\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let net = parse(text).unwrap();
        assert_eq!(net.num_inputs(), 2);
    }

    #[test]
    fn round_trip_preserves_function() {
        let net = parse(XOR_BLIF).unwrap();
        let text = write(&net);
        let net2 = parse(&text).unwrap();
        let mut sim1 = LutSimulator::new(&net).unwrap();
        let mut sim2 = LutSimulator::new(&net2).unwrap();
        for row in 0..4u32 {
            let ins = [row & 1 == 1, row >> 1 & 1 == 1];
            sim1.set_inputs(&ins);
            sim2.set_inputs(&ins);
            sim1.eval_comb();
            sim2.eval_comb();
            assert_eq!(sim1.outputs(), sim2.outputs());
        }
    }

    #[test]
    fn round_trip_sequential() {
        let text = "\
.model seq
.inputs a
.outputs q
.latch d q re clk 0
.names a q d
10 1
01 1
.end
";
        let net = parse(text).unwrap();
        let net2 = parse(&write(&net)).unwrap();
        let mut sim1 = LutSimulator::new(&net).unwrap();
        let mut sim2 = LutSimulator::new(&net2).unwrap();
        for step in 0..8 {
            let input = [step % 3 == 0];
            sim1.set_inputs(&input);
            sim2.set_inputs(&input);
            sim1.step();
            sim2.step();
            assert_eq!(sim1.outputs(), sim2.outputs());
        }
    }
}
