//! Strongly-typed identifiers used across the netlist IRs.
//!
//! Every graph-like structure in the workspace indexes its elements with a
//! dedicated newtype (`C-NEWTYPE`), so a [`LutId`] can never be used where a
//! [`FfId`] is expected. All ids are plain `u32` indices into the owning
//! container and are cheap to copy.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the raw index for container addressing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of an RTL node (module instance, register bank, port).
    NodeId,
    "n"
);
define_id!(
    /// Identifier of a gate in a gate-level network.
    GateId,
    "g"
);
define_id!(
    /// Identifier of a look-up table in a mapped LUT network.
    LutId,
    "lut"
);
define_id!(
    /// Identifier of a flip-flop in a mapped LUT network.
    FfId,
    "ff"
);
define_id!(
    /// Identifier of a primary input bit of a mapped network.
    InputId,
    "in"
);
define_id!(
    /// Identifier of a plane produced by register levelization.
    PlaneId,
    "plane"
);
define_id!(
    /// Identifier of an RTL module instance a LUT originates from.
    ModuleId,
    "m"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_index() {
        let id = LutId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", NodeId::new(3)), "n3");
        assert_eq!(format!("{:?}", PlaneId::new(1)), "plane1");
        assert_eq!(format!("{}", FfId::new(0)), "ff0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(GateId::new(1) < GateId::new(2));
        assert_eq!(ModuleId::new(7), ModuleId::new(7));
    }
}
