//! Register levelization and plane extraction (Section 3 of the paper).
//!
//! Given a mapped [`LutNetwork`], the registers are levelized: register
//! feedback strongly-connected components collapse to a single level, and
//! the *plane* of a LUT is the register level its output ultimately feeds.
//! The logic between two consecutive register boundaries is a plane; the
//! propagation cycle of a plane is the *plane cycle*, and temporal logic
//! folding further partitions each plane into folding stages.

use std::collections::BTreeSet;

use crate::error::NetlistError;
use crate::ids::{FfId, InputId, LutId, PlaneId};
use crate::lut::{LutNetwork, SignalRef};

/// One plane: the combinational logic between two register boundaries.
#[derive(Debug, Clone)]
pub struct Plane {
    /// Plane id; planes are numbered `0 .. num_planes` in execution order.
    pub id: PlaneId,
    /// Member LUTs.
    pub luts: Vec<LutId>,
    /// Logic depth of each member LUT *within the plane* (1-based), aligned
    /// with [`Plane::luts`].
    pub lut_depths: Vec<u32>,
    /// Maximum logic depth within the plane (`depth_i` in the paper).
    pub depth: u32,
    /// Flip-flops whose outputs feed this plane (the *plane registers*;
    /// they must persist through every folding stage of the plane).
    pub input_ffs: Vec<FfId>,
    /// Flip-flops written by this plane's logic.
    pub output_ffs: Vec<FfId>,
    /// Primary inputs consumed by this plane.
    pub uses_inputs: Vec<InputId>,
}

impl Plane {
    /// Number of LUTs in the plane (`num_LUT_i` in the paper).
    pub fn num_luts(&self) -> usize {
        self.luts.len()
    }

    /// Depth of a member LUT within the plane.
    ///
    /// # Panics
    ///
    /// Panics if `lut` is not a member of this plane.
    pub fn depth_of(&self, lut: LutId) -> u32 {
        let pos = self
            .luts
            .iter()
            .position(|&l| l == lut)
            .expect("lut not in plane");
        self.lut_depths[pos]
    }
}

/// The result of register levelization: all planes of a circuit.
#[derive(Debug, Clone)]
pub struct PlaneSet {
    planes: Vec<Plane>,
    /// Plane of every LUT.
    lut_plane: Vec<PlaneId>,
    /// Levelized register level of every flip-flop (1-based).
    ff_level: Vec<u32>,
    /// LUTs whose destination registers span multiple levels (multicycle
    /// paths); these are assigned to the earliest destination plane.
    irregular_luts: usize,
}

impl PlaneSet {
    /// Levelizes registers and extracts the planes of `net`.
    ///
    /// # Errors
    ///
    /// Returns an error if the network fails validation.
    pub fn extract(net: &LutNetwork) -> Result<Self, NetlistError> {
        let _span = nanomap_observe::span!("plane-extract", luts = net.num_luts() as u64);
        net.validate()?;
        let topo = net.topo_order()?;
        let num_ffs = net.num_ffs();
        let num_luts = net.num_luts();

        // --- 1. Sequential sources of every LUT (bitset over FFs). ---
        let words = num_ffs.div_ceil(64);
        let mut lut_sources: Vec<Vec<u64>> = vec![vec![0u64; words]; num_luts];
        let source_of = |sig: SignalRef, sources: &mut Vec<u64>, luts: &[Vec<u64>]| match sig {
            SignalRef::Ff(f) => sources[f.index() / 64] |= 1 << (f.index() % 64),
            SignalRef::Lut(l) => {
                let src = luts[l.index()].clone();
                for (w, s) in sources.iter_mut().zip(src) {
                    *w |= s;
                }
            }
            _ => {}
        };
        for &id in &topo {
            let mut acc = vec![0u64; words];
            for &input in &net.lut(id).inputs {
                source_of(input, &mut acc, &lut_sources);
            }
            lut_sources[id.index()] = acc;
        }

        // --- 2. FF dependency graph: edge g -> f if g reaches f.d. ---
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); num_ffs];
        for (fid, ff) in net.ffs() {
            let mut bits = vec![0u64; words];
            source_of(ff.d, &mut bits, &lut_sources);
            for g in iter_bits(&bits) {
                preds[fid.index()].push(g);
            }
        }

        // --- 2b. Register banks levelize as units (the paper levelizes
        // word-level registers): make bank members mutually dependent so
        // the SCC pass merges them. ---
        let mut bank_members: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (fid, ff) in net.ffs() {
            if let Some(bank) = ff.bank {
                bank_members.entry(bank).or_default().push(fid.index());
            }
        }
        for members in bank_members.values() {
            for pair in members.windows(2) {
                preds[pair[0]].push(pair[1]);
                preds[pair[1]].push(pair[0]);
            }
        }

        // --- 3. SCC condensation + longest-path levels. ---
        let scc = tarjan_scc(&preds, num_ffs);
        let ff_level = scc_levels(&preds, &scc, num_ffs);

        // --- 4. Destination level of every LUT (reverse propagation). ---
        // dest_min/dest_max over reachable destination FF levels; POs are a
        // virtual destination at level (max_level + 1).
        let max_level = ff_level.iter().copied().max().unwrap_or(0);
        const UNSET: u32 = u32::MAX;
        let mut dest_min = vec![UNSET; num_luts];
        let mut dest_max = vec![0u32; num_luts];
        let fanouts = net.fanouts();
        // Mark LUTs that feed primary outputs.
        let mut feeds_po = vec![false; num_luts];
        for (_, sig) in net.outputs() {
            if let SignalRef::Lut(l) = sig {
                feeds_po[l.index()] = true;
            }
        }
        for &id in topo.iter().rev() {
            let i = id.index();
            let mut lo = UNSET;
            let mut hi = 0u32;
            if feeds_po[i] {
                lo = lo.min(max_level + 1);
                hi = hi.max(max_level + 1);
            }
            for &f in &fanouts.lut_to_ffs[i] {
                lo = lo.min(ff_level[f.index()]);
                hi = hi.max(ff_level[f.index()]);
            }
            for &v in &fanouts.lut_to_luts[i] {
                if dest_min[v.index()] != UNSET {
                    lo = lo.min(dest_min[v.index()]);
                    hi = hi.max(dest_max[v.index()]);
                }
            }
            dest_min[i] = lo;
            dest_max[i] = hi;
        }

        // --- 5. Assign planes. ---
        // Plane p (1-based) holds logic destined for level-p registers; logic
        // destined only for POs belongs to the final plane. Dead LUTs
        // (reaching nothing) are placed by their source level.
        let mut has_po_plane = false;
        for (i, &lo) in dest_min.iter().enumerate() {
            if lo == max_level + 1 && !net.lut(LutId::new(i)).inputs.is_empty() {
                has_po_plane = true;
            }
        }
        // Does any PO-destined logic start from the deepest register level
        // (or from PIs when there are no registers)? Then it needs its own
        // plane after the last register boundary.
        let num_planes_raw = if has_po_plane {
            max_level + 1
        } else {
            max_level
        };
        let num_planes = num_planes_raw.max(1) as usize;

        let mut lut_plane = vec![PlaneId::new(0); num_luts];
        let mut irregular = 0usize;
        for i in 0..num_luts {
            let plane = if dest_min[i] == UNSET {
                // Dead logic: place by source level.
                let src = iter_bits(&lut_sources[i])
                    .map(|g| ff_level[g])
                    .max()
                    .unwrap_or(0);
                (src + 1).min(num_planes as u32)
            } else {
                dest_min[i].min(num_planes as u32)
            };
            if dest_min[i] != UNSET && dest_max[i] > dest_min[i] {
                irregular += 1;
            }
            lut_plane[i] = PlaneId::new(plane as usize - 1);
        }

        // --- 6. Build per-plane structures. ---
        let mut planes: Vec<Plane> = (0..num_planes)
            .map(|p| Plane {
                id: PlaneId::new(p),
                luts: Vec::new(),
                lut_depths: Vec::new(),
                depth: 0,
                input_ffs: Vec::new(),
                output_ffs: Vec::new(),
                uses_inputs: Vec::new(),
            })
            .collect();
        // Depth within plane, recomputed over the plane-restricted DAG.
        // ASAP depths give the plane's critical-path length; the stored
        // per-LUT depths are ALAP (as late as possible), which staggers
        // shallow side logic (e.g. a multiplier's partial-product AND
        // plane) across the depth windows so the LUT clusters of any
        // folding level stay balanced — matching the cluster sizes the
        // paper reports for its multiplier partitions.
        let mut asap = vec![0u32; num_luts];
        for &id in &topo {
            let i = id.index();
            let p = lut_plane[i];
            asap[i] = 1 + net
                .lut(id)
                .inputs
                .iter()
                .filter_map(|s| match s {
                    SignalRef::Lut(l) if lut_plane[l.index()] == p => Some(asap[l.index()]),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
        }
        // Longest path from each LUT to a plane sink, within the plane.
        let mut height = vec![1u32; num_luts];
        for &id in topo.iter().rev() {
            let i = id.index();
            let p = lut_plane[i];
            let mut h = 1;
            for &v in &fanouts.lut_to_luts[i] {
                if lut_plane[v.index()] == p {
                    h = h.max(1 + height[v.index()]);
                }
            }
            height[i] = h;
        }
        // Per-plane critical path length.
        let mut plane_cp = vec![0u32; num_planes];
        for i in 0..num_luts {
            let p = lut_plane[i].index();
            plane_cp[p] = plane_cp[p].max(asap[i]);
        }
        let mut depth_in_plane = vec![0u32; num_luts];
        for i in 0..num_luts {
            let p = lut_plane[i].index();
            depth_in_plane[i] = plane_cp[p] + 1 - height[i];
        }
        let mut input_ff_sets: Vec<BTreeSet<FfId>> = vec![BTreeSet::new(); num_planes];
        let mut output_ff_sets: Vec<BTreeSet<FfId>> = vec![BTreeSet::new(); num_planes];
        let mut input_pi_sets: Vec<BTreeSet<InputId>> = vec![BTreeSet::new(); num_planes];
        for &id in &topo {
            let i = id.index();
            let p = lut_plane[i].index();
            planes[p].luts.push(id);
            planes[p].lut_depths.push(depth_in_plane[i]);
            planes[p].depth = planes[p].depth.max(depth_in_plane[i]);
            for &input in &net.lut(id).inputs {
                match input {
                    SignalRef::Ff(f) => {
                        input_ff_sets[p].insert(f);
                    }
                    SignalRef::Input(pi) => {
                        input_pi_sets[p].insert(pi);
                    }
                    _ => {}
                }
            }
        }
        for (fid, ff) in net.ffs() {
            match ff.d {
                SignalRef::Lut(l) => {
                    output_ff_sets[lut_plane[l.index()].index()].insert(fid);
                }
                SignalRef::Ff(_) | SignalRef::Input(_) => {
                    // Shift-register / pass-through bit: written by the plane
                    // preceding its own level.
                    let level = ff_level[fid.index()] as usize;
                    let plane = level.saturating_sub(1).min(num_planes - 1);
                    output_ff_sets[plane].insert(fid);
                }
                SignalRef::Const(_) => {}
            }
        }
        for p in 0..num_planes {
            planes[p].input_ffs = input_ff_sets[p].iter().copied().collect();
            planes[p].output_ffs = output_ff_sets[p].iter().copied().collect();
            planes[p].uses_inputs = input_pi_sets[p].iter().copied().collect();
        }

        Ok(Self {
            planes,
            lut_plane,
            ff_level,
            irregular_luts: irregular,
        })
    }

    /// The planes in execution order.
    pub fn planes(&self) -> &[Plane] {
        &self.planes
    }

    /// Number of planes (`num_plane` in the paper).
    pub fn num_planes(&self) -> usize {
        self.planes.len()
    }

    /// The plane a LUT belongs to.
    pub fn plane_of(&self, lut: LutId) -> PlaneId {
        self.lut_plane[lut.index()]
    }

    /// Levelized register level of a flip-flop (1-based).
    pub fn ff_level(&self, ff: FfId) -> u32 {
        self.ff_level[ff.index()]
    }

    /// Maximum LUT count over all planes (`LUT_max` in the paper).
    pub fn lut_max(&self) -> usize {
        self.planes.iter().map(Plane::num_luts).max().unwrap_or(0)
    }

    /// Maximum logic depth over all planes (`depth_max` in the paper).
    pub fn depth_max(&self) -> u32 {
        self.planes.iter().map(|p| p.depth).max().unwrap_or(0)
    }

    /// Number of LUTs whose destination registers span multiple levels.
    pub fn irregular_luts(&self) -> usize {
        self.irregular_luts
    }
}

fn iter_bits(bits: &[u64]) -> impl Iterator<Item = usize> + '_ {
    bits.iter().enumerate().flat_map(|(w, &word)| {
        (0..64)
            .filter(move |b| (word >> b) & 1 == 1)
            .map(move |b| w * 64 + b)
    })
}

/// Iterative Tarjan SCC over the FF predecessor graph. Returns the SCC index
/// of every node.
fn tarjan_scc(preds: &[Vec<usize>], n: usize) -> Vec<usize> {
    // Build successor lists (Tarjan walks successors).
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (f, ps) in preds.iter().enumerate() {
        for &g in ps {
            succs[g].push(f);
        }
    }
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_scc = 0usize;

    // Explicit DFS stack: (node, child-iteration position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *pos < succs[v].len() {
                let w = succs[v][*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc_of[w] = next_scc;
                        if w == v {
                            break;
                        }
                    }
                    next_scc += 1;
                }
            }
        }
    }
    scc_of
}

/// Longest-path levels over the SCC condensation; every FF level is >= 1.
fn scc_levels(preds: &[Vec<usize>], scc_of: &[usize], n: usize) -> Vec<u32> {
    if n == 0 {
        return Vec::new();
    }
    let num_sccs = scc_of.iter().copied().max().map_or(0, |m| m + 1);
    // Condensed edges: scc(g) -> scc(f) for g in preds(f), distinct SCCs.
    let mut cpreds: Vec<Vec<usize>> = vec![Vec::new(); num_sccs];
    for (f, ps) in preds.iter().enumerate() {
        for &g in ps {
            if scc_of[g] != scc_of[f] {
                cpreds[scc_of[f]].push(scc_of[g]);
            }
        }
    }
    // Longest path via memoized DFS (the condensation is acyclic).
    let mut level = vec![0u32; num_sccs];
    let mut state = vec![0u8; num_sccs]; // 0 = unvisited, 1 = in progress, 2 = done
    for s in 0..num_sccs {
        if state[s] == 2 {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(s, 0)];
        while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
            if *pos == 0 {
                state[v] = 1;
            }
            if *pos < cpreds[v].len() {
                let w = cpreds[v][*pos];
                *pos += 1;
                if state[w] != 2 {
                    debug_assert_ne!(state[w], 1, "condensation must be acyclic");
                    dfs.push((w, 0));
                }
            } else {
                let max_pred = cpreds[v].iter().map(|&w| level[w]).max().unwrap_or(0);
                level[v] = max_pred + 1;
                state[v] = 2;
                dfs.pop();
            }
        }
    }
    (0..n).map(|f| level[scc_of[f]]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    /// PI -> lut -> FF1 -> lut -> FF2 -> lut -> PO: three planes.
    fn pipeline3() -> LutNetwork {
        let mut net = LutNetwork::new("pipe3");
        let a = net.add_input("a");
        let l1 = net.add_lut(TruthTable::buffer(), vec![a]);
        let f1 = net.add_ff(l1, Some("f1".into()));
        let l2 = net.add_lut(TruthTable::inverter(), vec![SignalRef::Ff(f1)]);
        let f2 = net.add_ff(l2, Some("f2".into()));
        let l3 = net.add_lut(TruthTable::buffer(), vec![SignalRef::Ff(f2)]);
        net.add_output("y", l3);
        net
    }

    #[test]
    fn pipeline_has_three_planes() {
        let net = pipeline3();
        let ps = PlaneSet::extract(&net).unwrap();
        assert_eq!(ps.num_planes(), 3);
        assert_eq!(ps.ff_level(FfId::new(0)), 1);
        assert_eq!(ps.ff_level(FfId::new(1)), 2);
        for plane in ps.planes() {
            assert_eq!(plane.num_luts(), 1);
            assert_eq!(plane.depth, 1);
        }
        // Plane registers: plane 0 has none (PI-fed), plane 1 reads f1, plane 2 reads f2.
        assert!(ps.planes()[0].input_ffs.is_empty());
        assert_eq!(ps.planes()[1].input_ffs, vec![FfId::new(0)]);
        assert_eq!(ps.planes()[2].input_ffs, vec![FfId::new(1)]);
        assert_eq!(ps.planes()[0].output_ffs, vec![FfId::new(0)]);
    }

    /// Feedback datapath: FFs in an SCC collapse to one plane.
    #[test]
    fn feedback_loop_is_single_plane() {
        let mut net = LutNetwork::new("fb");
        let a = net.add_input("a");
        let f1 = net.add_ff(SignalRef::Const(false), Some("f1".into()));
        let f2 = net.add_ff(SignalRef::Const(false), Some("f2".into()));
        // f1 <- lut(f2, a); f2 <- lut(f1)
        let l1 = net.add_lut(TruthTable::and(2), vec![SignalRef::Ff(f2), a]);
        let l2 = net.add_lut(TruthTable::inverter(), vec![SignalRef::Ff(f1)]);
        net.set_ff_input(f1, l1);
        net.set_ff_input(f2, l2);
        net.add_output("y", SignalRef::Ff(f1));
        let ps = PlaneSet::extract(&net).unwrap();
        assert_eq!(ps.num_planes(), 1);
        assert_eq!(ps.ff_level(f1), ps.ff_level(f2));
        assert_eq!(ps.planes()[0].num_luts(), 2);
    }

    /// Pure combinational circuit: exactly one plane.
    #[test]
    fn combinational_circuit_single_plane() {
        let mut net = LutNetwork::new("comb");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let l1 = net.add_lut(TruthTable::xor(2), vec![a, b]);
        let l2 = net.add_lut(TruthTable::inverter(), vec![l1]);
        net.add_output("y", l2);
        let ps = PlaneSet::extract(&net).unwrap();
        assert_eq!(ps.num_planes(), 1);
        assert_eq!(ps.planes()[0].depth, 2);
        assert_eq!(ps.lut_max(), 2);
        assert_eq!(ps.depth_max(), 2);
    }

    /// Depth within a plane restarts at the register boundary.
    #[test]
    fn plane_depth_restarts_at_boundary() {
        let mut net = LutNetwork::new("d");
        let a = net.add_input("a");
        let l1 = net.add_lut(TruthTable::buffer(), vec![a]);
        let l2 = net.add_lut(TruthTable::buffer(), vec![l1]);
        let f = net.add_ff(l2, None);
        let l3 = net.add_lut(TruthTable::buffer(), vec![SignalRef::Ff(f)]);
        net.add_output("y", l3);
        let ps = PlaneSet::extract(&net).unwrap();
        assert_eq!(ps.num_planes(), 2);
        assert_eq!(ps.planes()[0].depth, 2);
        assert_eq!(ps.planes()[1].depth, 1);
    }

    /// Shift register (FF -> FF direct) levelizes correctly.
    #[test]
    fn shift_register_levels() {
        let mut net = LutNetwork::new("sr");
        let a = net.add_input("a");
        let l = net.add_lut(TruthTable::buffer(), vec![a]);
        let f1 = net.add_ff(l, None);
        let f2 = net.add_ff(SignalRef::Ff(f1), None);
        let f3 = net.add_ff(SignalRef::Ff(f2), None);
        let lo = net.add_lut(TruthTable::buffer(), vec![SignalRef::Ff(f3)]);
        net.add_output("y", lo);
        let ps = PlaneSet::extract(&net).unwrap();
        assert_eq!(ps.ff_level(f1), 1);
        assert_eq!(ps.ff_level(f2), 2);
        assert_eq!(ps.ff_level(f3), 3);
        assert_eq!(ps.num_planes(), 4);
    }

    #[test]
    fn multicycle_paths_counted_irregular() {
        let mut net = LutNetwork::new("mc");
        let a = net.add_input("a");
        let l1 = net.add_lut(TruthTable::buffer(), vec![a]);
        let f1 = net.add_ff(l1, None);
        // l2 feeds both a level-1 FF (via f1 path it *is* plane 1) and a level-2 FF.
        let l2 = net.add_lut(TruthTable::inverter(), vec![a]);
        let fx = net.add_ff(l2, None); // level 1
        let l3 = net.add_lut(
            TruthTable::and(2),
            vec![SignalRef::Ff(f1), SignalRef::Ff(fx)],
        );
        let f2 = net.add_ff(l3, None); // level 2
                                       // multicycle: l4 fed by PI feeds f2's cone AND fx
        let l4 = net.add_lut(TruthTable::buffer(), vec![a]);
        let f2b = net.add_ff(l4, None);
        let _ = f2b;
        net.add_output("y", SignalRef::Ff(f2));
        let ps = PlaneSet::extract(&net).unwrap();
        // Sanity: extraction succeeds and every LUT has a plane.
        assert!(ps.num_planes() >= 2);
        for (id, _) in net.luts() {
            let p = ps.plane_of(id);
            assert!(p.index() < ps.num_planes());
        }
    }
}
