//! Netlist intermediate representations for the NanoMap flow.
//!
//! This crate provides the circuit data structures shared by every stage of
//! the NanoMap design-optimization flow for the NATURE hybrid nanotube/CMOS
//! reconfigurable architecture (Zhang, Shang, Jha — DAC 2007):
//!
//! * [`rtl`] — register-transfer-level circuits built from multi-bit
//!   operators (adders, multipliers, muxes, registers) with a cycle-accurate
//!   reference simulator;
//! * [`gate`] — flat combinational Boolean networks (the FlowMap input and
//!   the BLIF parser target);
//! * [`lut`] — mapped LUT/flip-flop networks, the representation the
//!   folding flow schedules, clusters, places and routes;
//! * [`plane`] — register levelization into *planes*, the unit of temporal
//!   logic folding;
//! * [`blif`] / [`vhdl`] — textual front-ends.
//!
//! # Examples
//!
//! Build a toy RTL circuit and simulate it:
//!
//! ```
//! use nanomap_netlist::rtl::{CombOp, RtlBuilder, RtlSimulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = RtlBuilder::new("demo");
//! let a = b.input("a", 4);
//! let n = b.comb("inv", CombOp::Not { width: 4 });
//! b.connect(a, 0, n, 0)?;
//! let y = b.output("y", 4);
//! b.connect(n, 0, y, 0)?;
//! let circuit = b.finish()?;
//!
//! let mut sim = RtlSimulator::new(&circuit)?;
//! sim.set_input("a", 0b1010);
//! sim.eval_comb();
//! assert_eq!(sim.output("y"), Some(0b0101));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod blif;
mod error;
pub mod gate;
mod ids;
pub mod lut;
pub mod plane;
pub mod rtl;
mod stats;
mod truth;
pub mod vhdl;

pub use error::{NetlistError, ParseNetlistError};
pub use ids::{FfId, GateId, InputId, LutId, ModuleId, NodeId, PlaneId};
pub use lut::{FlipFlop, Lut, LutNetwork, LutOrigin, LutSimulator, SignalRef};
pub use plane::{Plane, PlaneSet};
pub use stats::NetworkStats;
pub use truth::{TruthTable, MAX_LUT_INPUTS};
