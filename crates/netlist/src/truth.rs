//! Compact truth tables for LUT functions of up to six variables.
//!
//! A [`TruthTable`] packs the output column of a Boolean function into a
//! `u64`: bit `i` holds the function value for the input assignment whose
//! binary encoding is `i` (input 0 is the least-significant variable). This
//! is the canonical representation used by the technology mapper and the
//! configuration bitmap generator.

use std::fmt;

/// Maximum number of LUT inputs representable by a [`TruthTable`].
pub const MAX_LUT_INPUTS: u32 = 6;

/// The output column of a Boolean function of up to [`MAX_LUT_INPUTS`] variables.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::TruthTable;
///
/// let xor2 = TruthTable::from_fn(2, |bits| bits.iter().filter(|&&b| b).count() % 2 == 1);
/// assert!(xor2.eval(&[true, false]));
/// assert!(!xor2.eval(&[true, true]));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TruthTable {
    bits: u64,
    num_inputs: u32,
}

impl TruthTable {
    /// Creates a truth table from raw output bits.
    ///
    /// Bits above the `2^num_inputs` significant positions are masked off so
    /// that logically equal functions compare equal.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 6`.
    pub fn new(num_inputs: u32, bits: u64) -> Self {
        assert!(
            num_inputs <= MAX_LUT_INPUTS,
            "truth table supports at most {MAX_LUT_INPUTS} inputs, got {num_inputs}"
        );
        Self {
            bits: bits & Self::mask(num_inputs),
            num_inputs,
        }
    }

    /// Builds a truth table by evaluating `f` on every input assignment.
    ///
    /// `f` receives a slice of `num_inputs` booleans, input 0 first.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 6`.
    pub fn from_fn(num_inputs: u32, mut f: impl FnMut(&[bool]) -> bool) -> Self {
        assert!(num_inputs <= MAX_LUT_INPUTS);
        let mut bits = 0u64;
        let mut assignment = [false; MAX_LUT_INPUTS as usize];
        for row in 0..(1u64 << num_inputs) {
            for (i, slot) in assignment.iter_mut().enumerate().take(num_inputs as usize) {
                *slot = (row >> i) & 1 == 1;
            }
            if f(&assignment[..num_inputs as usize]) {
                bits |= 1 << row;
            }
        }
        Self { bits, num_inputs }
    }

    /// The constant-0 function of `num_inputs` variables.
    pub fn constant_false(num_inputs: u32) -> Self {
        Self::new(num_inputs, 0)
    }

    /// The constant-1 function of `num_inputs` variables.
    pub fn constant_true(num_inputs: u32) -> Self {
        Self::new(num_inputs, u64::MAX)
    }

    /// The identity function of one variable (a buffer).
    pub fn buffer() -> Self {
        Self::new(1, 0b10)
    }

    /// The negation of one variable (an inverter).
    pub fn inverter() -> Self {
        Self::new(1, 0b01)
    }

    /// The n-input AND function.
    pub fn and(num_inputs: u32) -> Self {
        Self::from_fn(num_inputs, |bits| bits.iter().all(|&b| b))
    }

    /// The n-input OR function.
    pub fn or(num_inputs: u32) -> Self {
        Self::from_fn(num_inputs, |bits| bits.iter().any(|&b| b))
    }

    /// The n-input XOR (odd parity) function.
    pub fn xor(num_inputs: u32) -> Self {
        Self::from_fn(num_inputs, |bits| {
            bits.iter().filter(|&&b| b).count() % 2 == 1
        })
    }

    /// The 2:1 multiplexer `sel ? b : a` with input order `[a, b, sel]`.
    pub fn mux2() -> Self {
        Self::from_fn(3, |bits| if bits[2] { bits[1] } else { bits[0] })
    }

    /// The full-adder sum `a ^ b ^ cin` with input order `[a, b, cin]`.
    pub fn full_adder_sum() -> Self {
        Self::xor(3)
    }

    /// The full-adder carry `maj(a, b, cin)` with input order `[a, b, cin]`.
    pub fn full_adder_carry() -> Self {
        #[allow(clippy::nonminimal_bool)] // majority reads clearest in full
        Self::from_fn(3, |bits| {
            (bits[0] && bits[1]) || (bits[0] && bits[2]) || (bits[1] && bits[2])
        })
    }

    /// Number of input variables.
    #[inline]
    pub fn num_inputs(&self) -> u32 {
        self.num_inputs
    }

    /// Raw output bits, masked to the significant rows.
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Number of rows (`2^num_inputs`).
    #[inline]
    pub fn num_rows(&self) -> u64 {
        1u64 << self.num_inputs
    }

    /// Evaluates the function on the given input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Self::num_inputs`].
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.num_inputs as usize,
            "truth table arity mismatch"
        );
        let mut row = 0u64;
        for (i, &bit) in inputs.iter().enumerate() {
            if bit {
                row |= 1 << i;
            }
        }
        (self.bits >> row) & 1 == 1
    }

    /// Evaluates the function on a row index directly (bit `i` of `row` is input `i`).
    #[inline]
    pub fn eval_row(&self, row: u64) -> bool {
        debug_assert!(row < self.num_rows());
        (self.bits >> row) & 1 == 1
    }

    /// Returns the function with one input fixed to a constant, reducing arity by one.
    ///
    /// The remaining inputs keep their relative order.
    ///
    /// # Panics
    ///
    /// Panics if `input >= num_inputs`.
    pub fn cofactor(&self, input: u32, value: bool) -> Self {
        assert!(input < self.num_inputs);
        let reduced = self.num_inputs - 1;
        Self::from_fn(reduced, |bits| {
            let mut full = [false; MAX_LUT_INPUTS as usize];
            let mut j = 0;
            for i in 0..self.num_inputs {
                if i == input {
                    full[i as usize] = value;
                } else {
                    full[i as usize] = bits[j];
                    j += 1;
                }
            }
            self.eval(&full[..self.num_inputs as usize])
        })
    }

    /// Returns `true` if the function ignores the given input.
    pub fn ignores_input(&self, input: u32) -> bool {
        self.cofactor(input, false) == self.cofactor(input, true)
    }

    /// Returns the function with inputs reordered: new input `i` is old input `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_inputs`.
    pub fn permute(&self, perm: &[u32]) -> Self {
        assert_eq!(perm.len(), self.num_inputs as usize);
        let mut seen = [false; MAX_LUT_INPUTS as usize];
        for &p in perm {
            assert!(
                p < self.num_inputs && !seen[p as usize],
                "invalid permutation"
            );
            seen[p as usize] = true;
        }
        Self::from_fn(self.num_inputs, |bits| {
            let mut old = [false; MAX_LUT_INPUTS as usize];
            for (new_idx, &old_idx) in perm.iter().enumerate() {
                old[old_idx as usize] = bits[new_idx];
            }
            self.eval(&old[..self.num_inputs as usize])
        })
    }

    /// Returns the complement of the function.
    pub fn complement(&self) -> Self {
        Self::new(self.num_inputs, !self.bits)
    }

    /// Serializes the output column as a string of `0`/`1`, row 0 first.
    pub fn to_bit_string(&self) -> String {
        (0..self.num_rows())
            .map(|row| if self.eval_row(row) { '1' } else { '0' })
            .collect()
    }

    fn mask(num_inputs: u32) -> u64 {
        if num_inputs >= 6 {
            u64::MAX
        } else {
            (1u64 << (1u64 << num_inputs)) - 1
        }
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TruthTable({} inputs, {})",
            self.num_inputs,
            self.to_bit_string()
        )
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bit_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_or_xor_basic() {
        let and2 = TruthTable::and(2);
        assert!(and2.eval(&[true, true]));
        assert!(!and2.eval(&[true, false]));
        let or2 = TruthTable::or(2);
        assert!(or2.eval(&[false, true]));
        assert!(!or2.eval(&[false, false]));
        let xor3 = TruthTable::xor(3);
        assert!(xor3.eval(&[true, true, true]));
        assert!(!xor3.eval(&[true, true, false]));
    }

    #[test]
    fn full_adder_cells() {
        let sum = TruthTable::full_adder_sum();
        let carry = TruthTable::full_adder_carry();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let total = a as u32 + b as u32 + c as u32;
                    assert_eq!(sum.eval(&[a, b, c]), total % 2 == 1);
                    assert_eq!(carry.eval(&[a, b, c]), total >= 2);
                }
            }
        }
    }

    #[test]
    fn mux2_selects() {
        let mux = TruthTable::mux2();
        assert!(!mux.eval(&[false, true, false])); // sel=0 -> a
        assert!(mux.eval(&[false, true, true])); // sel=1 -> b
    }

    #[test]
    fn cofactor_reduces_arity() {
        let mux = TruthTable::mux2();
        // Fixing sel=1 yields projection onto input b (which becomes input 1).
        let f = mux.cofactor(2, true);
        assert_eq!(f.num_inputs(), 2);
        assert!(f.eval(&[false, true]));
        assert!(!f.eval(&[true, false]));
    }

    #[test]
    fn ignores_input_detects_dead_variable() {
        // f(a, b) = a, so b is ignored.
        let f = TruthTable::from_fn(2, |bits| bits[0]);
        assert!(!f.ignores_input(0));
        assert!(f.ignores_input(1));
    }

    #[test]
    fn permute_swaps_variables() {
        // f(a, b) = a AND NOT b.
        let f = TruthTable::from_fn(2, |bits| bits[0] && !bits[1]);
        let g = f.permute(&[1, 0]);
        assert!(g.eval(&[false, true]));
        assert!(!g.eval(&[true, false]));
    }

    #[test]
    fn complement_inverts_every_row() {
        let f = TruthTable::xor(2);
        let g = f.complement();
        for row in 0..4 {
            assert_ne!(f.eval_row(row), g.eval_row(row));
        }
    }

    #[test]
    fn mask_prevents_garbage_bits() {
        let a = TruthTable::new(1, 0b10);
        let b = TruthTable::new(1, 0xFFFF_FFFF_FFFF_FF02 | 0b10);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_inputs_panics() {
        let _ = TruthTable::new(7, 0);
    }

    #[test]
    fn six_input_table_uses_full_word() {
        let t = TruthTable::constant_true(6);
        assert_eq!(t.bits(), u64::MAX);
        assert_eq!(t.num_rows(), 64);
    }
}
