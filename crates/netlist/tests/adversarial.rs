//! Adversarial input corpus for the VHDL and BLIF front-ends.
//!
//! Parsers sit on the trust boundary: whatever bytes arrive, the answer
//! must be `Ok` or a structured `ParseNetlistError` — never a panic.
//! Every case here runs under `catch_unwind` so that an `unwrap`, an
//! out-of-bounds index or an arithmetic overflow anywhere in the parsing
//! path fails the test instead of aborting the harness.

use std::panic::catch_unwind;

use nanomap_netlist::{blif, vhdl, ParseNetlistError};

/// A structural VHDL design exercising every supported construct.
const GOOD_VHDL: &str = r#"
entity acc is
  port ( x : in std_logic_vector(7 downto 0);
         y : out std_logic_vector(7 downto 0);
         f : out std_logic );
end acc;
architecture rtl of acc is
  signal state, next_state : std_logic_vector(7 downto 0);
  signal ovf : std_logic;
begin
  u_add: add generic map (width => 8)
         port map (a => x, b => state, cin => '0', sum => next_state, cout => ovf);
  u_reg: reg generic map (width => 8) port map (d => next_state, q => state);
  y <= state(3 downto 0) & "1010";
  f <= ovf;
end rtl;
"#;

/// A LUT-mapped BLIF netlist with logic and a latch.
const GOOD_BLIF: &str = "\
.model toggler
.inputs en
.outputs q
.names en state next
01 1
10 1
.latch next state
.names state q
1 1
.end
";

type VhdlResult = Result<nanomap_netlist::rtl::RtlCircuit, ParseNetlistError>;
type BlifResult = Result<nanomap_netlist::LutNetwork, ParseNetlistError>;

fn vhdl_no_panic(text: &str) -> VhdlResult {
    let owned = text.to_string();
    catch_unwind(move || vhdl::parse(&owned))
        .unwrap_or_else(|_| panic!("VHDL parser panicked on: {text:?}"))
}

fn blif_no_panic(text: &str) -> BlifResult {
    let owned = text.to_string();
    catch_unwind(move || blif::parse(&owned))
        .unwrap_or_else(|_| panic!("BLIF parser panicked on: {text:?}"))
}

/// The reference inputs actually parse — otherwise the truncation sweeps
/// below would be vacuous.
#[test]
fn reference_inputs_parse() {
    vhdl_no_panic(GOOD_VHDL).expect("reference VHDL parses");
    blif_no_panic(GOOD_BLIF).expect("reference BLIF parses");
}

/// Every byte-prefix of a valid file is handled without panicking: the
/// lexer, parser and elaborator all survive mid-token, mid-statement and
/// mid-block truncation.
#[test]
fn every_truncation_is_handled() {
    for end in 0..GOOD_VHDL.len() {
        if GOOD_VHDL.is_char_boundary(end) {
            let _ = vhdl_no_panic(&GOOD_VHDL[..end]);
        }
    }
    for end in 0..GOOD_BLIF.len() {
        if GOOD_BLIF.is_char_boundary(end) {
            let _ = blif_no_panic(&GOOD_BLIF[..end]);
        }
    }
}

/// Empty and whitespace-only inputs are rejected, not crashed on.
#[test]
fn empty_inputs_error() {
    assert!(vhdl_no_panic("").is_err());
    assert!(vhdl_no_panic(" \n\t\n").is_err());
    assert!(vhdl_no_panic("-- only a comment\n").is_err());
    // An empty BLIF has no model and no outputs; whatever the verdict,
    // it must come back as a value.
    let _ = blif_no_panic("");
    let _ = blif_no_panic("# only a comment\n");
}

/// Combinational cycles are reported with a line number.
#[test]
fn cyclic_definitions_error() {
    // s drives itself through the assignment.
    let vhdl_cycle = "\
entity c is port ( y : out std_logic );
end c;
architecture rtl of c is
  signal s : std_logic;
begin
  s <= s;
  y <= s;
end rtl;
";
    assert!(vhdl_no_panic(vhdl_cycle).is_err());
    // a and b feed each other through .names blocks.
    let blif_cycle = "\
.model loop
.inputs x
.outputs y
.names b a
1 1
.names a b
1 1
.names a y
1 1
.end
";
    let err = blif_no_panic(blif_cycle).expect_err("cycle detected");
    assert!(err.to_string().contains("cycle"), "{err}");
}

/// Absurd widths and counts must be rejected or handled, never overflow.
#[test]
fn absurd_widths_error() {
    // A 4-billion-bit port.
    let wide_port = "\
entity w is port ( x : in std_logic_vector(4294967295 downto 0);
                   y : out std_logic );
end w;
architecture rtl of w is begin
  y <= x(0);
end rtl;
";
    let _ = vhdl_no_panic(wide_port);
    // A generic far beyond any supported operator width.
    let wide_generic = "\
entity g is port ( y : out std_logic_vector(7 downto 0) );
end g;
architecture rtl of g is
  signal a : std_logic_vector(7 downto 0);
begin
  u: add generic map (width => 4000000000)
     port map (a => a, b => a, cin => '0', sum => y, cout => open);
  a <= \"00000000\";
end rtl;
";
    let _ = vhdl_no_panic(wide_generic);
    // A mux with zero data inputs.
    let zero_mux = "\
entity z is port ( s : in std_logic; y : out std_logic );
end z;
architecture rtl of z is begin
  u: muxn generic map (width => 1, n => 0) port map (sel => s, y => y);
end rtl;
";
    let _ = vhdl_no_panic(zero_mux);
    // A .names block beyond the LUT input limit.
    let wide_names = format!(
        ".model wide\n.inputs {inputs}\n.outputs y\n.names {inputs} y\n{ones} 1\n.end\n",
        inputs = (0..40)
            .map(|i| format!("i{i}"))
            .collect::<Vec<_>>()
            .join(" "),
        ones = "1".repeat(40),
    );
    assert!(blif_no_panic(&wide_names).is_err());
}

/// Arbitrary bytes (run through lossy UTF-8 conversion, as a forgiving
/// caller might) never panic either parser.
#[test]
fn mangled_bytes_never_panic() {
    let mut corrupted: Vec<u8> = GOOD_VHDL.as_bytes().to_vec();
    for (i, b) in corrupted.iter_mut().enumerate() {
        if i % 7 == 3 {
            *b = 0xFF ^ (i as u8);
        }
    }
    let text = String::from_utf8_lossy(&corrupted).into_owned();
    let _ = vhdl_no_panic(&text);
    let _ = blif_no_panic(&text);
    // Control characters, NULs, lone surrogates' replacement chars.
    let noise = "\u{0}\u{1}\u{FFFD}\u{202E}entity \u{0} is\nport(;\n";
    let _ = vhdl_no_panic(noise);
    let _ = blif_no_panic(noise);
}

/// Malformed structure around valid keywords: the error paths name a
/// line, and none of them panic.
#[test]
fn structurally_broken_files_error_with_context() {
    for bad in [
        "entity e is port ( x : in std_logic );", // no end, no architecture
        "architecture rtl of ghost is begin end rtl;", // architecture without entity
        "entity e is port ( x : in std_logic ); end e;\narchitecture a of e is begin\n  y <= x;\nend a;", // unknown target
        "entity e is port ( y : out std_logic ); end e;\narchitecture a of e is begin\n  y <= z;\nend a;", // unknown source
    ] {
        assert!(vhdl_no_panic(bad).is_err(), "must reject: {bad:?}");
    }
    for bad in [
        ".model m\n.names\n.end\n", // .names with no signals
        ".model m\n.inputs a\n.outputs y\n.names a y\n10 1\n.end\n", // wrong cover width is caught downstream or errors
        ".model m\n.latch\n.end\n",                                  // .latch with no operands
        ".model m\n.unknown directive\n.end\n",                      // unsupported directive
        ".model m\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end\n", // duplicate input
    ] {
        let _ = blif_no_panic(bad);
    }
}
