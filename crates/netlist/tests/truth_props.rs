//! Property-style tests of [`TruthTable`] algebra over seeded random
//! tables (deterministic: the same cases run every time).

use nanomap_netlist::TruthTable;
use nanomap_observe::rng::XorShift64Star;

const CASES: usize = 128;

fn random_table(rng: &mut XorShift64Star) -> TruthTable {
    let n = 1 + rng.below(6) as u32; // 1..=6 inputs
    TruthTable::new(n, rng.next_u64())
}

/// Double complement is the identity.
#[test]
fn complement_involution() {
    let mut rng = XorShift64Star::new(0x77_0001);
    for _ in 0..CASES {
        let t = random_table(&mut rng);
        assert_eq!(t.complement().complement(), t);
    }
}

/// A permutation followed by its inverse is the identity.
#[test]
fn permute_round_trip() {
    let mut rng = XorShift64Star::new(0x77_0002);
    for _ in 0..CASES {
        let t = random_table(&mut rng);
        let n = t.num_inputs();
        let mut perm: Vec<u32> = (0..n).collect();
        rng.shuffle(&mut perm);
        let mut inverse = vec![0u32; n as usize];
        for (new_idx, &old_idx) in perm.iter().enumerate() {
            inverse[old_idx as usize] = new_idx as u32;
        }
        assert_eq!(t.permute(&perm).permute(&inverse), t);
    }
}

/// Shannon expansion: f = (x & f|x=1) | (!x & f|x=0) for every input.
#[test]
fn shannon_expansion() {
    let mut rng = XorShift64Star::new(0x77_0003);
    for _ in 0..CASES {
        let t = random_table(&mut rng);
        let n = t.num_inputs();
        let input = rng.index(n as usize) as u32;
        let f1 = t.cofactor(input, true);
        let f0 = t.cofactor(input, false);
        for row in 0..t.num_rows() {
            let bits: Vec<bool> = (0..n).map(|b| (row >> b) & 1 == 1).collect();
            let reduced: Vec<bool> = bits
                .iter()
                .enumerate()
                .filter(|&(i, _)| i as u32 != input)
                .map(|(_, &b)| b)
                .collect();
            let expected = if bits[input as usize] {
                f1.eval(&reduced)
            } else {
                f0.eval(&reduced)
            };
            assert_eq!(t.eval(&bits), expected, "row {row}");
        }
    }
}

/// An ignored input's cofactors agree on every assignment.
#[test]
fn ignored_inputs_do_not_matter() {
    let mut rng = XorShift64Star::new(0x77_0004);
    for _ in 0..CASES {
        let t = random_table(&mut rng);
        let n = t.num_inputs();
        let input = rng.index(n as usize) as u32;
        if t.ignores_input(input) {
            for row in 0..t.num_rows() {
                let flipped = row ^ (1 << input);
                assert_eq!(t.eval_row(row), t.eval_row(flipped));
            }
        }
    }
}

/// `to_bit_string` round-trips through `new`.
#[test]
fn bit_string_round_trip() {
    let mut rng = XorShift64Star::new(0x77_0005);
    for _ in 0..CASES {
        let t = random_table(&mut rng);
        let text = t.to_bit_string();
        assert_eq!(text.len() as u64, t.num_rows());
        let bits = text
            .bytes()
            .enumerate()
            .fold(0u64, |acc, (i, b)| acc | (u64::from(b == b'1') << i));
        assert_eq!(TruthTable::new(t.num_inputs(), bits), t);
    }
}
