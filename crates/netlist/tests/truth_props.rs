//! Property-based tests of [`TruthTable`] algebra.

use nanomap_netlist::TruthTable;
use proptest::prelude::*;

fn table_strategy() -> impl Strategy<Value = TruthTable> {
    (1u32..=6, any::<u64>()).prop_map(|(n, bits)| TruthTable::new(n, bits))
}

proptest! {
    /// Double complement is the identity.
    #[test]
    fn complement_involution(t in table_strategy()) {
        prop_assert_eq!(t.complement().complement(), t);
    }

    /// A permutation followed by its inverse is the identity.
    #[test]
    fn permute_round_trip(t in table_strategy(), seed in any::<u64>()) {
        let n = t.num_inputs();
        // Derive a permutation from the seed (Fisher-Yates).
        let mut perm: Vec<u32> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..perm.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut inverse = vec![0u32; n as usize];
        for (new_idx, &old_idx) in perm.iter().enumerate() {
            inverse[old_idx as usize] = new_idx as u32;
        }
        prop_assert_eq!(t.permute(&perm).permute(&inverse), t);
    }

    /// Shannon expansion: f = (x & f|x=1) | (!x & f|x=0) for every input.
    #[test]
    fn shannon_expansion(t in table_strategy(), input_pick in any::<prop::sample::Index>()) {
        let n = t.num_inputs();
        let input = input_pick.index(n as usize) as u32;
        let f1 = t.cofactor(input, true);
        let f0 = t.cofactor(input, false);
        for row in 0..t.num_rows() {
            let bits: Vec<bool> = (0..n).map(|b| (row >> b) & 1 == 1).collect();
            let reduced: Vec<bool> = bits
                .iter()
                .enumerate()
                .filter(|&(i, _)| i as u32 != input)
                .map(|(_, &b)| b)
                .collect();
            let expected = if bits[input as usize] {
                f1.eval(&reduced)
            } else {
                f0.eval(&reduced)
            };
            prop_assert_eq!(t.eval(&bits), expected, "row {}", row);
        }
    }

    /// `ignores_input` is consistent with cofactor equality by definition,
    /// and an ignored input's cofactors agree on every assignment.
    #[test]
    fn ignored_inputs_do_not_matter(t in table_strategy(), input_pick in any::<prop::sample::Index>()) {
        let n = t.num_inputs();
        let input = input_pick.index(n as usize) as u32;
        if t.ignores_input(input) {
            for row in 0..t.num_rows() {
                let flipped = row ^ (1 << input);
                prop_assert_eq!(t.eval_row(row), t.eval_row(flipped));
            }
        }
    }

    /// `to_bit_string` round-trips through `new`.
    #[test]
    fn bit_string_round_trip(t in table_strategy()) {
        let text = t.to_bit_string();
        prop_assert_eq!(text.len() as u64, t.num_rows());
        let bits = text
            .bytes()
            .enumerate()
            .fold(0u64, |acc, (i, b)| acc | (u64::from(b == b'1') << i));
        prop_assert_eq!(TruthTable::new(t.num_inputs(), bits), t);
    }
}
