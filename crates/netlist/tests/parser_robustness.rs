//! Robustness: the textual front-ends must reject arbitrary garbage with
//! errors, never panics. Inputs come from a seeded PRNG so every run
//! fuzzes the same deterministic corpus.

use nanomap_observe::rng::XorShift64Star;

/// Random printable-ish text of up to `max_len` bytes, salted with
/// newlines, dots and punctuation the parsers treat specially.
fn random_text(rng: &mut XorShift64Star, max_len: usize) -> String {
    const ALPHABET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 \t\n.#\\-_()<>=;:,'\"&";
    let len = rng.index(max_len + 1);
    (0..len)
        .map(|_| ALPHABET[rng.index(ALPHABET.len())] as char)
        .collect()
}

/// Arbitrary text through the BLIF parser: error or success, no panic.
#[test]
fn blif_never_panics() {
    let mut rng = XorShift64Star::new(0xB11F_0001);
    for _ in 0..256 {
        let text = random_text(&mut rng, 400);
        let _ = nanomap_netlist::blif::parse(&text);
    }
}

/// Arbitrary text through the VHDL parser: error or success, no panic.
#[test]
fn vhdl_never_panics() {
    let mut rng = XorShift64Star::new(0xB11F_0002);
    for _ in 0..256 {
        let text = random_text(&mut rng, 400);
        let _ = nanomap_netlist::vhdl::parse(&text);
    }
}

/// BLIF-shaped fuzzing: random directives and rows.
#[test]
fn blif_directive_soup_never_panics() {
    const LINES: &[&str] = &[
        ".model m",
        ".inputs a b c",
        ".outputs y",
        ".names a b y",
        ".names y",
        ".latch d q re clk 0",
        ".latch d",
        ".end",
        "11 1",
        "-- 0",
        "1",
        "garbage line",
        "\\",
        "# comment",
    ];
    let mut rng = XorShift64Star::new(0xB11F_0003);
    for _ in 0..256 {
        let n = rng.index(20);
        let text = (0..n)
            .map(|_| LINES[rng.index(LINES.len())])
            .collect::<Vec<_>>()
            .join("\n");
        let _ = nanomap_netlist::blif::parse(&text);
    }
}

/// VHDL-shaped fuzzing: random token soup.
#[test]
fn vhdl_token_soup_never_panics() {
    const WORDS: &[&str] = &[
        "entity",
        "architecture",
        "is",
        "port",
        "map",
        "generic",
        "signal",
        "begin",
        "end",
        "std_logic",
        "std_logic_vector",
        "downto",
        "(",
        ")",
        ";",
        ":",
        ",",
        "<=",
        "=>",
        "&",
        "'0'",
        "\"01\"",
        "x",
        "7",
        "in",
        "out",
    ];
    let mut rng = XorShift64Star::new(0xB11F_0004);
    for _ in 0..256 {
        let n = rng.index(40);
        let text = (0..n)
            .map(|_| WORDS[rng.index(WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = nanomap_netlist::vhdl::parse(&text);
    }
}
