//! Robustness: the textual front-ends must reject arbitrary garbage with
//! errors, never panics.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text through the BLIF parser: error or success, no panic.
    #[test]
    fn blif_never_panics(text in ".{0,400}") {
        let _ = nanomap_netlist::blif::parse(&text);
    }

    /// Arbitrary text through the VHDL parser: error or success, no panic.
    #[test]
    fn vhdl_never_panics(text in ".{0,400}") {
        let _ = nanomap_netlist::vhdl::parse(&text);
    }

    /// BLIF-shaped fuzzing: random directives and rows.
    #[test]
    fn blif_directive_soup_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                Just(".model m".to_string()),
                Just(".inputs a b c".to_string()),
                Just(".outputs y".to_string()),
                Just(".names a b y".to_string()),
                Just(".names y".to_string()),
                Just(".latch d q re clk 0".to_string()),
                Just(".latch d".to_string()),
                Just(".end".to_string()),
                Just("11 1".to_string()),
                Just("-- 0".to_string()),
                Just("1".to_string()),
                Just("garbage line".to_string()),
                Just("\\".to_string()),
                Just("# comment".to_string()),
            ],
            0..20,
        )
    ) {
        let text = lines.join("\n");
        let _ = nanomap_netlist::blif::parse(&text);
    }

    /// VHDL-shaped fuzzing: random token soup.
    #[test]
    fn vhdl_token_soup_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("entity".to_string()),
                Just("architecture".to_string()),
                Just("is".to_string()),
                Just("port".to_string()),
                Just("map".to_string()),
                Just("generic".to_string()),
                Just("signal".to_string()),
                Just("begin".to_string()),
                Just("end".to_string()),
                Just("std_logic".to_string()),
                Just("std_logic_vector".to_string()),
                Just("downto".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(";".to_string()),
                Just(":".to_string()),
                Just(",".to_string()),
                Just("<=".to_string()),
                Just("=>".to_string()),
                Just("&".to_string()),
                Just("'0'".to_string()),
                Just("\"01\"".to_string()),
                Just("x".to_string()),
                Just("7".to_string()),
                Just("in".to_string()),
                Just("out".to_string()),
            ],
            0..40,
        )
    ) {
        let text = words.join(" ");
        let _ = nanomap_netlist::vhdl::parse(&text);
    }
}
