//! End-to-end contracts of the structured event bus and the artifact
//! version registry.
//!
//! Under test: a full mapping run streamed through [`EventStream`]
//! produces a valid `nanomap-events-v1` NDJSON stream — run-start
//! first, run-end last, with phase totals that reconcile against the
//! report's own `phase_times` — and every persisted artifact embeds
//! the schema constant registered in `nanomap::artifact::versions`.

use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

use nanomap::artifact::versions;
use nanomap::runs;
use nanomap::{NanoMap, Objective, PerfDocument, PerfReport, QorDocument, QorReport, RunRecord};
use nanomap_arch::ArchParams;
use nanomap_netlist::rtl::{CombOp, RtlBuilder, RtlCircuit};
use nanomap_netlist::LutNetwork;
use nanomap_observe::EventStream;
use nanomap_techmap::{expand, ExpandOptions};

/// A small multiplier-accumulator: big enough to fold, pack, place and
/// route, small enough to map in well under a second.
fn mac_circuit() -> RtlCircuit {
    let mut b = RtlBuilder::new("mac");
    let a = b.input("a", 4);
    let x = b.input("x", 4);
    let acc = b.register("acc", 8);
    let gnd = b.constant("gnd", 1, 0);
    let mul = b.comb("mul", CombOp::Mul { width: 4 });
    b.connect(a, 0, mul, 0).unwrap();
    b.connect(x, 0, mul, 1).unwrap();
    let add = b.comb("add", CombOp::Add { width: 8 });
    b.connect(mul, 0, add, 0).unwrap();
    b.connect(acc, 0, add, 1).unwrap();
    b.connect(gnd, 0, add, 2).unwrap();
    b.connect(add, 0, acc, 0).unwrap();
    let y = b.output("y", 8);
    b.connect(acc, 0, y, 0).unwrap();
    b.finish().unwrap()
}

fn mac_net() -> LutNetwork {
    expand(&mac_circuit(), ExpandOptions::default()).unwrap()
}

/// The event bus is process-global: tests that run a flow (which
/// publishes when the bus is up) must not overlap.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An in-memory NDJSON sink the stream thread and the test can share.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn live_stream_validates_and_reconciles_with_the_report() {
    let _guard = serial();
    let net = mac_net();
    let flow = NanoMap::new(ArchParams::paper_unbounded());
    let run_id = flow.run_id(&net, Objective::MinAreaDelayProduct);

    nanomap_observe::reset_events();
    let sink = SharedSink::default();
    let stream = EventStream::spawn(Box::new(sink.clone()));
    let report = flow.map(&net, Objective::MinAreaDelayProduct).unwrap();
    runs::publish_run_end(&run_id, 0, Some(&report));
    let stats = stream.finish();

    assert!(!stats.sink_broken);
    assert_eq!(
        stats.dropped, 0,
        "a mac-sized run must not overflow the queue"
    );
    let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let check = runs::check_stream(&text).unwrap();
    assert_eq!(check.run_id, run_id);
    assert_eq!(check.exit_code, 0);
    assert!(check.events >= 10, "only {} events streamed", check.events);

    // run-end's totals are the report's own phase times, verbatim.
    let t = report.phase_times;
    assert_eq!(check.total_ms, t.total_ms);
    for (name, expect) in [
        ("folding_select_ms", t.folding_select_ms),
        ("fds_ms", t.fds_ms),
        ("pack_ms", t.pack_ms),
        ("place_ms", t.place_ms),
        ("route_ms", t.route_ms),
        ("bitmap_ms", t.bitmap_ms),
        ("verify_ms", t.verify_ms),
        ("explain_ms", t.explain_ms),
    ] {
        assert_eq!(check.phase_ms.get(name), Some(&expect), "{name}");
    }
}

#[test]
fn run_ids_are_stable_and_seed_sensitive() {
    let net = mac_net();
    let flow = NanoMap::new(ArchParams::paper_unbounded());
    let id = flow.run_id(&net, Objective::MinAreaDelayProduct);
    assert_eq!(id, flow.run_id(&net, Objective::MinAreaDelayProduct));
    assert_ne!(id, flow.run_id(&net, Objective::MinDelay { max_les: None }));
    let mut reseeded = NanoMap::new(ArchParams::paper_unbounded());
    reseeded.place_options.seed ^= 1;
    assert_ne!(id, reseeded.run_id(&net, Objective::MinAreaDelayProduct));
}

#[test]
fn every_artifact_embeds_its_registered_version() {
    let _guard = serial();
    let net = mac_net();
    let dir = std::env::temp_dir().join(format!("nanomap-versions-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    nanomap_observe::reset();
    nanomap_observe::set_enabled(true);
    let flow = NanoMap::new(ArchParams::paper_unbounded())
        .with_checkpoint_dir(&dir)
        .with_explain();
    let report = flow.map(&net, Objective::MinAreaDelayProduct).unwrap();
    let snapshot = nanomap_observe::snapshot();
    nanomap_observe::set_enabled(false);

    // QoR document.
    let qor = QorDocument::new(vec![QorReport::from_mapping(
        &report,
        &flow.channels,
        &snapshot,
    )])
    .to_json()
    .to_compact_string();
    assert!(qor.contains(versions::QOR), "qor document lost its schema");

    // Perf document.
    let samples = [("total_ms".to_string(), vec![1.0, 2.0, 3.0])]
        .into_iter()
        .collect();
    let perf = PerfDocument::new(vec![PerfReport::from_samples("mac", 3, &samples)])
        .to_json()
        .to_compact_string();
    assert!(
        perf.contains(versions::PERF),
        "perf document lost its schema"
    );

    // Checkpoint artifact, as written to disk by the flow.
    let ckpt = std::fs::read_to_string(dir.join("mac.ckpt.json")).unwrap();
    assert!(
        ckpt.contains(versions::CHECKPOINT),
        "checkpoint lost its schema"
    );

    // Explain attribution artifact.
    let explain = report.explain.as_ref().expect("with_explain report");
    let explain_json = explain.to_json().to_compact_string();
    assert!(
        explain_json.contains(versions::EXPLAIN),
        "explain lost its schema"
    );

    // Flight-recorder ledger line.
    let run_id = flow.run_id(&net, Objective::MinAreaDelayProduct);
    let line = RunRecord::from_report(&report, run_id, 0)
        .to_json()
        .to_compact_string();
    assert!(
        line.contains(versions::EVENTS),
        "ledger line lost its schema"
    );

    // Profiler artifact (schema constant shared with the observe crate).
    if nanomap_observe::start_sampler(997) {
        std::thread::sleep(std::time::Duration::from_millis(5));
        let profile = nanomap_observe::stop_sampler().expect("sampler was running");
        let profile_json = profile.to_json().to_compact_string();
        assert!(
            profile_json.contains(versions::PROFILE),
            "profile lost its schema"
        );
    }
    assert_eq!(versions::PROFILE, nanomap_observe::PROFILE_SCHEMA);
    assert_eq!(versions::EVENTS, nanomap_observe::EVENTS_SCHEMA);

    std::fs::remove_dir_all(&dir).ok();
}
