//! End-to-end budget, anytime and checkpoint/resume semantics.
//!
//! The contract under test: no budget leaves reports bit-identical to
//! the pre-budget flow; a tiny budget degrades gracefully (never panics
//! or hangs); a checkpointed run resumed from any post-phase snapshot
//! reproduces the uninterrupted run's report exactly.

use nanomap::{
    Checkpoint, CheckpointPhase, FlowError, MappingReport, NanoMap, Objective, PhaseTimes, Remedy,
};
use nanomap_arch::ArchParams;
use nanomap_netlist::rtl::{CombOp, RtlBuilder, RtlCircuit};
use nanomap_netlist::LutNetwork;
use nanomap_techmap::{expand, ExpandOptions};

/// A small multiplier-accumulator: big enough to fold, pack, place and
/// route, small enough to map in well under a second.
fn mac_circuit() -> RtlCircuit {
    let mut b = RtlBuilder::new("mac");
    let a = b.input("a", 4);
    let x = b.input("x", 4);
    let acc = b.register("acc", 8);
    let gnd = b.constant("gnd", 1, 0);
    let mul = b.comb("mul", CombOp::Mul { width: 4 });
    b.connect(a, 0, mul, 0).unwrap();
    b.connect(x, 0, mul, 1).unwrap();
    let add = b.comb("add", CombOp::Add { width: 8 });
    b.connect(mul, 0, add, 0).unwrap();
    b.connect(acc, 0, add, 1).unwrap();
    b.connect(gnd, 0, add, 2).unwrap();
    b.connect(add, 0, acc, 0).unwrap();
    let y = b.output("y", 8);
    b.connect(acc, 0, y, 0).unwrap();
    b.finish().unwrap()
}

fn mac_net() -> LutNetwork {
    expand(&mac_circuit(), ExpandOptions::default()).unwrap()
}

/// Reports minus wall-clock noise: phase timings differ run to run by
/// construction, everything else must match bit for bit.
fn normalized(report: &MappingReport) -> String {
    let mut r = report.clone();
    r.phase_times = PhaseTimes::default();
    r.to_json().to_compact_string()
}

#[test]
fn no_budget_report_matches_the_unbudgeted_flow() {
    let flow = NanoMap::new(ArchParams::paper_unbounded());
    let plain = flow
        .map(&mac_net(), Objective::MinAreaDelayProduct)
        .unwrap();
    // Anytime mode and a checkpoint directory must not perturb the
    // mapping itself when the budget never expires.
    let dir = std::env::temp_dir().join(format!("nanomap-anytime-{}", std::process::id()));
    let decorated = NanoMap::new(ArchParams::paper_unbounded())
        .with_anytime()
        .with_checkpoint_dir(&dir)
        .map(&mac_net(), Objective::MinAreaDelayProduct)
        .unwrap();
    assert!(!plain.degraded);
    assert!(plain.degradations.is_empty());
    assert_eq!(plain.phase_times.budget_ms_remaining, None);
    assert_eq!(normalized(&plain), normalized(&decorated));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generous_budget_completes_cleanly_and_reports_headroom() {
    let report = NanoMap::new(ArchParams::paper_unbounded())
        .with_budget_ms(600_000)
        .map(&mac_net(), Objective::MinAreaDelayProduct)
        .unwrap();
    assert!(!report.degraded);
    let remaining = report.phase_times.budget_ms_remaining.unwrap();
    assert!(remaining > 0.0 && remaining <= 600_000.0);
}

#[test]
fn zero_budget_strict_mode_fails_with_budget_exhausted() {
    let err = NanoMap::new(ArchParams::paper_unbounded())
        .with_budget_ms(0)
        .map(&mac_net(), Objective::MinAreaDelayProduct)
        .unwrap_err();
    match err {
        FlowError::BudgetExhausted { degradations, .. } => {
            assert!(!degradations.is_empty(), "expired run recorded no phase");
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }
}

#[test]
fn zero_budget_anytime_yields_a_degraded_mapping() {
    let report = NanoMap::new(ArchParams::paper_unbounded())
        .with_budget_ms(0)
        .with_anytime()
        .map(&mac_net(), Objective::MinAreaDelayProduct)
        .unwrap();
    assert!(report.degraded);
    assert!(!report.degradations.is_empty());
    assert_eq!(report.recovery.succeeded_with, Some(Remedy::AcceptDegraded));
    // Degraded, not broken: the physical design still exists end to end.
    let physical = report.physical.expect("physical design still runs");
    assert!(physical.num_smbs >= 1);
    assert!(physical.bitmap_bits > 0);
    for d in &report.degradations {
        assert!(!d.phase.is_empty() && !d.reason.is_empty(), "{d:?}");
    }
}

#[test]
fn resume_from_each_checkpoint_phase_reproduces_the_report() {
    let net = mac_net();
    let dir = std::env::temp_dir().join(format!("nanomap-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let flow = NanoMap::new(ArchParams::paper_unbounded()).with_checkpoint_dir(&dir);
    let baseline = flow.map(&net, Objective::MinAreaDelayProduct).unwrap();
    let path = dir.join("mac.ckpt.json");
    let full = Checkpoint::load(&path).unwrap();
    assert_eq!(full.phase, CheckpointPhase::Place);

    // Resume from each phase prefix a crash could have left behind.
    let resumer = NanoMap::new(ArchParams::paper_unbounded());
    for phase in [
        CheckpointPhase::Fds,
        CheckpointPhase::Pack,
        CheckpointPhase::Place,
    ] {
        let mut ckpt = full.clone();
        if phase < CheckpointPhase::Place {
            ckpt.placement = None;
        }
        if phase < CheckpointPhase::Pack {
            ckpt.packing = None;
        }
        ckpt.phase = phase;
        let resumed = resumer
            .map_resume(&net, Objective::MinAreaDelayProduct, &ckpt)
            .unwrap();
        assert_eq!(
            normalized(&baseline),
            normalized(&resumed),
            "resume from {} diverged",
            phase.as_str()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_or_corrupt_checkpoints_load_as_typed_errors() {
    let net = mac_net();
    let dir = std::env::temp_dir().join(format!("nanomap-torn-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let flow = NanoMap::new(ArchParams::paper_unbounded()).with_checkpoint_dir(&dir);
    flow.map(&net, Objective::MinAreaDelayProduct).unwrap();
    let path = dir.join("mac.ckpt.json");
    let full_text = std::fs::read_to_string(&path).unwrap();

    // A checkpoint truncated mid-write (torn tail), a file of garbage,
    // and pathological deep nesting (the shape a corrupt disk or hostile
    // client can produce) must all surface as typed errors — never a
    // parse panic or a stack overflow.
    let corruptions: Vec<String> = vec![
        full_text[..full_text.len() / 2].to_string(),
        "not json at all".to_string(),
        "[".repeat(100_000),
        String::new(),
    ];
    for (i, bad) in corruptions.iter().enumerate() {
        std::fs::write(&path, bad).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        let _typed: FlowError = err.into();
        assert!(
            matches!(_typed, FlowError::Checkpoint(_)),
            "corruption #{i} produced {_typed}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_a_mismatched_netlist_or_objective() {
    let net = mac_net();
    let dir = std::env::temp_dir().join(format!("nanomap-mismatch-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let flow = NanoMap::new(ArchParams::paper_unbounded()).with_checkpoint_dir(&dir);
    flow.map(&net, Objective::MinAreaDelayProduct).unwrap();
    let ckpt = Checkpoint::load(&dir.join("mac.ckpt.json")).unwrap();

    // Different netlist, same name: the fingerprint must catch it.
    let mut b = RtlBuilder::new("mac");
    let a = b.input("a", 4);
    let y = b.output("y", 4);
    let inv = b.comb("inv", CombOp::Not { width: 4 });
    b.connect(a, 0, inv, 0).unwrap();
    b.connect(inv, 0, y, 0).unwrap();
    let other = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
    let err = flow
        .map_resume(&other, Objective::MinAreaDelayProduct, &ckpt)
        .unwrap_err();
    assert!(matches!(err, FlowError::Checkpoint(_)), "{err}");

    let err = flow
        .map_resume(&net, Objective::MinDelay { max_les: None }, &ckpt)
        .unwrap_err();
    assert!(matches!(err, FlowError::Checkpoint(_)), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
