//! The explain artifact: one self-contained QoR attribution report.
//!
//! Everything the flow's headline numbers are made of, in one place:
//!
//! * the K worst post-route paths per folding cycle, hop by hop, with the
//!   identity `(worst_path + overhead) × num_slices = routed_delay_ns`
//!   spelled out;
//! * per-cell, per-tier routed congestion grids that reconcile exactly
//!   with the interconnect usage counters;
//! * the placement-time estimated-demand grid (RISA);
//! * per-SMB/per-cycle occupancy and per-stage NRAM-set fill.
//!
//! The artifact serializes to deterministic JSON ([`ExplainReport::to_json`])
//! and renders as ASCII heatmaps plus a top-K path listing
//! ([`ExplainReport::render_text`]). [`check_artifact`] re-validates a
//! parsed artifact's internal invariants — CI runs it on every emitted
//! file.

use nanomap_arch::{ArchParams, ChannelConfig, TimingModel, WireType};
use nanomap_observe::JsonValue;
use nanomap_pack::{OccupancyMap, Packing, Slice, SliceNets, TemporalDesign};
use nanomap_place::{estimate_demand_grid, DemandGrid, Placement};
use nanomap_route::{
    net_delays, segment_breakdowns, tally_congestion, trace_critical_paths, CongestionGrid,
    CriticalPathReport, HopSource, RoutedDesign, SegmentBreakdown, TracedPath,
};

use crate::report::UsageReport;

/// Schema tag stamped into every artifact.
pub const EXPLAIN_SCHEMA: &str = crate::artifact::versions::EXPLAIN;

/// Paths traced per folding cycle (and listed in the text report).
pub const DEFAULT_TOP_K: usize = 3;

/// QoR attribution for one finished mapping.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Circuit name.
    pub circuit: String,
    /// Placement grid dimensions (width, height).
    pub grid: (u16, u16),
    /// Physical SMBs used.
    pub num_smbs: u32,
    /// Grid position of every SMB (indexed by SMB id).
    pub smb_pos: Vec<(u16, u16)>,
    /// Traced critical paths plus the delay identity.
    pub paths: CriticalPathReport,
    /// Routed per-cell, per-tier congestion.
    pub congestion: CongestionGrid,
    /// Interconnect usage counters the congestion grid reconciles with.
    pub usage: UsageReport,
    /// Placement-time estimated wiring demand.
    pub demand: DemandGrid,
    /// Per-SMB, per-cycle resource occupancy and NRAM view.
    pub occupancy: OccupancyMap,
}

impl ExplainReport {
    /// Builds the attribution report from the flow's physical-design
    /// results.
    #[allow(clippy::too_many_arguments)] // the flow's full context is the point
    pub fn build(
        circuit: &str,
        design: &TemporalDesign<'_>,
        packing: &Packing,
        nets: &SliceNets,
        placement: &Placement,
        routed: &RoutedDesign,
        channels: &ChannelConfig,
        timing: &TimingModel,
        arch: &ArchParams,
        top_k: usize,
    ) -> Self {
        let delays = net_delays(&routed.graph, timing, &routed.routes);
        let breakdowns = segment_breakdowns(&routed.graph, timing, &routed.routes);
        let paths =
            trace_critical_paths(design, packing, &delays, &breakdowns, timing, arch, top_k);
        let congestion = tally_congestion(&routed.graph, &routed.routes);
        let demand = estimate_demand_grid(placement.grid, channels, nets, &placement.pos_of);
        let occupancy = OccupancyMap::build(design, packing, arch);
        let smb_pos = placement
            .pos_of
            .iter()
            .take(packing.num_smbs as usize)
            .map(|p| (p.x, p.y))
            .collect();
        Self {
            circuit: circuit.to_string(),
            grid: (placement.grid.width, placement.grid.height),
            num_smbs: packing.num_smbs,
            smb_pos,
            paths,
            congestion,
            usage: routed.usage.into(),
            demand,
            occupancy,
        }
    }

    /// Serializes the artifact as deterministic JSON: map iteration is
    /// ordered, floats are pure functions of the mapping, and no
    /// wall-clock data is included, so same-seed runs are byte-identical.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("schema", EXPLAIN_SCHEMA)
            .with("circuit", self.circuit.as_str())
            .with(
                "grid",
                JsonValue::object()
                    .with("width", self.grid.0)
                    .with("height", self.grid.1),
            )
            .with("num_smbs", self.num_smbs)
            .with(
                "smb_pos",
                JsonValue::Array(
                    self.smb_pos
                        .iter()
                        .map(|&(x, y)| JsonValue::Array(vec![x.into(), y.into()]))
                        .collect(),
                ),
            )
            .with(
                "timing",
                JsonValue::object()
                    .with("max_slice_path_ns", self.paths.max_slice_path_ns)
                    .with("overhead_ns", self.paths.overhead_ns)
                    .with("cycle_period_ns", self.paths.cycle_period_ns)
                    .with("num_slices", self.paths.num_slices)
                    .with("routed_delay_ns", self.paths.routed_delay_ns),
            )
            .with(
                "critical_paths",
                JsonValue::Array(self.paths.paths.iter().map(path_json).collect()),
            )
            .with("congestion", congestion_json(&self.congestion))
            .with("usage", self.usage.to_json())
            .with(
                "estimated_demand",
                JsonValue::object().with("supply", self.demand.supply).with(
                    "worst_cells",
                    JsonValue::Array(
                        self.demand
                            .worst_cells()
                            .into_iter()
                            .map(Into::into)
                            .collect(),
                    ),
                ),
            )
            .with("occupancy", occupancy_json(&self.occupancy))
    }

    /// Checks the artifact's internal invariants on the live structure
    /// (the serialized form is re-checked by [`check_artifact`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        // Per-hop delays of every path telescope to its total.
        for path in &self.paths.paths {
            let sum: f64 = path.hops.iter().map(|h| h.interconnect_ns + h.lut_ns).sum();
            if (sum - path.path_delay_ns).abs() > 1e-9 {
                return Err(format!(
                    "path {} hops sum to {sum} but claim {} ns",
                    path.rank, path.path_delay_ns
                ));
            }
        }
        // The worst path delay is the slice budget, and the delay
        // identity reconstructs the headline number.
        if let Some(worst) = self.paths.paths.first() {
            if (worst.path_delay_ns - self.paths.max_slice_path_ns).abs() > 1e-9 {
                return Err(format!(
                    "worst path {} ns != max slice path {} ns",
                    worst.path_delay_ns, self.paths.max_slice_path_ns
                ));
            }
            if worst.slack_ns.abs() > 1e-9 {
                return Err(format!("worst path has nonzero slack {}", worst.slack_ns));
            }
        }
        let rebuilt = (self.paths.max_slice_path_ns + self.paths.overhead_ns)
            * f64::from(self.paths.num_slices);
        if (rebuilt - self.paths.routed_delay_ns).abs() > 1e-9 {
            return Err(format!(
                "delay identity broken: rebuilt {rebuilt} != routed {}",
                self.paths.routed_delay_ns
            ));
        }
        // Congestion reconciles exactly with the usage counters.
        let totals = self.congestion.totals();
        let counters = (totals.direct, totals.length1, totals.length4, totals.global);
        let reported = (
            self.usage.direct,
            self.usage.length1,
            self.usage.length4,
            self.usage.global,
        );
        if counters != reported {
            return Err(format!(
                "congestion totals {counters:?} != usage counters {reported:?}"
            ));
        }
        Ok(())
    }

    /// Renders the artifact as terminal text: congestion heatmap,
    /// placement-utilization heatmap, per-stage NRAM occupancy bars, and
    /// the top-K critical paths hop by hop.
    pub fn render_text(&self, top_k: usize) -> String {
        let (w, h) = (usize::from(self.grid.0), usize::from(self.grid.1));
        let mut out = String::new();
        out.push_str(&format!(
            "QoR explainability — {} ({}x{} grid, {} SMBs, {} folding cycles)\n",
            self.circuit, self.grid.0, self.grid.1, self.num_smbs, self.paths.num_slices
        ));

        // Routed congestion, all cycles and tiers combined.
        let cells: Vec<f64> = self
            .congestion
            .combined_cells()
            .into_iter()
            .map(|c| c as f64)
            .collect();
        let max = cells.iter().copied().fold(0.0, f64::max);
        out.push_str(&format!(
            "\nrouted congestion (wire nodes per cell, all cycles; max={max:.0}):\n"
        ));
        out.push_str(&ascii_heatmap(w, h, &cells, max));
        out.push_str(&format!(
            "tiers: direct {:.0}% | length1 {:.0}% | length4 {:.0}% | global {:.0}%\n",
            self.usage.fraction(WireType::Direct) * 100.0,
            self.usage.fraction(WireType::Length1) * 100.0,
            self.usage.fraction(WireType::Length4) * 100.0,
            self.usage.fraction(WireType::Global) * 100.0,
        ));

        // Placement utilization: peak LUT fill of the SMB in each cell.
        let mut fill = vec![0.0f64; w * h];
        for (smb, &(x, y)) in self.smb_pos.iter().enumerate() {
            let peak = self
                .occupancy
                .per_slice
                .values()
                .map(|o| o.luts.get(smb).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            fill[usize::from(y) * w + usize::from(x)] =
                f64::from(peak) / f64::from(self.occupancy.lut_capacity.max(1));
        }
        out.push_str("\nplacement utilization (peak LUT fill per cell):\n");
        out.push_str(&ascii_heatmap(w, h, &fill, 1.0));

        // Per-stage NRAM occupancy.
        out.push_str("\nNRAM-set occupancy per folding stage:\n");
        for (slice, f) in self.occupancy.nram_stage_fill() {
            let filled = (f * 20.0).round() as usize;
            out.push_str(&format!(
                "  {} [{}{}] {:>5.1}%\n",
                slice_label(slice),
                "#".repeat(filled.min(20)),
                "-".repeat(20 - filled.min(20)),
                f * 100.0
            ));
        }

        // Top-K critical paths.
        out.push_str(&format!("\ntop-{top_k} critical paths:\n"));
        for (i, path) in self.paths.paths.iter().take(top_k).enumerate() {
            out.push_str(&format!(
                "  #{} {} delay={:.4}ns slack={:.4}ns\n",
                i + 1,
                slice_label(path.slice),
                path.path_delay_ns,
                path.slack_ns
            ));
            for hop in &path.hops {
                out.push_str(&format!("     {}\n", hop_line(hop)));
            }
        }
        out.push_str(&format!(
            "\nidentity: ({:.4} path + {:.4} overhead) ns x {} cycles = {:.4} ns routed delay\n",
            self.paths.max_slice_path_ns,
            self.paths.overhead_ns,
            self.paths.num_slices,
            self.paths.routed_delay_ns
        ));
        out
    }

    /// Chrome trace-event "flow" arrows for the design's worst path: one
    /// flow step per hop, timestamped by arrival (nanoseconds rendered on
    /// the microsecond axis, so the path is visible at trace start).
    pub fn chrome_flow_events(&self) -> Vec<JsonValue> {
        let Some(worst) = self.paths.paths.first() else {
            return Vec::new();
        };
        let last = worst.hops.len().saturating_sub(1);
        worst
            .hops
            .iter()
            .enumerate()
            .map(|(i, hop)| {
                let ph = if i == 0 {
                    "s"
                } else if i == last {
                    "f"
                } else {
                    "t"
                };
                let mut event = JsonValue::object()
                    .with("name", "critical-path")
                    .with("cat", "explain")
                    .with("ph", ph)
                    .with("id", 1)
                    .with("pid", 1)
                    .with("tid", 0)
                    .with("ts", hop.arrival_ns);
                if ph == "f" {
                    event.set("bp", "e");
                }
                event.set(
                    "args",
                    JsonValue::object()
                        .with("lut", hop.lut.to_string())
                        .with("smb", hop.smb)
                        .with("arrival_ns", hop.arrival_ns)
                        .with("interconnect_ns", hop.interconnect_ns),
                );
                event
            })
            .collect()
    }
}

/// `pX.sY` label for a slice.
fn slice_label(slice: Slice) -> String {
    format!("p{}.s{}", slice.plane, slice.stage)
}

fn hop_line(hop: &nanomap_route::PathHop) -> String {
    let name = hop
        .name
        .as_deref()
        .map(|n| format!("({n})"))
        .unwrap_or_default();
    let src = match hop.source {
        HopSource::Primary => "primary".to_string(),
        HopSource::Lut { lut, smb } => format!("{lut}@smb{smb}"),
        HopSource::Stored { producer, smb } => format!("stored[{producer}]@smb{smb}"),
        HopSource::Ff { ff, smb } => format!("{ff}@smb{smb}"),
    };
    let wires = hop.wires.as_ref().map(wire_summary).unwrap_or_default();
    format!(
        "{src} -> {}{}@smb{} +{:.4}ns wire{} +{:.4}ns lut = {:.4}ns",
        hop.lut, name, hop.smb, hop.interconnect_ns, wires, hop.lut_ns, hop.arrival_ns
    )
}

fn wire_summary(b: &SegmentBreakdown) -> String {
    let mut parts = Vec::new();
    for tier in WireType::ALL {
        let (hops, _) = b.tier(tier);
        if hops > 0 {
            parts.push(format!("{}x{}", tier.as_str(), hops));
        }
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("({})", parts.join("+"))
    }
}

/// Density ramp for heatmaps: space = empty, `@` = the hottest cell.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders `cells` (row-major, `width * height`) as a bordered ASCII
/// heatmap scaled to `max`.
fn ascii_heatmap(width: usize, height: usize, cells: &[f64], max: f64) -> String {
    let mut out = String::new();
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    for y in 0..height {
        out.push_str("  |");
        for x in 0..width {
            let v = cells.get(y * width + x).copied().unwrap_or(0.0);
            let glyph = if max <= 0.0 || v <= 0.0 {
                RAMP[0]
            } else {
                let idx = ((v / max) * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[idx.clamp(1, RAMP.len() - 1)]
            };
            out.push(glyph as char);
        }
        out.push_str("|\n");
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    out
}

fn slice_json(slice: Slice) -> JsonValue {
    JsonValue::object()
        .with("plane", slice.plane as u64)
        .with("stage", slice.stage)
}

fn path_json(path: &TracedPath) -> JsonValue {
    JsonValue::object()
        .with("slice", slice_json(path.slice))
        .with("rank", path.rank)
        .with("path_delay_ns", path.path_delay_ns)
        .with("slack_ns", path.slack_ns)
        .with(
            "hops",
            JsonValue::Array(
                path.hops
                    .iter()
                    .map(|hop| {
                        let source = match hop.source {
                            HopSource::Primary => JsonValue::object().with("kind", "primary"),
                            HopSource::Lut { lut, smb } => JsonValue::object()
                                .with("kind", "lut")
                                .with("lut", lut.index() as u64)
                                .with("smb", smb),
                            HopSource::Stored { producer, smb } => JsonValue::object()
                                .with("kind", "stored")
                                .with("producer", producer.index() as u64)
                                .with("smb", smb),
                            HopSource::Ff { ff, smb } => JsonValue::object()
                                .with("kind", "ff")
                                .with("ff", ff.index() as u64)
                                .with("smb", smb),
                        };
                        JsonValue::object()
                            .with("lut", hop.lut.index() as u64)
                            .with("name", hop.name.as_deref())
                            .with("smb", hop.smb)
                            .with("source", source)
                            .with("interconnect_ns", hop.interconnect_ns)
                            .with("lut_ns", hop.lut_ns)
                            .with("arrival_ns", hop.arrival_ns)
                            .with("wires", hop.wires.as_ref().map(breakdown_json))
                    })
                    .collect(),
            ),
        )
}

fn breakdown_json(b: &SegmentBreakdown) -> JsonValue {
    let mut obj = JsonValue::object();
    for tier in WireType::ALL {
        let (hops, ns) = b.tier(tier);
        obj.set(&format!("{}_hops", tier.as_str()), hops);
        obj.set(&format!("{}_ns", tier.as_str()), ns);
    }
    obj.with("switch_hops", b.switch_hops)
        .with("total_ns", b.total_ns())
}

fn counts_json(cells: &[u64]) -> JsonValue {
    JsonValue::Array(cells.iter().map(|&c| JsonValue::from(c)).collect())
}

fn congestion_json(c: &CongestionGrid) -> JsonValue {
    let totals = c.totals();
    JsonValue::object()
        .with(
            "totals",
            JsonValue::object()
                .with("direct", totals.direct)
                .with("length1", totals.length1)
                .with("length4", totals.length4)
                .with("global", totals.global)
                .with("total", totals.total()),
        )
        .with(
            "per_slice",
            JsonValue::Array(
                c.per_slice
                    .iter()
                    .map(|(&slice, tier)| {
                        JsonValue::object()
                            .with("slice", slice_json(slice))
                            .with("direct", counts_json(&tier.direct))
                            .with("length1", counts_json(&tier.length1))
                            .with("length4", counts_json(&tier.length4))
                            .with("global", counts_json(&tier.global))
                    })
                    .collect(),
            ),
        )
        .with("combined_cells", counts_json(&c.combined_cells()))
}

fn occupancy_json(o: &OccupancyMap) -> JsonValue {
    JsonValue::object()
        .with("num_smbs", o.num_smbs)
        .with("lut_capacity", o.lut_capacity)
        .with("ff_capacity", o.ff_capacity)
        .with("nram_sets_used", o.nram_sets_used())
        .with(
            "per_slice",
            JsonValue::Array(
                o.per_slice
                    .iter()
                    .map(|(&slice, occ)| {
                        JsonValue::object()
                            .with("slice", slice_json(slice))
                            .with(
                                "luts",
                                JsonValue::Array(occ.luts.iter().map(|&c| c.into()).collect()),
                            )
                            .with(
                                "ffs",
                                JsonValue::Array(occ.ffs.iter().map(|&c| c.into()).collect()),
                            )
                    })
                    .collect(),
            ),
        )
        .with(
            "nram_stage_fill",
            JsonValue::Array(
                o.nram_stage_fill()
                    .into_iter()
                    .map(|(slice, f)| {
                        JsonValue::object()
                            .with("slice", slice_json(slice))
                            .with("fill", f)
                    })
                    .collect(),
            ),
        )
}

/// Validates a parsed explain artifact: schema tag, the per-hop delay
/// sums, the delay identity, and the congestion/usage reconciliation —
/// everything [`ExplainReport::validate`] checks, but on the JSON the
/// flow actually wrote.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_artifact(doc: &JsonValue) -> Result<(), String> {
    let schema = doc.get("schema").and_then(JsonValue::as_str);
    if schema != Some(EXPLAIN_SCHEMA) {
        return Err(format!("schema is {schema:?}, expected {EXPLAIN_SCHEMA:?}"));
    }
    let timing = doc.get("timing").ok_or("missing timing block")?;
    let num = |obj: &JsonValue, key: &str| -> Result<f64, String> {
        obj.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing number {key}"))
    };
    let max_slice_path = num(timing, "max_slice_path_ns")?;
    let overhead = num(timing, "overhead_ns")?;
    let num_slices = num(timing, "num_slices")?;
    let routed = num(timing, "routed_delay_ns")?;
    let rebuilt = (max_slice_path + overhead) * num_slices;
    if (rebuilt - routed).abs() > 1e-9 {
        return Err(format!(
            "delay identity broken: ({max_slice_path} + {overhead}) * {num_slices} = \
             {rebuilt} != {routed}"
        ));
    }
    let paths = doc
        .get("critical_paths")
        .and_then(JsonValue::as_array)
        .ok_or("missing critical_paths")?;
    for (i, path) in paths.iter().enumerate() {
        let claimed = num(path, "path_delay_ns")?;
        let hops = path
            .get("hops")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("path {i} missing hops"))?;
        let mut sum = 0.0;
        for hop in hops {
            sum += num(hop, "interconnect_ns")? + num(hop, "lut_ns")?;
        }
        if (sum - claimed).abs() > 1e-9 {
            return Err(format!("path {i} hops sum to {sum} but claim {claimed} ns"));
        }
        if i == 0 && (claimed - max_slice_path).abs() > 1e-9 {
            return Err(format!(
                "worst path {claimed} ns != max slice path {max_slice_path} ns"
            ));
        }
    }
    // Congestion reconciliation, on integers: per-slice cell sums must
    // equal the totals block, and the totals must equal the usage block.
    let congestion = doc.get("congestion").ok_or("missing congestion block")?;
    let totals = congestion
        .get("totals")
        .ok_or("missing congestion totals")?;
    let usage = doc.get("usage").ok_or("missing usage block")?;
    let int = |obj: &JsonValue, key: &str| -> Result<i64, String> {
        obj.get(key)
            .and_then(JsonValue::as_int)
            .ok_or_else(|| format!("missing integer {key}"))
    };
    for tier in WireType::ALL {
        let name = tier.as_str();
        let total = int(totals, name)?;
        if total != int(usage, name)? {
            return Err(format!(
                "congestion total {name}={total} != usage {name}={}",
                int(usage, name)?
            ));
        }
        let mut summed = 0i64;
        for slice in congestion
            .get("per_slice")
            .and_then(JsonValue::as_array)
            .ok_or("missing congestion per_slice")?
        {
            for cell in slice
                .get(name)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("slice missing tier {name}"))?
            {
                summed += cell.as_int().ok_or("non-integer congestion cell")?;
            }
        }
        if summed != total {
            return Err(format!(
                "per-cell {name} cells sum to {summed}, totals claim {total}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shapes_and_ramp() {
        let cells = [0.0, 1.0, 2.0, 4.0];
        let art = ascii_heatmap(2, 2, &cells, 4.0);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "  +--+");
        // Zero renders empty, the max renders the hottest glyph.
        assert!(lines[1].contains(' '));
        assert!(lines[2].ends_with("@|"));
    }

    #[test]
    fn check_rejects_wrong_schema() {
        let doc = JsonValue::object().with("schema", "bogus");
        assert!(check_artifact(&doc).is_err());
    }

    #[test]
    fn check_rejects_broken_identity() {
        let doc = JsonValue::object().with("schema", EXPLAIN_SCHEMA).with(
            "timing",
            JsonValue::object()
                .with("max_slice_path_ns", 1.0)
                .with("overhead_ns", 0.17)
                .with("num_slices", 4)
                .with("routed_delay_ns", 99.0),
        );
        let err = check_artifact(&doc).unwrap_err();
        assert!(err.contains("delay identity"), "{err}");
    }
}
