//! The flight-recorder ledger and cross-run trend analysis.
//!
//! Every mapping run can crash-safely append a one-line JSON summary —
//! run id, benchmark, seeds, QoR headline numbers, per-phase wall-clock,
//! peak RSS, degradations, exit code — to `results/runs/ledger.jsonl`
//! ([`append_run`]). The `nanomap runs` subcommand aggregates that
//! history: `list`/`show` browse it, `trend` renders ASCII-sparkline
//! tables per benchmark and field, and `regress` flags outliers with a
//! rolling median + MAD detector, turning the point-in-time QoR/perf
//! gates into a continuous record.
//!
//! Appends take an advisory lock on a stable sidecar file
//! (`<ledger>.lock`) and rewrite through the atomic-write substrate, so
//! concurrent appenders serialize and a killed writer can never leave a
//! torn line behind its own append. Lines torn by *external* means (a
//! partial copy, a crashed foreign writer) are skipped — not fatal — on
//! load, and reported in [`Ledger::skipped_lines`].

use std::collections::BTreeMap;
use std::path::Path;

use nanomap_observe::{json, JsonValue};

use crate::artifact::{atomic_write_text, versions};
use crate::report::MappingReport;

/// Default ledger location, relative to the working directory.
pub const DEFAULT_LEDGER_PATH: &str = "results/runs/ledger.jsonl";

/// Rolling window length for the [`regress`] outlier detector.
pub const REGRESS_WINDOW: usize = 8;

/// Default MAD multiplier for [`regress`]: a value flags when it
/// exceeds `median + K · σ` with `σ = 1.4826 · MAD` of the window.
pub const REGRESS_K: f64 = 4.0;

/// Consistency factor turning a median absolute deviation into a
/// normal-equivalent standard deviation.
const MAD_SIGMA: f64 = 1.4826;

/// Stable run identifier: FNV-1a over the netlist fingerprint, the
/// objective key and both physical seeds, rendered as 16 hex digits.
/// The same netlist mapped the same way always gets the same id.
pub fn run_id(fingerprint: u64, objective_key: &str, place_seed: u64, route_seed: u64) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ 0xFF).wrapping_mul(0x100_0000_01b3); // field separator
    };
    eat(&fingerprint.to_le_bytes());
    eat(objective_key.as_bytes());
    eat(&place_seed.to_le_bytes());
    eat(&route_seed.to_le_bytes());
    format!("{h:016x}")
}

/// One ledger line: the flight-recorder summary of a single run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Stable id from [`run_id`].
    pub run_id: String,
    /// Circuit (benchmark) name.
    pub circuit: String,
    /// Objective key, e.g. `min-at`.
    pub objective: String,
    /// Placement seed.
    pub place_seed: u64,
    /// Routing seed.
    pub route_seed: u64,
    /// Unix timestamp (seconds) of the append; 0 when the clock was
    /// unavailable.
    pub timestamp: u64,
    /// Process exit code the run mapped to (0 ok, 4 degraded, ...).
    pub exit_code: i32,
    /// Number of accepted degradations.
    pub degradations: u64,
    /// Recovery-ladder attempts consumed.
    pub recovery_attempts: u64,
    /// Wall-clock the failed recovery attempts burned, in milliseconds.
    pub recovery_ms: f64,
    /// Peak resident set in KiB, when measured.
    pub peak_rss_kb: Option<u64>,
    /// Service trace id when the run was produced by `nanomapd` on
    /// behalf of a traced request; `None` for local CLI runs.
    pub trace_id: Option<String>,
    /// QoR headline metrics (num_les, delay_ns, ...).
    pub metrics: BTreeMap<String, f64>,
    /// Per-phase wall-clock milliseconds, mirroring `phase_times`.
    pub phase_ms: BTreeMap<String, f64>,
}

/// Human status word for a flow exit code.
pub fn status_word(exit_code: i32) -> &'static str {
    match exit_code {
        0 => "ok",
        2 => "recovery-exhausted",
        3 => "budget-exhausted",
        4 => "degraded",
        5 => "infeasible",
        _ => "error",
    }
}

/// Publishes the terminal `run-end` event of a stream. `report` is
/// `None` when the run failed before producing one (phase totals are
/// then empty and `total_ms` zero). No-op while the bus is disabled.
pub fn publish_run_end(run_id: &str, exit_code: i32, report: Option<&MappingReport>) {
    if !nanomap_observe::events_enabled() {
        return;
    }
    let (phase_ms, total_ms) = report.map_or_else(
        || (Vec::new(), 0.0),
        |r| {
            let t = r.phase_times;
            let phases = [
                ("folding_select_ms", t.folding_select_ms),
                ("fds_ms", t.fds_ms),
                ("pack_ms", t.pack_ms),
                ("place_ms", t.place_ms),
                ("route_ms", t.route_ms),
                ("bitmap_ms", t.bitmap_ms),
                ("verify_ms", t.verify_ms),
                ("explain_ms", t.explain_ms),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
            (phases, t.total_ms)
        },
    );
    nanomap_observe::publish(nanomap_observe::EventKind::RunEnd {
        run_id: run_id.to_string(),
        status: status_word(exit_code).to_string(),
        exit_code,
        phase_ms,
        total_ms,
    });
}

impl RunRecord {
    /// Builds a ledger record from a finished mapping.
    pub fn from_report(report: &MappingReport, run_id: String, exit_code: i32) -> Self {
        let mut metrics = BTreeMap::new();
        let mut m = |name: &str, value: f64| {
            metrics.insert(name.to_string(), value);
        };
        m("num_les", f64::from(report.num_les));
        m("num_luts", f64::from(report.num_luts));
        m("delay_ns", report.delay_ns);
        m("area_um2", report.area_um2);
        if let Some(p) = &report.physical {
            m("num_smbs", f64::from(p.num_smbs));
            m("routed_delay_ns", p.routed_delay_ns);
            m("routed_wirelength", p.usage.total() as f64);
        }
        let t = report.phase_times;
        let phase_ms: BTreeMap<String, f64> = [
            ("folding_select_ms", t.folding_select_ms),
            ("fds_ms", t.fds_ms),
            ("pack_ms", t.pack_ms),
            ("place_ms", t.place_ms),
            ("route_ms", t.route_ms),
            ("bitmap_ms", t.bitmap_ms),
            ("verify_ms", t.verify_ms),
            ("explain_ms", t.explain_ms),
            ("total_ms", t.total_ms),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        let timestamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        Self {
            run_id,
            circuit: report.circuit.clone(),
            objective: String::new(),
            place_seed: 0,
            route_seed: 0,
            timestamp,
            exit_code,
            degradations: report.degradations.len() as u64,
            recovery_attempts: report.recovery.attempts.len() as u64,
            recovery_ms: report.recovery.wall_ms(),
            peak_rss_kb: report
                .memory
                .as_ref()
                .and_then(|m| m.peak_rss_kb)
                .or_else(nanomap_observe::read_rss_kb),
            trace_id: None,
            metrics,
            phase_ms,
        }
    }

    /// Human status word for the exit code.
    pub fn status(&self) -> &'static str {
        status_word(self.exit_code)
    }

    /// One compact JSON object — the ledger line format. Tagged with the
    /// events-subsystem schema so the line is self-describing.
    pub fn to_json(&self) -> JsonValue {
        let mut metrics = JsonValue::object();
        for (name, &value) in &self.metrics {
            metrics.set(name, value);
        }
        let mut phases = JsonValue::object();
        for (name, &value) in &self.phase_ms {
            phases.set(name, value);
        }
        let mut obj = JsonValue::object()
            .with("schema", versions::EVENTS)
            .with("run_id", self.run_id.as_str())
            .with("circuit", self.circuit.as_str())
            .with("objective", self.objective.as_str())
            .with("place_seed", self.place_seed)
            .with("route_seed", self.route_seed)
            .with("timestamp", self.timestamp)
            .with("exit_code", i64::from(self.exit_code))
            .with("degradations", self.degradations)
            .with("recovery_attempts", self.recovery_attempts)
            .with("recovery_ms", self.recovery_ms);
        if let Some(kb) = self.peak_rss_kb {
            obj.set("peak_rss_kb", kb);
        }
        if let Some(trace) = &self.trace_id {
            obj.set("trace_id", trace.as_str());
        }
        obj.set("metrics", metrics);
        obj.set("phase_ms", phases);
        obj
    }

    /// Parses one ledger line.
    ///
    /// # Errors
    ///
    /// Describes the first structural mismatch (malformed JSON, missing
    /// or mistyped field).
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        match value.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == versions::EVENTS => {}
            Some(other) => return Err(format!("unsupported ledger schema `{other}`")),
            None => return Err("ledger line missing `schema`".into()),
        }
        let text = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("ledger line missing string `{key}`"))
        };
        let int = |key: &str| -> Result<i64, String> {
            value
                .get(key)
                .and_then(JsonValue::as_int)
                .ok_or_else(|| format!("ledger line missing integer `{key}`"))
        };
        Ok(Self {
            run_id: text("run_id")?,
            circuit: text("circuit")?,
            objective: text("objective")?,
            place_seed: int("place_seed")? as u64,
            route_seed: int("route_seed")? as u64,
            timestamp: int("timestamp")?.max(0) as u64,
            exit_code: int("exit_code")? as i32,
            degradations: int("degradations")?.max(0) as u64,
            recovery_attempts: int("recovery_attempts")?.max(0) as u64,
            // Absent in ledgers written before the exact-recovery work.
            recovery_ms: value
                .get("recovery_ms")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            peak_rss_kb: value
                .get("peak_rss_kb")
                .and_then(JsonValue::as_int)
                .map(|v| v.max(0) as u64),
            trace_id: value
                .get("trace_id")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            metrics: crate::diff::number_map(value.get("metrics"), "metrics")?,
            phase_ms: crate::diff::number_map(value.get("phase_ms"), "phase_ms")?,
        })
    }

    /// Looks a trend/regress field up across the metric and phase maps
    /// (`peak_rss_kb` is also addressable).
    pub fn field(&self, name: &str) -> Option<f64> {
        self.metrics
            .get(name)
            .or_else(|| self.phase_ms.get(name))
            .copied()
            .or_else(|| (name == "peak_rss_kb").then(|| self.peak_rss_kb.map(|kb| kb as f64))?)
    }
}

/// How long an appender spins on `try_lock` before it starts probing
/// the lock owner for staleness.
const LOCK_BREAK_AFTER_MS: u64 = 500;

/// Sleep between lock acquisition attempts.
const LOCK_RETRY_SLEEP_MS: u64 = 10;

/// A held lock whose owner pid is dead is broken once the lock file is
/// at least this old — the grace window covers the instant between a
/// new owner acquiring the flock and stamping its pid into the file.
const STALE_DEAD_OWNER_GRACE_SECS: u64 = 2;

/// A held lock is broken regardless of owner liveness once the lock
/// file has not been refreshed for this long: appends take milliseconds,
/// so a multi-minute hold means the owner is wedged, not working.
const STALE_LOCK_MAX_AGE_SECS: u64 = 300;

/// Crash-safely appends one record to the ledger at `path`.
///
/// Concurrent appenders serialize on an advisory lock held on a stable
/// sidecar file (`<path>.lock`), then rewrite the ledger through the
/// atomic-write substrate. A torn final line left by a foreign writer
/// is preserved as its own (skippable) line, never merged into the new
/// record.
///
/// The lock self-heals: each owner stamps its pid into the sidecar, and
/// a waiter that cannot acquire the lock probes the owner — a dead pid
/// (crashed or `kill -9`ed holder) or a hold older than
/// [`STALE_LOCK_MAX_AGE_SECS`] breaks the lock with a warning instead
/// of wedging every future append.
///
/// # Errors
///
/// Returns a description of the first I/O failure.
pub fn append_run(path: &Path, record: &RunRecord) -> Result<(), String> {
    nanomap_observe::failpoint::inject_io("ledger.append")
        .map_err(|e| format!("appending to {}: {e}", path.display()))?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    let lock_path = lock_path_for(path);
    let _lock_file = acquire_sidecar_lock(&lock_path)?;
    // Lock held until `_lock_file` drops at the end of the function.
    let mut text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&record.to_json().to_compact_string());
    text.push('\n');
    atomic_write_text(path, &text).map_err(|e| e.to_string())
}

/// The sidecar lock file guarding appends to `path`.
fn lock_path_for(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("ledger"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".lock");
    path.with_file_name(name)
}

/// Acquires the sidecar flock, breaking it if the owner is provably
/// stale. Returns the open file whose drop releases the lock.
fn acquire_sidecar_lock(lock_path: &Path) -> Result<std::fs::File, String> {
    let mut waited_ms: u64 = 0;
    loop {
        let lock_file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(lock_path)
            .map_err(|e| format!("opening {}: {e}", lock_path.display()))?;
        match lock_file.try_lock() {
            Ok(()) => {
                // Another waiter may have broken (unlinked) this inode
                // between our open and the flock; holding a lock on an
                // orphaned inode excludes nobody, so re-open and retry.
                if !same_inode(&lock_file, lock_path) {
                    continue;
                }
                stamp_lock_owner(&lock_file);
                return Ok(lock_file);
            }
            Err(std::fs::TryLockError::WouldBlock) => {
                if waited_ms >= LOCK_BREAK_AFTER_MS && lock_is_stale(lock_path) {
                    eprintln!(
                        "nanomap: breaking stale ledger lock {} (owner dead or wedged)",
                        lock_path.display()
                    );
                    // Unlinking invalidates the flock for future
                    // waiters; current waiters detect the inode swap.
                    let _ = std::fs::remove_file(lock_path);
                    continue;
                }
                std::thread::sleep(std::time::Duration::from_millis(LOCK_RETRY_SLEEP_MS));
                waited_ms += LOCK_RETRY_SLEEP_MS;
            }
            Err(std::fs::TryLockError::Error(e)) => {
                return Err(format!("locking {}: {e}", lock_path.display()));
            }
        }
    }
}

/// True iff the open file and the path still refer to the same inode
/// (the lock was not broken out from under us). Conservatively true on
/// platforms without inode identity.
fn same_inode(file: &std::fs::File, path: &Path) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        match (file.metadata(), std::fs::metadata(path)) {
            (Ok(held), Ok(on_disk)) => held.dev() == on_disk.dev() && held.ino() == on_disk.ino(),
            // Path gone: a breaker unlinked it while we raced.
            _ => false,
        }
    }
    #[cfg(not(unix))]
    {
        let _ = (file, path);
        true
    }
}

/// Stamps the new owner's identity into the lock file so waiters can
/// probe liveness. Best-effort: a failed stamp only degrades staleness
/// detection, never the lock itself.
fn stamp_lock_owner(lock_file: &std::fs::File) {
    use std::io::{Seek, Write};
    let owner = JsonValue::object()
        .with("pid", u64::from(std::process::id()))
        .with("acquired_unix", unix_now());
    let mut f = lock_file;
    let _ = f.set_len(0);
    let _ = f.seek(std::io::SeekFrom::Start(0));
    let _ = f.write_all(owner.to_compact_string().as_bytes());
    let _ = f.sync_data();
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// Decides whether a lock that cannot be acquired is safe to break:
/// the stamped owner pid is dead (with a short grace window for a new
/// owner mid-stamp), or the lock file has sat unrefreshed longer than
/// any legitimate append could take.
fn lock_is_stale(lock_path: &Path) -> bool {
    let age_secs = std::fs::metadata(lock_path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
        .map_or(0, |age| age.as_secs());
    if age_secs >= STALE_LOCK_MAX_AGE_SECS {
        return true;
    }
    if age_secs < STALE_DEAD_OWNER_GRACE_SECS {
        return false;
    }
    let owner_pid = std::fs::read_to_string(lock_path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|v| v.get("pid").and_then(JsonValue::as_int))
        .filter(|&pid| pid > 0);
    match owner_pid {
        Some(pid) => !pid_alive(pid as u32),
        // No stamp (pre-upgrade writer or unreadable): only the age
        // threshold above can break it.
        None => false,
    }
}

/// Liveness probe for a pid. On non-Linux platforms without `/proc`
/// the probe conservatively reports "alive".
fn pid_alive(pid: u32) -> bool {
    if std::path::Path::new("/proc").is_dir() {
        return std::path::Path::new(&format!("/proc/{pid}")).exists();
    }
    true
}

/// A loaded ledger: parsed records plus the 1-based line numbers that
/// failed to parse (torn tails, foreign garbage) and were skipped.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Records in file (append) order.
    pub records: Vec<RunRecord>,
    /// 1-based line numbers that did not parse.
    pub skipped_lines: Vec<usize>,
}

impl Ledger {
    /// Parses ledger text line by line. Malformed lines — including a
    /// final line truncated by a killed foreign writer — are skipped
    /// and reported, never fatal.
    pub fn parse(text: &str) -> Self {
        let mut ledger = Ledger::default();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match json::parse(line).and_then(|v| RunRecord::from_json(&v)) {
                Ok(record) => ledger.records.push(record),
                Err(_) => ledger.skipped_lines.push(idx + 1),
            }
        }
        ledger
    }

    /// Loads and parses the ledger at `path`.
    ///
    /// # Errors
    ///
    /// Only on I/O failure — parse problems are per-line skips.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Ok(Self::parse(&text))
    }

    /// Distinct circuit names in first-seen order.
    pub fn circuits(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.records {
            if !seen.contains(&r.circuit.as_str()) {
                seen.push(r.circuit.as_str());
            }
        }
        seen
    }

    /// All records for one circuit, in append order.
    pub fn runs_of(&self, circuit: &str) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.circuit == circuit)
            .collect()
    }

    /// Finds a record by run-id prefix (latest match wins, so `show`
    /// favors the most recent run of a re-executed configuration).
    pub fn find(&self, run_id_prefix: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .rev()
            .find(|r| r.run_id.starts_with(run_id_prefix))
    }

    /// Finds the record stamped with a service trace id (latest match
    /// wins). Cache hits replay without a new ledger line, so only the
    /// original miss is addressable this way.
    pub fn find_by_trace(&self, trace_id: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .rev()
            .find(|r| r.trace_id.as_deref() == Some(trace_id))
    }
}

/// Eight-level ASCII sparkline of `values` (empty input → empty string;
/// a flat series renders mid-scale).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '?';
            }
            if max - min < 1e-12 {
                return BARS[3];
            }
            let t = (v - min) / (max - min);
            BARS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// One row of the `trend` table: a circuit's history of one field.
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// Circuit name.
    pub circuit: String,
    /// Field name (metric, phase time, or `peak_rss_kb`).
    pub field: String,
    /// Values in append order.
    pub values: Vec<f64>,
}

impl TrendRow {
    /// Renders the row as one fixed-width table line with a sparkline.
    pub fn render(&self) -> String {
        let min = self.values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self
            .values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let last = self.values.last().copied().unwrap_or(f64::NAN);
        format!(
            "{:<14} {:<20} {:>4} {:>12.3} {:>12.3} {:>12.3}  {}",
            self.circuit,
            self.field,
            self.values.len(),
            min,
            max,
            last,
            sparkline(&self.values)
        )
    }
}

/// Builds trend rows for every (circuit, field) pair with at least one
/// value. Output order is deterministic: circuits in first-seen ledger
/// order, fields in the order given.
pub fn trend(ledger: &Ledger, benchmark: Option<&str>, fields: &[&str]) -> Vec<TrendRow> {
    let mut rows = Vec::new();
    for circuit in ledger.circuits() {
        if benchmark.is_some_and(|b| b != circuit) {
            continue;
        }
        for &field in fields {
            let values: Vec<f64> = ledger
                .runs_of(circuit)
                .iter()
                .filter_map(|r| r.field(field))
                .collect();
            if !values.is_empty() {
                rows.push(TrendRow {
                    circuit: circuit.to_string(),
                    field: field.to_string(),
                    values,
                });
            }
        }
    }
    rows
}

/// A run flagged by the rolling median + MAD detector.
#[derive(Debug, Clone)]
pub struct Outlier {
    /// Circuit name.
    pub circuit: String,
    /// Field that regressed.
    pub field: String,
    /// Run id of the flagged run.
    pub run_id: String,
    /// 0-based index of the run within the circuit's history.
    pub index: usize,
    /// The offending value.
    pub value: f64,
    /// Rolling median of the preceding window.
    pub median: f64,
    /// The flag threshold (`median + K · σ`).
    pub threshold: f64,
}

impl Outlier {
    /// One human-readable line describing the flag.
    pub fn render(&self) -> String {
        format!(
            "{:<14} {:<20} run {} ({}): {:.3} > {:.3} (rolling median {:.3})",
            self.circuit,
            self.field,
            self.index,
            self.run_id,
            self.value,
            self.threshold,
            self.median
        )
    }
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Flags upward outliers (all ledger fields are lower-is-better) via a
/// rolling median + MAD over the preceding `window` runs. A value flags
/// when it exceeds `median + k · σ`, where `σ = 1.4826 · MAD` floored at
/// 1% of the median magnitude — so perfectly flat deterministic series
/// (MAD = 0) tolerate float jitter but still flag a real jump. Needs at
/// least 4 prior runs per circuit.
pub fn regress(
    ledger: &Ledger,
    benchmark: Option<&str>,
    field: &str,
    window: usize,
    k: f64,
) -> Vec<Outlier> {
    const MIN_HISTORY: usize = 4;
    let window = window.max(MIN_HISTORY);
    let mut outliers = Vec::new();
    for circuit in ledger.circuits() {
        if benchmark.is_some_and(|b| b != circuit) {
            continue;
        }
        let runs = ledger.runs_of(circuit);
        let values: Vec<Option<f64>> = runs.iter().map(|r| r.field(field)).collect();
        for i in MIN_HISTORY..values.len() {
            let Some(value) = values[i] else { continue };
            let start = i.saturating_sub(window);
            let mut history: Vec<f64> = values[start..i].iter().filter_map(|v| *v).collect();
            if history.len() < MIN_HISTORY {
                continue;
            }
            history.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = median_of(&history);
            let mut deviations: Vec<f64> = history.iter().map(|v| (v - median).abs()).collect();
            deviations.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let sigma = (MAD_SIGMA * median_of(&deviations)).max(0.01 * median.abs().max(1e-9));
            let threshold = median + k * sigma;
            if value > threshold {
                outliers.push(Outlier {
                    circuit: circuit.to_string(),
                    field: field.to_string(),
                    run_id: runs[i].run_id.clone(),
                    index: i,
                    value,
                    median,
                    threshold,
                });
            }
        }
    }
    outliers
}

/// Summary returned by a successful [`check_stream`].
#[derive(Debug, Clone, Default)]
pub struct StreamCheck {
    /// Total events in the stream.
    pub events: u64,
    /// The run id announced by run-start.
    pub run_id: String,
    /// Exit code reported by run-end.
    pub exit_code: i32,
    /// Per-phase totals from run-end.
    pub phase_ms: BTreeMap<String, f64>,
    /// Total wall-clock from run-end.
    pub total_ms: f64,
}

/// Validates a `nanomap-events-v1` NDJSON stream: every line parses,
/// sequence numbers strictly increase, the stream opens with a
/// schema-tagged run-start and terminates with run-end, per-thread
/// phase-start/phase-end events nest properly, progress fractions stay
/// in `[0, 1]`, and run-end's phase totals are consistent with its
/// total (sequential phases cannot sum past the whole run, modulo
/// timer slack).
///
/// # Errors
///
/// Describes the first violated invariant.
pub fn check_stream(text: &str) -> Result<StreamCheck, String> {
    let mut check = StreamCheck::default();
    let mut last_seq: Option<i64> = None;
    let mut saw_run_start = false;
    let mut last_kind = String::new();
    let mut stacks: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: empty line inside the stream"));
        }
        let event = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let seq = event
            .get("seq")
            .and_then(JsonValue::as_int)
            .ok_or_else(|| format!("line {lineno}: missing `seq`"))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!(
                    "line {lineno}: seq {seq} not greater than previous {prev}"
                ));
            }
        }
        last_seq = Some(seq);
        let kind = event
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {lineno}: missing `kind`"))?
            .to_string();
        let tid = event.get("tid").and_then(JsonValue::as_int).unwrap_or(0);
        match kind.as_str() {
            "run-start" => {
                if saw_run_start {
                    return Err(format!("line {lineno}: duplicate run-start"));
                }
                if check.events != 0 {
                    return Err(format!("line {lineno}: run-start is not the first event"));
                }
                match event.get("schema").and_then(JsonValue::as_str) {
                    Some(s) if s == versions::EVENTS => {}
                    other => {
                        return Err(format!("line {lineno}: run-start schema {other:?}"));
                    }
                }
                check.run_id = event
                    .get("run_id")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("line {lineno}: run-start missing `run_id`"))?
                    .to_string();
                saw_run_start = true;
            }
            "phase-start" => {
                let phase = phase_of(&event, lineno)?;
                stacks.entry(tid).or_default().push(phase);
            }
            "phase-end" => {
                let phase = phase_of(&event, lineno)?;
                let top = stacks.entry(tid).or_default().pop();
                if top.as_deref() != Some(phase.as_str()) {
                    return Err(format!(
                        "line {lineno}: phase-end `{phase}` does not match open phase {top:?} on tid {tid}"
                    ));
                }
            }
            "phase-progress" => {
                if let Some(f) = event.get("fraction").and_then(JsonValue::as_f64) {
                    if !(0.0..=1.0).contains(&f) {
                        return Err(format!("line {lineno}: fraction {f} outside [0, 1]"));
                    }
                }
            }
            "run-end" => {
                check.exit_code = event
                    .get("exit_code")
                    .and_then(JsonValue::as_int)
                    .ok_or_else(|| format!("line {lineno}: run-end missing `exit_code`"))?
                    as i32;
                check.phase_ms = crate::diff::number_map(event.get("phase_ms"), "phase_ms")
                    .map_err(|e| format!("line {lineno}: {e}"))?;
                check.total_ms = event
                    .get("total_ms")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("line {lineno}: run-end missing `total_ms`"))?;
                let phase_sum: f64 = check
                    .phase_ms
                    .iter()
                    .filter(|(name, _)| *name != "total_ms" && *name != "budget_ms_remaining")
                    .map(|(_, v)| v)
                    .sum();
                if phase_sum > check.total_ms * 1.05 + 50.0 {
                    return Err(format!(
                        "line {lineno}: phase totals {phase_sum:.1} ms exceed run total {:.1} ms",
                        check.total_ms
                    ));
                }
            }
            "counters" | "degraded" | "recovery-attempt" | "checkpoint" | "service" => {}
            other => return Err(format!("line {lineno}: unknown event kind `{other}`")),
        }
        if !saw_run_start {
            return Err(format!("line {lineno}: `{kind}` before run-start"));
        }
        check.events += 1;
        last_kind = kind;
    }
    if check.events == 0 {
        return Err("empty stream".into());
    }
    if last_kind != "run-end" {
        return Err(format!(
            "stream does not terminate with run-end (last event: `{last_kind}`)"
        ));
    }
    Ok(check)
}

fn phase_of(event: &JsonValue, lineno: usize) -> Result<String, String> {
    event
        .get("phase")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: missing `phase`"))
}

/// One service lifecycle event of a traced request, parsed from a
/// `nanomap-events-v1` capture written by `nanomapd --events`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the capture's epoch (the bus `t_us` stamp).
    pub t_us: u64,
    /// Lifecycle stage: `queued`, `shed`, `started`, `resumed`,
    /// `cache-hit`, `coalesced`, `preempted`, `completed`.
    pub stage: String,
    /// Client request id.
    pub request: String,
    /// Run id, once known (compute and cache stages).
    pub run_id: Option<String>,
    /// Terminal result code (`completed` and `shed` stages).
    pub code: Option<String>,
    /// Free-form stage detail.
    pub detail: Option<String>,
    /// Stage duration in microseconds, when the stage measures one.
    pub us: Option<u64>,
}

/// Extracts the timeline of one trace id from an event-capture NDJSON
/// text: every `service` event stamped with `trace_id`, in stream
/// order. Malformed lines and other event kinds are skipped, so the
/// parser works on live captures that interleave many requests.
pub fn trace_timeline(text: &str, trace_id: &str) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for line in text.lines() {
        let Ok(value) = json::parse(line) else {
            continue;
        };
        if value.get("kind").and_then(JsonValue::as_str) != Some("service")
            || value.get("trace_id").and_then(JsonValue::as_str) != Some(trace_id)
        {
            continue;
        }
        let text_of = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
        };
        events.push(TraceEvent {
            t_us: value
                .get("t_us")
                .and_then(JsonValue::as_int)
                .unwrap_or(0)
                .max(0) as u64,
            stage: text_of("stage").unwrap_or_default(),
            request: text_of("request").unwrap_or_default(),
            run_id: text_of("run_id"),
            code: text_of("code"),
            detail: text_of("detail"),
            us: value
                .get("us")
                .and_then(JsonValue::as_int)
                .map(|v| v.max(0) as u64),
        });
    }
    events
}

/// Renders a trace timeline as fixed-width table lines, one per event,
/// with times relative to the first event.
pub fn render_trace_timeline(events: &[TraceEvent]) -> Vec<String> {
    let epoch = events.first().map_or(0, |e| e.t_us);
    events
        .iter()
        .map(|e| {
            let mut line = format!(
                "+{:>9.3} ms  {:<10} {}",
                (e.t_us.saturating_sub(epoch)) as f64 / 1_000.0,
                e.stage,
                e.request
            );
            if let Some(run) = &e.run_id {
                line.push_str(&format!("  run {run}"));
            }
            if let Some(code) = &e.code {
                line.push_str(&format!("  code {code}"));
            }
            if let Some(us) = e.us {
                line.push_str(&format!("  {:.3} ms", us as f64 / 1_000.0));
            }
            if let Some(detail) = &e.detail {
                line.push_str(&format!("  ({detail})"));
            }
            line
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(circuit: &str, run: &str, total_ms: f64) -> RunRecord {
        RunRecord {
            run_id: run.to_string(),
            circuit: circuit.to_string(),
            objective: "min-at".to_string(),
            place_seed: 1,
            route_seed: 2,
            timestamp: 1_000,
            exit_code: 0,
            degradations: 0,
            recovery_attempts: 0,
            recovery_ms: 0.0,
            peak_rss_kb: Some(4_096),
            trace_id: Some("feedbeef00000001".to_string()),
            metrics: [("num_les".to_string(), 12.0), ("delay_ns".to_string(), 3.5)]
                .into_iter()
                .collect(),
            phase_ms: [
                ("place_ms".to_string(), total_ms * 0.6),
                ("route_ms".to_string(), total_ms * 0.4),
                ("total_ms".to_string(), total_ms),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn run_id_is_deterministic_and_input_sensitive() {
        let base = run_id(0xdead_beef, "min-at", 1, 2);
        assert_eq!(base, run_id(0xdead_beef, "min-at", 1, 2));
        assert_eq!(base.len(), 16);
        assert!(base.chars().all(|c| c.is_ascii_hexdigit()));
        // Every input perturbs the id.
        assert_ne!(base, run_id(0xdead_bee0, "min-at", 1, 2));
        assert_ne!(base, run_id(0xdead_beef, "min-delay", 1, 2));
        assert_ne!(base, run_id(0xdead_beef, "min-at", 7, 2));
        assert_ne!(base, run_id(0xdead_beef, "min-at", 1, 7));
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = record("mac16", "abc123", 120.0);
        let back = RunRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
        // Optional RSS and trace id absent also round-trip.
        let mut bare = rec;
        bare.peak_rss_kb = None;
        bare.trace_id = None;
        assert_eq!(RunRecord::from_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn find_by_trace_returns_latest_stamped_record() {
        let mut a = record("mac16", "run-a", 100.0);
        a.trace_id = Some("trace-one".to_string());
        let mut b = record("mac16", "run-b", 101.0);
        b.trace_id = Some("trace-one".to_string());
        let mut c = record("mac16", "run-c", 102.0);
        c.trace_id = None;
        let ledger = Ledger {
            records: vec![a, b, c],
            skipped_lines: Vec::new(),
        };
        assert_eq!(ledger.find_by_trace("trace-one").unwrap().run_id, "run-b");
        assert!(ledger.find_by_trace("trace-two").is_none());
    }

    #[test]
    fn trace_timeline_filters_by_id_and_skips_noise() {
        let capture = concat!(
            "{\"schema\":\"nanomap-events-v1\",\"seq\":1,\"t_us\":100,\"kind\":\"service\",\"trace_id\":\"aa\",\"request\":\"r1\",\"stage\":\"queued\"}\n",
            "{\"schema\":\"nanomap-events-v1\",\"seq\":2,\"t_us\":150,\"kind\":\"counters\"}\n",
            "not json at all\n",
            "{\"schema\":\"nanomap-events-v1\",\"seq\":3,\"t_us\":200,\"kind\":\"service\",\"trace_id\":\"bb\",\"request\":\"r2\",\"stage\":\"queued\"}\n",
            "{\"schema\":\"nanomap-events-v1\",\"seq\":4,\"t_us\":900,\"kind\":\"service\",\"trace_id\":\"aa\",\"request\":\"r1\",\"stage\":\"completed\",\"run_id\":\"rid\",\"code\":\"OK\",\"us\":800}\n",
        );
        let timeline = trace_timeline(capture, "aa");
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[0].stage, "queued");
        assert_eq!(timeline[1].stage, "completed");
        assert_eq!(timeline[1].run_id.as_deref(), Some("rid"));
        assert_eq!(timeline[1].code.as_deref(), Some("OK"));
        assert_eq!(timeline[1].us, Some(800));
        let rendered = render_trace_timeline(&timeline);
        assert_eq!(rendered.len(), 2);
        assert!(rendered[0].starts_with("+    0.000 ms"), "{}", rendered[0]);
        assert!(rendered[1].contains("completed"), "{}", rendered[1]);
        assert!(rendered[1].contains("code OK"), "{}", rendered[1]);
        assert!(trace_timeline(capture, "zz").is_empty());
    }

    #[test]
    fn from_json_rejects_foreign_schemas() {
        let line = record("mac16", "abc", 1.0)
            .to_json()
            .to_compact_string()
            .replace(versions::EVENTS, "other-v9");
        let err = RunRecord::from_json(&json::parse(&line).unwrap()).unwrap_err();
        assert!(err.contains("other-v9"), "{err}");
    }

    #[test]
    fn append_creates_appends_and_heals_torn_tails() {
        let dir = std::env::temp_dir().join(format!("nanomap-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/ledger.jsonl");
        append_run(&path, &record("mac16", "run-a", 100.0)).unwrap();
        append_run(&path, &record("mac16", "run-b", 101.0)).unwrap();
        // A foreign writer died mid-line: the tail has no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema\":\"nanomap-ev");
        std::fs::write(&path, &text).unwrap();
        append_run(&path, &record("mac16", "run-c", 102.0)).unwrap();
        let ledger = Ledger::load(&path).unwrap();
        // The torn line stayed its own (skipped) line; every real record
        // survived intact around it.
        assert_eq!(ledger.skipped_lines, vec![3]);
        let ids: Vec<&str> = ledger.records.iter().map(|r| r.run_id.as_str()).collect();
        assert_eq!(ids, ["run-a", "run-b", "run-c"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_from_dead_owner_is_broken() {
        let dir = std::env::temp_dir().join(format!("nanomap-stale-lock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let lock_path = lock_path_for(&path);
        // A holder that was `kill -9`ed: its pid stamp is dead, and a
        // second open-file-description keeps the flock held so waiters
        // actually hit the contended path (flock conflicts across fds
        // even within one process).
        let dead_pid: u64 = 999_999_999; // above any real pid_max
        std::fs::write(
            &lock_path,
            format!("{{\"pid\":{dead_pid},\"acquired_unix\":0}}"),
        )
        .unwrap();
        let holder = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&lock_path)
            .unwrap();
        holder.lock().unwrap();
        // Age the stamp past the mid-stamp grace window but under the
        // absolute wedge threshold, isolating the dead-pid path.
        let aged = std::time::SystemTime::now() - std::time::Duration::from_secs(30);
        holder.set_modified(aged).unwrap();
        assert!(lock_is_stale(&lock_path), "dead owner must read as stale");
        append_run(&path, &record("mac16", "run-a", 100.0)).unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.records.len(), 1);
        drop(holder);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wedged_live_owner_is_broken_after_max_age() {
        let dir = std::env::temp_dir().join(format!("nanomap-wedge-lock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let lock_path = lock_path_for(&path);
        // The holder is this (very much alive) process, hung mid-append:
        // only the absolute age threshold may break it.
        let live_pid = u64::from(std::process::id());
        std::fs::write(
            &lock_path,
            format!("{{\"pid\":{live_pid},\"acquired_unix\":0}}"),
        )
        .unwrap();
        let holder = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&lock_path)
            .unwrap();
        holder.lock().unwrap();
        let recent = std::time::SystemTime::now() - std::time::Duration::from_secs(30);
        holder.set_modified(recent).unwrap();
        assert!(!lock_is_stale(&lock_path), "live recent owner is not stale");
        let ancient = std::time::SystemTime::now()
            - std::time::Duration::from_secs(STALE_LOCK_MAX_AGE_SECS + 60);
        holder.set_modified(ancient).unwrap();
        assert!(lock_is_stale(&lock_path), "multi-minute hold is wedged");
        append_run(&path, &record("mac16", "run-a", 100.0)).unwrap();
        assert_eq!(Ledger::load(&path).unwrap().records.len(), 1);
        drop(holder);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_last_line_is_skipped_not_fatal() {
        let good = record("mac16", "run-a", 100.0)
            .to_json()
            .to_compact_string();
        let torn = &good[..good.len() / 2];
        let ledger = Ledger::parse(&format!("{good}\n{torn}"));
        assert_eq!(ledger.records.len(), 1);
        assert_eq!(ledger.skipped_lines, vec![2]);
    }

    #[test]
    fn find_matches_prefixes_latest_first() {
        let ledger = Ledger::parse(&format!(
            "{}\n{}\n",
            record("mac16", "aabb0011", 100.0)
                .to_json()
                .to_compact_string(),
            record("mac16", "aabb0022", 200.0)
                .to_json()
                .to_compact_string(),
        ));
        assert_eq!(ledger.find("aabb00").unwrap().run_id, "aabb0022");
        assert_eq!(ledger.find("aabb0011").unwrap().run_id, "aabb0011");
        assert!(ledger.find("ffff").is_none());
    }

    #[test]
    fn sparkline_spans_the_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(line, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[1.0, f64::NAN, 2.0]), "▁?█");
    }

    #[test]
    fn trend_is_deterministic_for_a_fixed_ledger() {
        let text: String = [
            record("mac16", "a", 100.0),
            record("fir8", "b", 50.0),
            record("mac16", "c", 110.0),
        ]
        .iter()
        .map(|r| r.to_json().to_compact_string() + "\n")
        .collect();
        let ledger = Ledger::parse(&text);
        let rows = trend(&ledger, None, &["total_ms", "num_les"]);
        let rendered: Vec<String> = rows.iter().map(TrendRow::render).collect();
        assert_eq!(
            rendered,
            trend(&ledger, None, &["total_ms", "num_les"])
                .iter()
                .map(TrendRow::render)
                .collect::<Vec<_>>()
        );
        // Circuits in first-seen order, fields in the order given.
        assert_eq!(rows[0].circuit, "mac16");
        assert_eq!(rows[0].field, "total_ms");
        assert_eq!(rows[0].values, vec![100.0, 110.0]);
        assert_eq!(rows[1].field, "num_les");
        assert_eq!(rows[2].circuit, "fir8");
        // Benchmark filter narrows to one circuit.
        assert_eq!(trend(&ledger, Some("fir8"), &["total_ms"]).len(), 1);
    }

    #[test]
    fn regress_flags_an_injected_regression() {
        // Nine quiet runs around 100 ms, then a 1.6x jump.
        let quiet = [100.0, 101.0, 99.5, 100.5, 100.2, 99.8, 100.9, 99.6, 100.3];
        let quiet_text: String = quiet
            .iter()
            .enumerate()
            .map(|(i, ms)| {
                record("mac16", &format!("run-{i}"), *ms)
                    .to_json()
                    .to_compact_string()
                    + "\n"
            })
            .collect();
        // The quiet prefix alone never flags.
        let quiet_ledger = Ledger::parse(&quiet_text);
        assert!(regress(&quiet_ledger, None, "total_ms", REGRESS_WINDOW, REGRESS_K).is_empty());
        let text = quiet_text
            + &record("mac16", "run-slow", 160.0)
                .to_json()
                .to_compact_string()
            + "\n";
        let ledger = Ledger::parse(&text);
        let outliers = regress(&ledger, None, "total_ms", REGRESS_WINDOW, REGRESS_K);
        assert_eq!(outliers.len(), 1, "{outliers:?}");
        assert_eq!(outliers[0].run_id, "run-slow");
        assert_eq!(outliers[0].index, 9);
        assert!(outliers[0].value > outliers[0].threshold);
    }

    #[test]
    fn regress_tolerates_flat_deterministic_series() {
        // Bit-identical reruns (MAD = 0) must not flag on float jitter.
        let mut text = String::new();
        for i in 0..8 {
            let line = record(
                "mac16",
                &format!("run-{i}"),
                100.0 + f64::from(i % 2) * 1e-9,
            );
            text.push_str(&line.to_json().to_compact_string());
            text.push('\n');
        }
        let ledger = Ledger::parse(&text);
        assert!(regress(&ledger, None, "total_ms", REGRESS_WINDOW, REGRESS_K).is_empty());
    }

    fn stream_line(seq: u64, body: &str) -> String {
        format!("{{\"seq\":{seq},\"ts_us\":0,\"tid\":0,{body}}}\n")
    }

    fn valid_stream() -> String {
        let mut s = String::new();
        s.push_str(&stream_line(
            1,
            &format!(
                "\"kind\":\"run-start\",\"schema\":\"{}\",\"run_id\":\"abc\",\
                 \"circuit\":\"mac16\",\"objective\":\"min-at\",\
                 \"place_seed\":1,\"route_seed\":2",
                versions::EVENTS
            ),
        ));
        s.push_str(&stream_line(
            2,
            "\"kind\":\"phase-start\",\"phase\":\"flow\",\"depth\":0",
        ));
        s.push_str(&stream_line(
            3,
            "\"kind\":\"phase-progress\",\"phase\":\"flow\",\"completed\":1,\"fraction\":0.5",
        ));
        s.push_str(&stream_line(
            4,
            "\"kind\":\"phase-end\",\"phase\":\"flow\",\"depth\":0,\"duration_us\":10",
        ));
        s.push_str(&stream_line(
            5,
            "\"kind\":\"run-end\",\"run_id\":\"abc\",\"status\":\"ok\",\"exit_code\":0,\
             \"phase_ms\":{\"place_ms\":2.0,\"route_ms\":1.0},\"total_ms\":4.0",
        ));
        s
    }

    #[test]
    fn check_stream_accepts_a_well_formed_stream() {
        let check = check_stream(&valid_stream()).unwrap();
        assert_eq!(check.events, 5);
        assert_eq!(check.run_id, "abc");
        assert_eq!(check.exit_code, 0);
        assert_eq!(check.total_ms, 4.0);
        assert_eq!(check.phase_ms.len(), 2);
    }

    #[test]
    fn check_stream_rejects_broken_streams() {
        // Sequence numbers must strictly increase.
        let reordered = valid_stream().replace("{\"seq\":4,", "{\"seq\":2,");
        assert!(check_stream(&reordered).unwrap_err().contains("seq"));
        // The stream must terminate with run-end.
        let unterminated: String = valid_stream()
            .lines()
            .take(4)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(check_stream(&unterminated)
            .unwrap_err()
            .contains("terminate"));
        // run-start must come first.
        let headless: String = valid_stream()
            .lines()
            .skip(1)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(check_stream(&headless)
            .unwrap_err()
            .contains("before run-start"));
        // Progress fractions stay in [0, 1].
        let wild = valid_stream().replace("\"fraction\":0.5", "\"fraction\":1.5");
        assert!(check_stream(&wild).unwrap_err().contains("fraction"));
        // Phase nesting is enforced.
        let crossed = valid_stream().replace(
            "\"kind\":\"phase-end\",\"phase\":\"flow\"",
            "\"kind\":\"phase-end\",\"phase\":\"other\"",
        );
        assert!(check_stream(&crossed).unwrap_err().contains("phase-end"));
        // Phase totals cannot dwarf the run total.
        let bloated = valid_stream().replace("\"place_ms\":2.0", "\"place_ms\":2000.0");
        assert!(check_stream(&bloated).unwrap_err().contains("exceed"));
        assert!(check_stream("").unwrap_err().contains("empty"));
    }
}
