//! Folding-level selection (Section 4.1, Eqs. 1–4).

use nanomap_netlist::PlaneSet;

/// Whether planes time-share the same physical logic elements.
///
/// Sharing across planes never hurts delay but multiplies the number of
/// NRAM configuration sets consumed (`num_plane × stages`). When the
/// NRAM limit `k` rules sharing out — or the circuit is pipelined and all
/// planes must be resident simultaneously — folding falls back to within-
/// plane sharing only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneSharing {
    /// All planes execute on the same LEs (stacked, Section 4.1 scenario 1).
    Shared,
    /// Each plane owns its LEs; folding happens within a plane
    /// (Section 4.1 scenario 2 — pipelined circuits).
    PerPlane,
}

/// One candidate folding configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldingConfig {
    /// Folding level `p`, or `None` for the traditional no-folding mapping.
    pub level: Option<u32>,
    /// Folding stages per plane (1 when not folding).
    pub stages: u32,
    /// Plane resource sharing mode.
    pub sharing: PlaneSharing,
}

impl FoldingConfig {
    /// The no-folding baseline configuration.
    pub fn no_folding() -> Self {
        Self {
            level: None,
            stages: 1,
            sharing: PlaneSharing::PerPlane,
        }
    }

    /// NRAM configuration sets consumed per logic element.
    pub fn nram_sets(&self, num_planes: u32) -> u32 {
        match (self.level, self.sharing) {
            (None, _) => 1,
            (Some(_), PlaneSharing::Shared) => num_planes * self.stages,
            (Some(_), PlaneSharing::PerPlane) => self.stages,
        }
    }
}

/// Eq. (1): the minimum number of folding stages needed to fit
/// `lut_max` LUTs into `available_le` logic elements.
pub fn min_folding_stages(lut_max: usize, available_le: u32) -> u32 {
    (lut_max as u32).div_ceil(available_le.max(1)).max(1)
}

/// Eq. (2): the folding level realizing a stage count.
pub fn folding_level_for_stages(depth_max: u32, stages: u32) -> u32 {
    depth_max.div_ceil(stages.max(1)).max(1)
}

/// Eq. (3): the minimum folding level permitted by the NRAM set count
/// when planes share resources.
pub fn min_level_shared(depth_max: u32, num_planes: u32, num_reconf: u32) -> u32 {
    if num_reconf == u32::MAX {
        1
    } else {
        (depth_max * num_planes).div_ceil(num_reconf).max(1)
    }
}

/// Eq. (4): the folding level for pipelined circuits whose planes cannot
/// share resources, sized so the whole circuit fits `available_le`.
pub fn folding_level_per_plane(depth_max: u32, available_le: u32, total_luts: usize) -> u32 {
    ((u64::from(depth_max) * u64::from(available_le)) / (total_luts as u64).max(1)).max(1) as u32
}

/// Enumerates the distinct candidate folding configurations of a circuit,
/// best-delay first: no-folding, then level-`p` configurations for every
/// distinct stage count, preferring plane sharing and falling back to
/// per-plane folding when the NRAM limit demands it.
pub fn candidate_configs(planes: &PlaneSet, num_reconf: u32) -> Vec<FoldingConfig> {
    let depth_max = planes.depth_max().max(1);
    let num_planes = planes.num_planes() as u32;
    let mut out = vec![FoldingConfig::no_folding()];
    let mut seen_levels = std::collections::HashSet::new();
    for stages in 1..=depth_max {
        let level = folding_level_for_stages(depth_max, stages);
        if !seen_levels.insert(level) {
            continue;
        }
        let stages = depth_max.div_ceil(level); // canonical stage count
        let shared_ok = num_reconf == u32::MAX || num_planes * stages <= num_reconf;
        let per_plane_ok = num_reconf == u32::MAX || stages <= num_reconf;
        if shared_ok {
            out.push(FoldingConfig {
                level: Some(level),
                stages,
                sharing: PlaneSharing::Shared,
            });
        } else if per_plane_ok && num_planes > 1 {
            out.push(FoldingConfig {
                level: Some(level),
                stages,
                sharing: PlaneSharing::PerPlane,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The motivational example (Section 3): 50 LUTs, 32 available LEs,
    /// depth 9 → 2 stages, level 5.
    #[test]
    fn motivational_example_initial_level() {
        let stages = min_folding_stages(50, 32);
        assert_eq!(stages, 2);
        assert_eq!(folding_level_for_stages(9, stages), 5);
    }

    /// After the level-5 attempt fails (cluster of 34 > 32), level 4 gives
    /// 3 stages.
    #[test]
    fn motivational_example_refined_level() {
        assert_eq!(9u32.div_ceil(4), 3);
    }

    #[test]
    fn eq3_min_level() {
        // ex1 with k = 16: depth 24, 1 plane -> min level 2.
        assert_eq!(min_level_shared(24, 1, 16), 2);
        // Unbounded k -> level 1 allowed.
        assert_eq!(min_level_shared(24, 1, u32::MAX), 1);
        // ex2 shared: depth 22, 3 planes, k = 16 -> level 5.
        assert_eq!(min_level_shared(22, 3, 16), 5);
    }

    #[test]
    fn eq4_per_plane_level() {
        // depth 24, 600 LEs available, 2240 total LUTs.
        assert_eq!(folding_level_per_plane(24, 600, 2240), 6);
    }

    #[test]
    fn nram_sets_accounting() {
        let shared = FoldingConfig {
            level: Some(2),
            stages: 11,
            sharing: PlaneSharing::Shared,
        };
        assert_eq!(shared.nram_sets(3), 33);
        let per_plane = FoldingConfig {
            level: Some(2),
            stages: 11,
            sharing: PlaneSharing::PerPlane,
        };
        assert_eq!(per_plane.nram_sets(3), 11);
        assert_eq!(FoldingConfig::no_folding().nram_sets(3), 1);
    }

    #[test]
    fn candidates_respect_nram_limit() {
        // Build a 3-plane, depth-22 PlaneSet surrogate via a real network.
        use nanomap_netlist::{LutNetwork, SignalRef, TruthTable};
        let mut net = LutNetwork::new("pipe");
        let mut sig = net.add_input("a");
        for _ in 0..3 {
            for _ in 0..22 {
                sig = net.add_lut(TruthTable::buffer(), vec![sig]);
            }
            let ff = net.add_ff(sig, None);
            sig = SignalRef::Ff(ff);
        }
        let l = net.add_lut(TruthTable::buffer(), vec![sig]);
        net.add_output("y", l);
        // This network has 3 register levels and trailing PO logic; depth
        // max is 22 per plane.
        let planes = nanomap_netlist::PlaneSet::extract(&net).unwrap();
        assert!(planes.num_planes() >= 3);
        let candidates = candidate_configs(&planes, 16);
        for c in &candidates {
            assert!(c.nram_sets(planes.num_planes() as u32) <= 16 || c.level.is_none());
        }
        // Level-1 shared would need 3*22 = 66 sets: must not be offered as
        // Shared under k = 16.
        assert!(!candidates
            .iter()
            .any(|c| c.level == Some(1) && c.sharing == PlaneSharing::Shared));
        // But per-plane level-2 (11 stages) fits 16 sets.
        assert!(candidates
            .iter()
            .any(|c| c.level == Some(2) && c.sharing == PlaneSharing::PerPlane));
    }

    #[test]
    fn candidates_unbounded_include_level1_shared() {
        use nanomap_netlist::{LutNetwork, TruthTable};
        let mut net = LutNetwork::new("c");
        let mut sig = net.add_input("a");
        for _ in 0..8 {
            sig = net.add_lut(TruthTable::buffer(), vec![sig]);
        }
        net.add_output("y", sig);
        let planes = nanomap_netlist::PlaneSet::extract(&net).unwrap();
        let candidates = candidate_configs(&planes, u32::MAX);
        assert_eq!(candidates[0], FoldingConfig::no_folding());
        assert!(candidates
            .iter()
            .any(|c| c.level == Some(1) && c.sharing == PlaneSharing::Shared));
        // Distinct levels only.
        let mut levels: Vec<_> = candidates.iter().filter_map(|c| c.level).collect();
        let n = levels.len();
        levels.dedup();
        assert_eq!(levels.len(), n);
    }
}
