//! The `nanomapd-v1` wire protocol and the retrying client.
//!
//! `nanomapd` (the `crates/daemon` server) speaks line-delimited JSON
//! over TCP or a unix socket: one request line in, a short stream of
//! lifecycle lines out, terminated by exactly one `result` line. This
//! module owns everything both sides must agree on — request/response
//! shapes, parsing, rendering — plus the [`submit_with_retry`] client
//! used by `nanomap submit` (jittered exponential backoff, idempotent
//! by construction because the daemon keys its cache on the netlist
//! fingerprint + objective + seeds, not on the request id).
//!
//! ## Request
//!
//! ```json
//! {"schema":"nanomapd-v1","op":"map","id":"r1",
//!  "design_path":"designs/accumulator.vhd","objective":"at",
//!  "time_budget_ms":2000}
//! ```
//!
//! Designs arrive by path (`design_path`, resolved by the server) or
//! inline (`design_text` + `format`). `op` is `map`, `ping` or `stats`.
//!
//! ## Response stream
//!
//! ```json
//! {"schema":"nanomapd-v1","event":"queued","request":"r1","depth":2}
//! {"schema":"nanomapd-v1","event":"started","request":"r1"}
//! {"schema":"nanomapd-v1","event":"result","request":"r1","status":"ok",
//!  "cache":"miss","run_id":"8d3…","report":{…}}
//! ```
//!
//! `preempted`/`resumed` lines appear when the daemon time-slices the
//! request through its checkpoint machinery. Rejections are `result`
//! lines with `"status":"error"` and a typed `code` —
//! [`code::SHED`]/[`code::SHUTDOWN`] are retryable (429-style, with a
//! `retry_after_ms` hint), everything else is permanent.
//!
//! The `report` field is always the **last** field of an `ok` result
//! line and is spliced verbatim from the daemon's cache, so a repeat
//! submission returns a byte-identical report ([`extract_report_text`]).

use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

use nanomap_observe::rng::XorShift64Star;
use nanomap_observe::{json, JsonValue};

use crate::artifact::versions;
use crate::objective::Objective;

/// Schema tag on every request and response line.
pub const SERVICE_SCHEMA: &str = versions::SERVICE;

/// Typed rejection codes carried in `"status":"error"` result lines.
pub mod code {
    /// Admission control shed the request (queue full, or no
    /// `time_budget_ms` while the queue is deep). Retryable.
    pub const SHED: &str = "shed";
    /// The daemon is draining for shutdown. Retryable (elsewhere).
    pub const SHUTDOWN: &str = "shutdown";
    /// Malformed request, unreadable design, or netlist errors.
    pub const INVALID: &str = "invalid";
    /// The worker panicked on this request; the daemon survived.
    pub const PANIC: &str = "panic";
    /// The per-request budget expired (strict mode).
    pub const BUDGET: &str = "budget";
    /// The flow failed (no feasible folding, routing failure, …).
    pub const FAILED: &str = "failed";
}

/// How a design reaches the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignSource {
    /// A path the *server* resolves (daemon and client share a filesystem).
    Path(String),
    /// Inline design text.
    Text {
        /// `"vhdl"` or `"blif"`.
        format: String,
        /// The design source itself.
        text: String,
    },
}

/// A `map` request as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRequest {
    /// Client-chosen id echoed on every response line.
    pub id: String,
    /// Where the design comes from.
    pub source: DesignSource,
    /// Objective goal: `at`, `delay` or `area`.
    pub objective: String,
    /// LE budget for `delay` (constraint) — `feasible` is not exposed.
    pub max_les: Option<u32>,
    /// Delay budget in ns for `area`.
    pub max_delay_ns: Option<f64>,
    /// Per-request wall-clock budget. Required by admission control
    /// once the queue is deeper than the daemon's free-admission line.
    pub time_budget_ms: Option<u64>,
    /// Client-propagated trace id. When absent the daemon assigns one
    /// and echoes it on every lifecycle and result line, so shed
    /// requests stay attributable across backoff retries.
    pub trace_id: Option<String>,
}

impl MapRequest {
    /// A request for a design file path with defaults everywhere else.
    pub fn for_path(id: impl Into<String>, path: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            source: DesignSource::Path(path.into()),
            objective: "at".into(),
            max_les: None,
            max_delay_ns: None,
            time_budget_ms: None,
            trace_id: None,
        }
    }

    /// Resolves the objective fields into the flow's typed objective.
    ///
    /// # Errors
    ///
    /// Describes an unknown goal string.
    pub fn to_objective(&self) -> Result<Objective, String> {
        match self.objective.as_str() {
            "at" | "" => Ok(Objective::MinAreaDelayProduct),
            "delay" => Ok(Objective::MinDelay {
                max_les: self.max_les,
            }),
            "area" => Ok(Objective::MinArea {
                max_delay_ns: self.max_delay_ns,
            }),
            other => Err(format!("unknown objective {other:?} (use at|delay|area)")),
        }
    }

    /// Renders the request as one wire line (no trailing newline).
    pub fn to_wire(&self) -> String {
        let mut value = JsonValue::object()
            .with("schema", SERVICE_SCHEMA)
            .with("op", "map")
            .with("id", self.id.as_str());
        match &self.source {
            DesignSource::Path(p) => value = value.with("design_path", p.as_str()),
            DesignSource::Text { format, text } => {
                value = value
                    .with("format", format.as_str())
                    .with("design_text", text.as_str());
            }
        }
        value = value.with("objective", self.objective.as_str());
        if let Some(a) = self.max_les {
            value = value.with("max_les", u64::from(a));
        }
        if let Some(d) = self.max_delay_ns {
            value = value.with("max_delay_ns", d);
        }
        if let Some(b) = self.time_budget_ms {
            value = value.with("time_budget_ms", b);
        }
        if let Some(t) = &self.trace_id {
            value = value.with("trace_id", t.as_str());
        }
        value.to_compact_string()
    }
}

/// Any request line the daemon accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Map a design.
    Map(MapRequest),
    /// Liveness + health probe (uptime, version, drain state).
    Ping,
    /// Full telemetry snapshot (`nanomapd-stats-v1` document).
    Stats,
    /// Ask the daemon to begin a graceful drain (same path as SIGTERM).
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Describes the first structural problem (bad JSON, wrong schema,
    /// missing fields) — the daemon answers these with [`code::INVALID`].
    pub fn parse(line: &str) -> Result<Self, String> {
        let value = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let schema = value.get("schema").and_then(JsonValue::as_str);
        if schema != Some(SERVICE_SCHEMA) {
            return Err(format!(
                "schema mismatch: expected {SERVICE_SCHEMA:?}, got {schema:?}"
            ));
        }
        match value.get("op").and_then(JsonValue::as_str) {
            Some("ping") => Ok(Self::Ping),
            Some("stats") => Ok(Self::Stats),
            Some("shutdown") => Ok(Self::Shutdown),
            Some("map") => {
                let text = |key: &str| {
                    value
                        .get(key)
                        .and_then(JsonValue::as_str)
                        .map(str::to_string)
                };
                let uint = |key: &str| {
                    value
                        .get(key)
                        .and_then(JsonValue::as_int)
                        .filter(|&v| v >= 0)
                        .map(|v| v as u64)
                };
                let source = match (text("design_path"), text("design_text")) {
                    (Some(p), None) => DesignSource::Path(p),
                    (None, Some(t)) => DesignSource::Text {
                        format: text("format").unwrap_or_else(|| "vhdl".into()),
                        text: t,
                    },
                    (Some(_), Some(_)) => {
                        return Err("design_path and design_text are mutually exclusive".into())
                    }
                    (None, None) => return Err("missing design_path or design_text".into()),
                };
                Ok(Self::Map(MapRequest {
                    id: text("id").unwrap_or_else(|| "anon".into()),
                    source,
                    objective: text("objective").unwrap_or_else(|| "at".into()),
                    max_les: uint("max_les").map(|v| v as u32),
                    max_delay_ns: value.get("max_delay_ns").and_then(JsonValue::as_f64),
                    time_budget_ms: uint("time_budget_ms"),
                    trace_id: text("trace_id"),
                }))
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// One parsed response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Admitted; position in the queue.
    Queued {
        /// Queue depth at admission.
        depth: u64,
    },
    /// A worker picked the request up.
    Started,
    /// The daemon time-sliced the request out; a checkpoint holds its
    /// progress.
    Preempted,
    /// A worker resumed the request from its checkpoint.
    Resumed,
    /// The terminal line (exactly one per request).
    Result(WireResult),
    /// Answer to `ping` — a health check load balancers can act on.
    Pong {
        /// Requests currently mapping.
        inflight: u64,
        /// Requests waiting in the admission queue.
        queued: u64,
        /// Results served since startup (cache hits included).
        served: u64,
        /// Milliseconds since the daemon started.
        uptime_ms: u64,
        /// Protocol version string ([`crate::artifact::versions::SERVICE`]).
        version: String,
        /// True once a graceful drain began: alive but not admitting.
        draining: bool,
        /// Age of the last persisted stats snapshot; `None` when the
        /// ticker has not written one yet (or is disabled).
        snapshot_age_ms: Option<u64>,
    },
    /// Answer to `stats`: the inner `nanomapd-stats-v1` document.
    Stats(JsonValue),
}

/// The terminal `result` line, pre-parse of the verbatim report text.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Echo of the request id.
    pub request: String,
    /// `true` for `"status":"ok"`.
    pub ok: bool,
    /// `hit`, `miss` or absent (errors).
    pub cache: Option<String>,
    /// Flight-recorder id of the serving run.
    pub run_id: Option<String>,
    /// Verbatim report JSON (ok results only), byte-identical across
    /// cache hits of the same request.
    pub report_text: Option<String>,
    /// Typed error code (error results only; see [`code`]).
    pub code: Option<String>,
    /// Backoff hint for retryable rejections.
    pub retry_after_ms: Option<u64>,
    /// Server-echoed trace id (assigned by the daemon when the client
    /// did not propagate one). Present on every daemon-rendered result,
    /// including sheds, so rejected work stays attributable.
    pub trace_id: Option<String>,
    /// Human-readable diagnosis.
    pub detail: Option<String>,
}

impl WireResult {
    /// True when the client should back off and retry.
    #[must_use]
    pub fn retryable(&self) -> bool {
        matches!(self.code.as_deref(), Some(code::SHED | code::SHUTDOWN))
    }
}

impl Response {
    /// Parses one response line. `result` lines keep the report text
    /// verbatim (see [`extract_report_text`]).
    ///
    /// # Errors
    ///
    /// Describes the first structural problem.
    pub fn parse(line: &str) -> Result<Self, String> {
        let value = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        if value.get("schema").and_then(JsonValue::as_str) != Some(SERVICE_SCHEMA) {
            return Err("schema mismatch".into());
        }
        let uint = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_int)
                .filter(|&v| v >= 0)
                .map(|v| v as u64)
        };
        let text = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
        };
        match value.get("event").and_then(JsonValue::as_str) {
            Some("queued") => Ok(Self::Queued {
                depth: uint("depth").unwrap_or(0),
            }),
            Some("started") => Ok(Self::Started),
            Some("preempted") => Ok(Self::Preempted),
            Some("resumed") => Ok(Self::Resumed),
            Some("pong") => Ok(Self::Pong {
                inflight: uint("inflight").unwrap_or(0),
                queued: uint("queued").unwrap_or(0),
                served: uint("served").unwrap_or(0),
                uptime_ms: uint("uptime_ms").unwrap_or(0),
                version: text("version").unwrap_or_default(),
                draining: value
                    .get("draining")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
                snapshot_age_ms: uint("snapshot_age_ms"),
            }),
            Some("stats") => value
                .get("stats")
                .cloned()
                .map(Self::Stats)
                .ok_or_else(|| "stats response missing `stats`".into()),
            Some("result") => {
                let ok = value.get("status").and_then(JsonValue::as_str) == Some("ok");
                Ok(Self::Result(WireResult {
                    request: text("request").unwrap_or_default(),
                    ok,
                    cache: text("cache"),
                    run_id: text("run_id"),
                    report_text: ok.then(|| extract_report_text(line)).flatten(),
                    code: text("code"),
                    retry_after_ms: uint("retry_after_ms"),
                    trace_id: text("trace_id"),
                    detail: text("detail"),
                }))
            }
            other => Err(format!("unknown event {other:?}")),
        }
    }
}

/// Renders an `ok` result line. `report_text` must be compact JSON; it
/// is spliced in verbatim as the final field, which is what makes
/// cache-hit responses byte-identical to the original serve. The trace
/// id sits *before* the report so [`extract_report_text`] stays exact.
#[must_use]
pub fn render_ok_result(
    request: &str,
    run_id: &str,
    cache: &str,
    trace: &str,
    report_text: &str,
) -> String {
    format!(
        "{{\"schema\":\"{SERVICE_SCHEMA}\",\"event\":\"result\",\"request\":{},\"status\":\"ok\",\"cache\":\"{cache}\",\"run_id\":\"{run_id}\",\"trace_id\":\"{trace}\",\"report\":{report_text}}}",
        JsonValue::from(request).to_compact_string(),
    )
}

/// Renders an error result line with a typed code.
#[must_use]
pub fn render_error_result(
    request: &str,
    error_code: &str,
    detail: &str,
    retry_after_ms: Option<u64>,
    trace: Option<&str>,
) -> String {
    let mut value = JsonValue::object()
        .with("schema", SERVICE_SCHEMA)
        .with("event", "result")
        .with("request", request)
        .with("status", "error")
        .with("code", error_code);
    if let Some(ms) = retry_after_ms {
        value = value.with("retry_after_ms", ms);
    }
    if let Some(t) = trace {
        value = value.with("trace_id", t);
    }
    value.with("detail", detail).to_compact_string()
}

/// Renders a non-terminal lifecycle line (`queued`/`started`/…).
#[must_use]
pub fn render_lifecycle(
    event: &str,
    request: &str,
    depth: Option<u64>,
    trace: Option<&str>,
) -> String {
    let mut value = JsonValue::object()
        .with("schema", SERVICE_SCHEMA)
        .with("event", event)
        .with("request", request);
    if let Some(d) = depth {
        value = value.with("depth", d);
    }
    if let Some(t) = trace {
        value = value.with("trace_id", t);
    }
    value.to_compact_string()
}

/// Pulls the verbatim `report` object text out of an `ok` result line.
/// The server renders `report` as the final field, so the text is the
/// balanced region between `"report":` and the closing brace.
#[must_use]
pub fn extract_report_text(line: &str) -> Option<String> {
    let marker = "\"report\":";
    let start = line.find(marker)? + marker.len();
    let end = line.trim_end().len().checked_sub(1)?;
    (end > start).then(|| line[start..end].to_string())
}

// ---------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------

/// Retry policy for [`submit_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total connection/submission attempts before giving up.
    pub max_attempts: u32,
    /// First backoff; doubles per attempt (full jitter on top).
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Seed for the jitter PRNG — fixed seed, reproducible schedule.
    pub seed: u64,
    /// Read timeout while waiting for response lines (0 = none).
    pub read_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            seed: 1,
            read_timeout_ms: 120_000,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before attempt `attempt` (0-based retry count).
    fn backoff(&self, attempt: u32, rng: &mut XorShift64Star) -> Duration {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_backoff_ms);
        // Full jitter in [exp/2, exp): desynchronizes a retry stampede
        // without ever collapsing the wait to zero.
        let half = (exp / 2).max(1);
        Duration::from_millis(half + rng.below(half))
    }
}

/// What one successful submission observed.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The terminal result (ok or a permanent rejection).
    pub result: WireResult,
    /// Lifecycle events seen before the result, in order.
    pub lifecycle: Vec<Response>,
    /// 1-based attempt number that produced the result.
    pub attempts: u32,
    /// Retryable rejections absorbed along the way (shed/shutdown),
    /// in order — each carries the server-echoed trace id so shed
    /// attempts remain attributable after the eventual success.
    pub rejections: Vec<WireResult>,
}

/// Connects, submits and waits out one `map` request with jittered
/// exponential backoff across connect failures, torn connections and
/// retryable rejections ([`code::SHED`], [`code::SHUTDOWN`]).
/// Idempotent: the daemon's cache key is derived from the design and
/// objective, so re-submission after an ambiguous failure re-serves the
/// same result rather than recomputing it.
///
/// # Errors
///
/// Describes the last failure once `policy.max_attempts` is exhausted.
/// A *permanent* rejection (invalid request, panic, flow failure) is
/// returned as `Ok` with `result.ok == false` — it carries the typed
/// code and will not change on retry.
pub fn submit_with_retry(
    addr: &str,
    request: &MapRequest,
    policy: &RetryPolicy,
) -> Result<Submission, String> {
    let mut rng = XorShift64Star::new(policy.seed);
    let mut last_failure = String::from("no attempts made");
    let mut rejections = Vec::new();
    for attempt in 0..policy.max_attempts {
        if attempt > 0 {
            std::thread::sleep(policy.backoff(attempt - 1, &mut rng));
        }
        match submit_once(addr, request, policy) {
            Ok((result, lifecycle)) => {
                if result.retryable() {
                    if let Some(hint) = result.retry_after_ms {
                        std::thread::sleep(Duration::from_millis(hint.min(policy.max_backoff_ms)));
                    }
                    last_failure = format!(
                        "rejected ({}): {}",
                        result.code.as_deref().unwrap_or("?"),
                        result.detail.as_deref().unwrap_or("")
                    );
                    rejections.push(result);
                    continue;
                }
                return Ok(Submission {
                    result,
                    lifecycle,
                    attempts: attempt + 1,
                    rejections,
                });
            }
            Err(e) => last_failure = e,
        }
    }
    Err(format!(
        "giving up after {} attempts: {last_failure}",
        policy.max_attempts
    ))
}

/// One connect + submit + read-to-result cycle.
fn submit_once(
    addr: &str,
    request: &MapRequest,
    policy: &RetryPolicy,
) -> Result<(WireResult, Vec<Response>), String> {
    let stream = connect(addr)?;
    if policy.read_timeout_ms > 0 {
        stream
            .set_read_timeout(Some(Duration::from_millis(policy.read_timeout_ms)))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
    }
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut line = request.to_wire();
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut lifecycle = Vec::new();
    loop {
        let mut response_line = String::new();
        let n = reader
            .read_line(&mut response_line)
            .map_err(|e| format!("read from {addr}: {e}"))?;
        if n == 0 {
            return Err(format!("{addr} closed the connection before a result"));
        }
        let response = Response::parse(response_line.trim_end())?;
        match response {
            Response::Result(result) => return Ok((result, lifecycle)),
            other => lifecycle.push(other),
        }
    }
}

/// Connects and performs one single-line op exchange (`ping`/`stats`):
/// send the request line, read exactly one response line.
fn query_once(addr: &str, request_line: &str, timeout_ms: u64) -> Result<Response, String> {
    let stream = connect(addr)?;
    if timeout_ms > 0 {
        stream
            .set_read_timeout(Some(Duration::from_millis(timeout_ms)))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
    }
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writer
        .write_all(format!("{request_line}\n").as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    if n == 0 {
        return Err(format!("{addr} closed the connection before a response"));
    }
    Response::parse(line.trim_end())
}

/// Fetches one `nanomapd-stats-v1` snapshot via the `stats` op and
/// returns the inner stats document.
///
/// # Errors
///
/// On connect/read failure or a non-stats response.
pub fn query_stats(addr: &str, timeout_ms: u64) -> Result<JsonValue, String> {
    let request = JsonValue::object()
        .with("schema", SERVICE_SCHEMA)
        .with("op", "stats")
        .to_compact_string();
    match query_once(addr, &request, timeout_ms)? {
        Response::Stats(doc) => Ok(doc),
        other => Err(format!("expected a stats response, got {other:?}")),
    }
}

/// A connected stream: TCP for `host:port`, unix socket for paths.
enum Conn {
    Tcp(std::net::TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Self::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Self::Tcp(s) => Self::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Self::Unix(s) => Self::Unix(s.try_clone()?),
        })
    }
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Self::Unix(s) => s.flush(),
        }
    }
}

/// Addresses with a `/` are unix-socket paths; everything else is TCP.
fn connect(addr: &str) -> Result<Conn, String> {
    if addr.contains('/') {
        #[cfg(unix)]
        {
            return std::os::unix::net::UnixStream::connect(addr)
                .map(Conn::Unix)
                .map_err(|e| format!("connect {addr}: {e}"));
        }
        #[cfg(not(unix))]
        return Err(format!("unix socket {addr} unsupported on this platform"));
    }
    std::net::TcpStream::connect(addr)
        .map(Conn::Tcp)
        .map_err(|e| format!("connect {addr}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_request_round_trips_on_the_wire() {
        let request = MapRequest {
            id: "r1".into(),
            source: DesignSource::Path("designs/accumulator.vhd".into()),
            objective: "delay".into(),
            max_les: Some(64),
            max_delay_ns: None,
            time_budget_ms: Some(2_000),
            trace_id: Some("feedface01020304".into()),
        };
        let line = request.to_wire();
        match Request::parse(&line).unwrap() {
            Request::Map(back) => assert_eq!(back, request),
            other => panic!("{other:?}"),
        }
        // Inline text variant too.
        let inline = MapRequest {
            source: DesignSource::Text {
                format: "blif".into(),
                text: ".model x\n.end\n".into(),
            },
            ..request
        };
        match Request::parse(&inline.to_wire()).unwrap() {
            Request::Map(back) => assert_eq!(back, inline),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn objectives_resolve_and_reject() {
        let mut request = MapRequest::for_path("r", "d.vhd");
        assert_eq!(
            request.to_objective().unwrap(),
            Objective::MinAreaDelayProduct
        );
        request.objective = "delay".into();
        request.max_les = Some(10);
        assert_eq!(
            request.to_objective().unwrap(),
            Objective::MinDelay { max_les: Some(10) }
        );
        request.objective = "bogus".into();
        assert!(request.to_objective().is_err());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"schema\":\"other-v1\",\"op\":\"ping\"}").is_err());
        let no_design = format!("{{\"schema\":\"{SERVICE_SCHEMA}\",\"op\":\"map\"}}");
        assert!(Request::parse(&no_design).unwrap_err().contains("design"));
        let both = format!(
            "{{\"schema\":\"{SERVICE_SCHEMA}\",\"op\":\"map\",\"design_path\":\"a\",\"design_text\":\"b\"}}"
        );
        assert!(Request::parse(&both).is_err());
    }

    #[test]
    fn ok_result_lines_carry_the_report_verbatim() {
        let report = "{\"circuit\":\"acc\",\"delay_ns\":17.02}";
        let line = render_ok_result("r1", "deadbeef00000000", "hit", "feedface01020304", report);
        match Response::parse(&line).unwrap() {
            Response::Result(result) => {
                assert!(result.ok);
                assert_eq!(result.cache.as_deref(), Some("hit"));
                assert_eq!(result.run_id.as_deref(), Some("deadbeef00000000"));
                assert_eq!(result.trace_id.as_deref(), Some("feedface01020304"));
                assert_eq!(result.report_text.as_deref(), Some(report));
                assert!(!result.retryable());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shed_results_are_retryable_with_hint() {
        let line = render_error_result(
            "r1",
            code::SHED,
            "queue full (16)",
            Some(120),
            Some("aa55aa5500000000"),
        );
        match Response::parse(&line).unwrap() {
            Response::Result(result) => {
                assert!(!result.ok);
                assert!(result.retryable());
                assert_eq!(result.retry_after_ms, Some(120));
                assert_eq!(result.code.as_deref(), Some(code::SHED));
                assert_eq!(result.trace_id.as_deref(), Some("aa55aa5500000000"));
            }
            other => panic!("{other:?}"),
        }
        let permanent = render_error_result("r1", code::PANIC, "worker panicked", None, None);
        match Response::parse(&permanent).unwrap() {
            Response::Result(result) => assert!(!result.retryable()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lifecycle_lines_round_trip() {
        assert_eq!(
            Response::parse(&render_lifecycle("queued", "r1", Some(3), Some("ab"))).unwrap(),
            Response::Queued { depth: 3 }
        );
        assert_eq!(
            Response::parse(&render_lifecycle("preempted", "r1", None, None)).unwrap(),
            Response::Preempted
        );
    }

    #[test]
    fn stats_op_and_response_round_trip() {
        assert_eq!(
            Request::parse(&format!(
                "{{\"schema\":\"{SERVICE_SCHEMA}\",\"op\":\"stats\"}}"
            ))
            .unwrap(),
            Request::Stats
        );
        let line = format!(
            "{{\"schema\":\"{SERVICE_SCHEMA}\",\"event\":\"stats\",\"stats\":{{\"schema\":\"nanomapd-stats-v1\",\"uptime_ms\":12}}}}"
        );
        match Response::parse(&line).unwrap() {
            Response::Stats(doc) => {
                assert_eq!(
                    doc.get("schema").and_then(JsonValue::as_str),
                    Some("nanomapd-stats-v1")
                );
                assert_eq!(doc.get("uptime_ms").and_then(JsonValue::as_int), Some(12));
            }
            other => panic!("{other:?}"),
        }
        let missing = format!("{{\"schema\":\"{SERVICE_SCHEMA}\",\"event\":\"stats\"}}");
        assert!(Response::parse(&missing).is_err());
    }

    #[test]
    fn pong_health_fields_round_trip() {
        let line = format!(
            "{{\"schema\":\"{SERVICE_SCHEMA}\",\"event\":\"pong\",\"inflight\":1,\"queued\":2,\"served\":3,\"uptime_ms\":4500,\"version\":\"nanomapd-v1\",\"draining\":true,\"snapshot_age_ms\":90}}"
        );
        match Response::parse(&line).unwrap() {
            Response::Pong {
                inflight,
                queued,
                served,
                uptime_ms,
                version,
                draining,
                snapshot_age_ms,
            } => {
                assert_eq!((inflight, queued, served), (1, 2, 3));
                assert_eq!(uptime_ms, 4_500);
                assert_eq!(version, "nanomapd-v1");
                assert!(draining);
                assert_eq!(snapshot_age_ms, Some(90));
            }
            other => panic!("{other:?}"),
        }
        // Legacy pongs without health fields still parse.
        let legacy = format!(
            "{{\"schema\":\"{SERVICE_SCHEMA}\",\"event\":\"pong\",\"inflight\":0,\"queued\":0,\"served\":7}}"
        );
        match Response::parse(&legacy).unwrap() {
            Response::Pong {
                served,
                draining,
                snapshot_age_ms,
                ..
            } => {
                assert_eq!(served, 7);
                assert!(!draining);
                assert_eq!(snapshot_age_ms, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let policy = RetryPolicy::default();
        let schedule = |seed: u64| {
            let mut rng = XorShift64Star::new(seed);
            (0..6)
                .map(|a| policy.backoff(a, &mut rng).as_millis() as u64)
                .collect::<Vec<_>>()
        };
        let a = schedule(7);
        assert_eq!(a, schedule(7), "fixed seed, fixed schedule");
        for (attempt, &ms) in a.iter().enumerate() {
            let cap = policy
                .base_backoff_ms
                .saturating_mul(1 << attempt)
                .min(policy.max_backoff_ms);
            assert!(ms >= cap / 2 && ms < cap.max(2), "attempt {attempt}: {ms}");
        }
    }

    #[test]
    fn connect_refused_is_an_error_not_a_panic() {
        // Port 1 is essentially never listening; the client must fail
        // with a description, not unwind.
        let err = submit_once(
            "127.0.0.1:1",
            &MapRequest::for_path("r", "d.vhd"),
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(err.contains("connect"), "{err}");
    }
}
