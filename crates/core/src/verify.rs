//! Folded-execution equivalence checking.
//!
//! Executes the temporally folded machine — slice by slice, reading
//! stored values and architectural flip-flops, deferring register updates
//! to the end of the macro cycle — and compares its outputs against the
//! reference [`LutSimulator`] cycle by cycle. A passing run certifies that
//! the schedule and storage assignment preserve the circuit function: a
//! consumer scheduled before its producer, or a missing storage slot,
//! surfaces immediately.

use std::collections::HashMap;

use nanomap_netlist::{LutId, LutSimulator, SignalRef};
use nanomap_pack::TemporalDesign;

/// Result of a folded-execution equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedCheck {
    /// Macro cycles executed.
    pub cycles: usize,
    /// First divergence, if any.
    pub failure: Option<String>,
}

impl FoldedCheck {
    /// `true` when no divergence was observed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs the folded machine against the reference simulator for `cycles`
/// macro cycles with pseudo-random inputs.
///
/// # Panics
///
/// Panics if the design's network fails validation (callers run validated
/// networks).
pub fn check_folded_execution(
    design: &TemporalDesign<'_>,
    cycles: usize,
    seed: u64,
) -> FoldedCheck {
    let net = design.net;
    let mut reference = LutSimulator::new(net).expect("validated network");
    let mut rng = nanomap_observe::rng::XorShift64Star::new(seed);

    // Folded machine state.
    let mut ff_state = vec![false; net.num_ffs()];
    // Topological order restricted per slice.
    let topo = net.topo_order().expect("validated network");
    let slices = design.slices();

    for cycle in 0..cycles {
        // Draw one input vector.
        let inputs: Vec<bool> = (0..net.num_inputs()).map(|_| rng.next_bool()).collect();

        // --- Folded execution of one macro cycle. ---
        let mut lut_value: HashMap<LutId, bool> = HashMap::new();
        let mut stored: HashMap<LutId, bool> = HashMap::new();
        for &slice in &slices {
            for &id in &topo {
                if design.slice_of(id) != slice {
                    continue;
                }
                let lut = net.lut(id);
                let mut bits = Vec::with_capacity(lut.inputs.len());
                for &input in &lut.inputs {
                    let v = match input {
                        SignalRef::Input(i) => inputs[i.index()],
                        SignalRef::Const(c) => c,
                        SignalRef::Ff(f) => ff_state[f.index()],
                        SignalRef::Lut(u) => {
                            let u_slice = design.slice_of(u);
                            if u_slice == slice {
                                match lut_value.get(&u) {
                                    Some(&v) => v,
                                    None => {
                                        return FoldedCheck {
                                            cycles: cycle,
                                            failure: Some(format!(
                                                "cycle {cycle}: {id} reads same-slice {u} before it executed"
                                            )),
                                        }
                                    }
                                }
                            } else {
                                match stored.get(&u) {
                                    Some(&v) => v,
                                    None => {
                                        return FoldedCheck {
                                            cycles: cycle,
                                            failure: Some(format!(
                                                "cycle {cycle}: {id} in {slice:?} reads {u} from {u_slice:?} with no stored value"
                                            )),
                                        }
                                    }
                                }
                            }
                        }
                    };
                    bits.push(v);
                }
                let value = lut.truth.eval(&bits);
                lut_value.insert(id, value);
                stored.insert(id, value);
            }
        }
        // Macro-cycle end: latch architectural flip-flops.
        let mut next_ff = ff_state.clone();
        for (fid, ff) in net.ffs() {
            next_ff[fid.index()] = match ff.d {
                SignalRef::Input(i) => inputs[i.index()],
                SignalRef::Const(c) => c,
                SignalRef::Ff(g) => ff_state[g.index()],
                SignalRef::Lut(u) => match lut_value.get(&u) {
                    Some(&v) => v,
                    None => {
                        return FoldedCheck {
                            cycles: cycle,
                            failure: Some(format!(
                                "cycle {cycle}: flip-flop {fid} driven by unexecuted {u}"
                            )),
                        }
                    }
                },
            };
        }
        // Folded primary outputs.
        let folded_outputs: Vec<bool> = net
            .outputs()
            .iter()
            .map(|&(_, sig)| match sig {
                SignalRef::Input(i) => inputs[i.index()],
                SignalRef::Const(c) => c,
                SignalRef::Ff(f) => ff_state[f.index()],
                SignalRef::Lut(u) => lut_value[&u],
            })
            .collect();

        // --- Reference execution. ---
        reference.set_inputs(&inputs);
        reference.eval_comb();
        let expected = reference.outputs();
        if folded_outputs != expected {
            let which = expected
                .iter()
                .zip(&folded_outputs)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return FoldedCheck {
                cycles: cycle,
                failure: Some(format!(
                    "cycle {cycle}: output {} ({}) diverged",
                    which,
                    net.outputs()[which].0
                )),
            };
        }
        reference.step();
        ff_state = next_ff;
        // Cross-check register state.
        if ff_state != reference.ff_state() {
            return FoldedCheck {
                cycles: cycle,
                failure: Some(format!("cycle {cycle}: flip-flop state diverged")),
            };
        }
    }
    FoldedCheck {
        cycles,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_netlist::PlaneSet;
    use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph, Schedule};
    use nanomap_techmap::{expand, ExpandOptions};

    fn counter_net() -> nanomap_netlist::LutNetwork {
        let mut b = RtlBuilder::new("counter");
        let acc = b.register("acc", 6);
        let one = b.constant("one", 6, 1);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 6 });
        b.connect(acc, 0, add, 0).unwrap();
        b.connect(one, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        b.connect(add, 0, acc, 0).unwrap();
        let y = b.output("y", 6);
        b.connect(acc, 0, y, 0).unwrap();
        expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap()
    }

    #[test]
    fn valid_schedule_passes() {
        let net = counter_net();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane0 = planes.planes()[0].clone();
        for p in [1u32, 2, 3, 6] {
            let stages = plane0.depth.div_ceil(p);
            let graph = ItemGraph::build(&net, &plane0, p).unwrap();
            let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default()).unwrap();
            let design = TemporalDesign::new(&net, &planes, vec![graph], vec![schedule]).unwrap();
            let check = check_folded_execution(&design, 70, 3);
            assert!(check.passed(), "p={p}: {:?}", check.failure);
        }
    }

    #[test]
    fn corrupted_schedule_fails() {
        let net = counter_net();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane0 = planes.planes()[0].clone();
        let graph = ItemGraph::build(&net, &plane0, 1).unwrap();
        let stages = plane0.depth;
        let good = schedule_fds(&net, &graph, stages, FdsOptions::default()).unwrap();
        // Swap two stages to violate a dependency.
        let mut bad = good.stage_of.clone();
        if let (Some(a), Some(b)) = (
            bad.iter().position(|&s| s == 0),
            bad.iter().position(|&s| s + 1 == stages),
        ) {
            bad.swap(a, b);
        }
        let bad = Schedule::new(bad, stages);
        // TemporalDesign validation may already reject; bypass by checking
        // validation result first.
        match TemporalDesign::new(&net, &planes, vec![graph], vec![bad]) {
            Err(_) => {} // rejected upstream: also a pass for this test
            Ok(design) => {
                let check = check_folded_execution(&design, 50, 3);
                assert!(!check.passed());
            }
        }
    }
}
