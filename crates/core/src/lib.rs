//! # NanoMap
//!
//! An integrated design optimization flow for **NATURE**, the hybrid
//! carbon-nanotube/CMOS dynamically reconfigurable architecture — a
//! from-scratch reproduction of *NanoMap: An Integrated Design
//! Optimization Flow for a Hybrid Nanotube/CMOS Dynamically
//! Reconfigurable Architecture* (Zhang, Shang, Jha — DAC 2007).
//!
//! NATURE stores multiple configurations in on-chip nanotube RAM and
//! reconfigures every clock cycle, enabling **temporal logic folding**: a
//! circuit is cut into folding stages that execute on the same LUTs in
//! successive cycles, trading a modest delay increase for an
//! order-of-magnitude logic-density gain. NanoMap automates the whole
//! journey: plane identification, folding-level selection (Eqs. 1–4),
//! force-directed scheduling (Eqs. 5–14, Algorithm 1), temporal
//! clustering, two-step placement, PathFinder routing and per-cycle
//! configuration bitmaps.
//!
//! ## Quickstart
//!
//! ```
//! use nanomap::{NanoMap, Objective};
//! use nanomap_arch::ArchParams;
//! use nanomap_netlist::rtl::{CombOp, RtlBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Describe a circuit (or parse VHDL / BLIF).
//! let mut b = RtlBuilder::new("mac");
//! let a = b.input("a", 4);
//! let x = b.input("x", 4);
//! let mul = b.comb("mul", CombOp::Mul { width: 4 });
//! b.connect(a, 0, mul, 0)?;
//! b.connect(x, 0, mul, 1)?;
//! let y = b.output("y", 8);
//! b.connect(mul, 0, y, 0)?;
//! let circuit = b.finish()?;
//!
//! // 2. Map it onto the paper's NATURE instance.
//! let flow = NanoMap::new(ArchParams::paper_unbounded());
//! let report = flow.map_rtl(&circuit, Objective::MinAreaDelayProduct)?;
//! println!("{}", report.summary());
//! assert!(report.num_les < report.num_luts);
//! # Ok(())
//! # }
//! ```
//!
//! The substrates live in sibling crates re-exported here:
//! [`nanomap_netlist`] (IRs and parsers), [`nanomap_techmap`] (FlowMap),
//! [`nanomap_arch`] (the NATURE model), [`nanomap_sched`] (FDS),
//! [`nanomap_pack`], [`nanomap_place`], [`nanomap_route`].

#![warn(missing_docs)]

pub mod artifact;
pub mod budget;
pub mod checkpoint;
pub mod diff;
mod error;
pub mod exact;
pub mod explain;
mod flow;
mod folding;
mod objective;
pub mod perf;
pub mod qor;
pub mod recovery;
mod report;
pub mod runs;
pub mod service;
mod verify;

pub use artifact::{atomic_write, atomic_write_text, ArtifactError};
pub use budget::{Anytime, CancelToken, Degradation};
pub use checkpoint::{
    checkpoint_file_name, netlist_fingerprint, Checkpoint, CheckpointError, CheckpointPhase,
    CheckpointWriter, CHECKPOINT_SCHEMA,
};
pub use diff::{has_regression, render_diff_table, DiffEntry, DiffStatus};
pub use error::FlowError;
pub use exact::ExactUnsatSummary;
pub use explain::{check_artifact, ExplainReport, DEFAULT_TOP_K, EXPLAIN_SCHEMA};
pub use flow::NanoMap;
pub use folding::{
    candidate_configs, folding_level_for_stages, folding_level_per_plane, min_folding_stages,
    min_level_shared, FoldingConfig, PlaneSharing,
};
pub use objective::Objective;
pub use perf::{diff_perf, PerfDocument, PerfReport, PERF_SCHEMA};
pub use qor::{QorDocument, QorReport};
pub use recovery::{RecoveryAttempt, RecoveryLog, Remedy};
pub use report::{MappingReport, PhaseTimes, PhysicalReport, SharingMode, UsageReport};
pub use runs::{append_run, Ledger, RunRecord, DEFAULT_LEDGER_PATH};
pub use service::{
    query_stats, submit_with_retry, DesignSource, MapRequest, Request, Response, RetryPolicy,
    Submission, WireResult, SERVICE_SCHEMA,
};
pub use verify::{check_folded_execution, FoldedCheck};

pub use nanomap_arch as arch;
pub use nanomap_netlist as netlist;
pub use nanomap_pack as pack;
pub use nanomap_place as place;
pub use nanomap_route as route;
pub use nanomap_sched as sched;
pub use nanomap_techmap as techmap;
