//! Deadline-aware anytime mapping: budgets and cooperative cancellation.
//!
//! The substrate lives in `nanomap-observe` (the one crate every leaf
//! already depends on), so the scheduler, placer and router can poll the
//! token without new dependency edges; this module re-exports it as part
//! of the flow-facing API and documents the flow-level semantics.
//!
//! A [`CancelToken`] carries an optional wall-clock deadline and a
//! cooperative cancellation flag. The flow threads one token through all
//! phases; the FDS rounds loop, the annealing temperature loop and the
//! PathFinder rip-up loop poll it at iteration boundaries. On expiry a
//! phase returns its typed best-so-far result ([`Anytime::Degraded`]
//! with a [`Degradation`] describing how far it got) instead of an
//! error:
//!
//! * FDS keeps pinned items and drops the rest at their earliest
//!   precedence-feasible stage — a valid, if unbalanced, schedule;
//! * annealing keeps the current placement (legal at every step
//!   boundary);
//! * PathFinder finishes the iteration in flight, so every net has a
//!   routing tree — possibly with unresolved congestion.
//!
//! The flow driver then either accepts the degraded mapping (anytime
//! mode, [`crate::Remedy::AcceptDegraded`]) or fails with
//! [`crate::FlowError::BudgetExhausted`]. A run with no budget uses
//! [`CancelToken::unlimited`], which reads no clock and leaves every
//! artifact byte-identical to the pre-budget flow.

pub use nanomap_observe::{Anytime, CancelToken, Degradation};
