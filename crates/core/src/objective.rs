//! Optimization objectives and constraints (Section 4.1).
//!
//! NanoMap "can be targeted at various optimization objectives and user
//! constraints": circuit delay minimization under an optional area
//! constraint, area minimization under an optional delay constraint, the
//! area-delay-product minimization of Table 1, and pure dual-constraint
//! feasibility (the Paulin row of Table 2).

/// What the flow optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize circuit delay, optionally under an LE budget.
    MinDelay {
        /// Maximum number of logic elements, if constrained.
        max_les: Option<u32>,
    },
    /// Minimize area (LE count), optionally under a delay budget.
    MinArea {
        /// Maximum circuit delay in nanoseconds, if constrained.
        max_delay_ns: Option<f64>,
    },
    /// Minimize the area-delay product (Table 1's objective).
    MinAreaDelayProduct,
    /// Find any mapping satisfying both budgets (no preference).
    Feasible {
        /// Maximum number of logic elements.
        max_les: u32,
        /// Maximum circuit delay in nanoseconds.
        max_delay_ns: f64,
    },
}

impl Objective {
    /// Stable serialization of the objective and its budgets, used to
    /// verify that a checkpoint is resumed under the same optimization
    /// target it was written under.
    pub fn key(&self) -> String {
        match *self {
            Self::MinDelay { max_les: None } => "min-delay".into(),
            Self::MinDelay { max_les: Some(a) } => format!("min-delay;les<={a}"),
            Self::MinArea { max_delay_ns: None } => "min-area".into(),
            Self::MinArea {
                max_delay_ns: Some(d),
            } => format!("min-area;delay<={d}"),
            Self::MinAreaDelayProduct => "min-at".into(),
            Self::Feasible {
                max_les,
                max_delay_ns,
            } => format!("feasible;les<={max_les};delay<={max_delay_ns}"),
        }
    }

    /// The LE budget, when one applies.
    pub fn area_constraint(&self) -> Option<u32> {
        match *self {
            Self::MinDelay { max_les } => max_les,
            Self::Feasible { max_les, .. } => Some(max_les),
            _ => None,
        }
    }

    /// The delay budget, when one applies.
    pub fn delay_constraint(&self) -> Option<f64> {
        match *self {
            Self::MinArea { max_delay_ns } => max_delay_ns,
            Self::Feasible { max_delay_ns, .. } => Some(max_delay_ns),
            _ => None,
        }
    }

    /// `true` if a candidate with the given cost satisfies the budgets.
    pub fn admits(&self, les: u32, delay_ns: f64) -> bool {
        self.area_constraint().is_none_or(|a| les <= a)
            && self.delay_constraint().is_none_or(|d| delay_ns <= d + 1e-9)
    }

    /// Compares two feasible candidates; `true` if `(les_a, delay_a)` is
    /// preferred over `(les_b, delay_b)` under this objective.
    pub fn prefers(&self, les_a: u32, delay_a: f64, les_b: u32, delay_b: f64) -> bool {
        match self {
            Self::MinDelay { .. } => (delay_a, les_a) < (delay_b, les_b),
            Self::MinArea { .. } => (les_a, ordered(delay_a)) < (les_b, ordered(delay_b)),
            Self::MinAreaDelayProduct => f64::from(les_a) * delay_a < f64::from(les_b) * delay_b,
            Self::Feasible { .. } => {
                // Any feasible candidate is as good as another; keep the
                // first found (stable) unless strictly dominating.
                les_a <= les_b && delay_a <= delay_b && (les_a, delay_a) != (les_b, delay_b)
            }
        }
    }
}

fn ordered(x: f64) -> u64 {
    // Total-order key for non-negative finite delays.
    (x * 1e6) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        let objectives = [
            Objective::MinDelay { max_les: None },
            Objective::MinDelay { max_les: Some(32) },
            Objective::MinArea { max_delay_ns: None },
            Objective::MinArea {
                max_delay_ns: Some(20.0),
            },
            Objective::MinAreaDelayProduct,
            Objective::Feasible {
                max_les: 210,
                max_delay_ns: 30.0,
            },
        ];
        let keys: Vec<String> = objectives.iter().map(Objective::key).collect();
        assert_eq!(keys[4], "min-at");
        assert_eq!(keys[1], "min-delay;les<=32");
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn constraints_extracted() {
        let o = Objective::MinDelay { max_les: Some(32) };
        assert_eq!(o.area_constraint(), Some(32));
        assert_eq!(o.delay_constraint(), None);
        let f = Objective::Feasible {
            max_les: 210,
            max_delay_ns: 30.0,
        };
        assert_eq!(f.area_constraint(), Some(210));
        assert_eq!(f.delay_constraint(), Some(30.0));
    }

    #[test]
    fn admits_respects_budgets() {
        let o = Objective::Feasible {
            max_les: 100,
            max_delay_ns: 20.0,
        };
        assert!(o.admits(100, 20.0));
        assert!(!o.admits(101, 20.0));
        assert!(!o.admits(100, 20.1));
        assert!(Objective::MinAreaDelayProduct.admits(10_000, 1e9));
    }

    #[test]
    fn preferences_match_objectives() {
        assert!(Objective::MinDelay { max_les: None }.prefers(100, 10.0, 10, 11.0));
        assert!(Objective::MinArea { max_delay_ns: None }.prefers(10, 50.0, 11, 1.0));
        assert!(Objective::MinAreaDelayProduct.prefers(10, 10.0, 9, 12.0));
        assert!(!Objective::MinAreaDelayProduct.prefers(9, 12.0, 10, 10.0));
    }
}
