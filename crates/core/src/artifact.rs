//! Crash-safe artifact writes.
//!
//! Every JSON sink in the flow — `--qor`, `--metrics`, `--explain`,
//! `--chrome-trace`, checkpoints — goes through [`atomic_write`]: the
//! bytes land in a temporary file in the destination directory, are
//! flushed and fsynced, and only then renamed over the target. A reader
//! (or a crash, or a SIGKILL) therefore observes either the previous
//! complete artifact or the new complete artifact, never a truncated
//! half-write.

// Artifact writes sit on the CLI's error path; every failure must
// surface as a typed error, never a panic.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A failed artifact write, carrying the destination path.
#[derive(Debug)]
pub struct ArtifactError {
    /// The path the write was for.
    pub path: PathBuf,
    /// The underlying I/O failure.
    pub source: std::io::Error,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "writing {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Atomically replaces `path` with `bytes`.
///
/// The bytes are written to a process-unique temporary file in the same
/// directory (same filesystem, so the final `rename` is atomic), synced
/// to disk, and renamed over the target. Non-regular destinations that
/// already exist (`/dev/null`, pipes) are written in place instead,
/// since renaming over them would replace the special file.
///
/// # Errors
///
/// Returns the first I/O failure, naming the destination; the temporary
/// file is cleaned up on a best-effort basis.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), ArtifactError> {
    let err = |source| ArtifactError {
        path: path.to_path_buf(),
        source,
    };
    // Chaos harness: simulate ENOSPC/EIO before any bytes land so the
    // destination provably keeps its previous contents.
    nanomap_observe::failpoint::inject_io("artifact.write").map_err(err)?;
    if let Ok(meta) = std::fs::metadata(path) {
        if !meta.is_file() {
            return std::fs::write(path, bytes).map_err(err);
        }
    }
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let Some(file_name) = path.file_name() else {
        return Err(err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "destination has no file name",
        )));
    };
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write_tmp = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    write_tmp().map_err(|source| {
        let _ = std::fs::remove_file(&tmp);
        err(source)
    })
}

/// [`atomic_write`] for text (the JSON sinks' convenience form). Appends
/// the trailing newline the plain `println!`-based sinks used to emit.
///
/// # Errors
///
/// Same as [`atomic_write`].
pub fn atomic_write_text(path: &Path, text: &str) -> Result<(), ArtifactError> {
    let mut bytes = Vec::with_capacity(text.len() + 1);
    bytes.extend_from_slice(text.as_bytes());
    if !text.ends_with('\n') {
        bytes.push(b'\n');
    }
    atomic_write(path, &bytes)
}

/// The single registry of artifact schema tags.
///
/// Every serialized artifact family embeds exactly one of these strings
/// so readers can reject foreign or future documents. New families add
/// a constant here (never an inline literal at the emit site); version
/// bumps happen here too, which keeps writer and parser in lockstep.
/// The observe crate sits below this one, so its two tags are
/// re-exported rather than redefined.
pub mod versions {
    /// QoR documents (`--qor`, committed baselines).
    pub const QOR: &str = "nanomap-qor-v1";
    /// Perf-gate documents (`bench/perf`, committed baselines).
    pub const PERF: &str = "nanomap-perf-v1";
    /// Mid-flow checkpoints (`--checkpoint-dir`).
    pub const CHECKPOINT: &str = "nanomap-checkpoint-v1";
    /// QoR explainability documents (`--explain`).
    pub const EXPLAIN: &str = "nanomap-explain-v1";
    /// Sampling-profiler documents (`--profile`).
    pub const PROFILE: &str = nanomap_observe::PROFILE_SCHEMA;
    /// Event-bus streams and ledger lines (`--live-status`, `runs`).
    pub const EVENTS: &str = nanomap_observe::EVENTS_SCHEMA;
    /// `nanomapd` wire protocol lines (requests and responses).
    pub const SERVICE: &str = "nanomapd-v1";
    /// `nanomapd` result-cache entries on disk.
    pub const CACHE: &str = "nanomapd-cache-v1";
    /// `nanomapd` stats snapshots (the `stats` op and persisted file).
    pub const STATS: &str = "nanomapd-stats-v1";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nanomap-artifact-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("replace");
        let path = dir.join("a.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp litter left behind.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(litter.is_empty(), "{litter:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn text_write_appends_newline_once() {
        let dir = temp_dir("text");
        let path = dir.join("t.json");
        atomic_write_text(&path, "{}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{}\n");
        atomic_write_text(&path, "{}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_a_typed_error() {
        let path = Path::new("/nonexistent-nanomap-dir/x.json");
        let e = atomic_write(path, b"x").unwrap_err();
        assert!(e.to_string().contains("/nonexistent-nanomap-dir/x.json"));
    }

    /// The atomicity contract under concurrency: a reader that polls the
    /// file while a writer rewrites it hundreds of times must only ever
    /// observe complete payloads.
    #[test]
    fn concurrent_reader_never_sees_a_partial_write() {
        let dir = temp_dir("race");
        let path = dir.join("raced.json");
        // Payloads are self-describing: 4 KiB of a single repeated digit.
        let payload = |i: usize| vec![b'0' + (i % 10) as u8; 4096];
        atomic_write(&path, &payload(0)).unwrap();
        let reader_path = path.clone();
        let reader = std::thread::spawn(move || {
            for _ in 0..2000 {
                let bytes = std::fs::read(&reader_path).unwrap();
                assert_eq!(bytes.len(), 4096, "torn read: {} bytes", bytes.len());
                assert!(
                    bytes.iter().all(|&b| b == bytes[0]),
                    "interleaved payloads observed"
                );
            }
        });
        for i in 1..500 {
            atomic_write(&path, &payload(i)).unwrap();
        }
        reader.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
