//! The NanoMap optimization flow (Fig. 2 of the paper).
//!
//! Given a mapped LUT network (or RTL that this crate expands first), the
//! flow: identifies planes, enumerates folding configurations, runs
//! force-directed scheduling per candidate to obtain LE usage and delay,
//! selects the best candidate under the user's [`Objective`], then runs
//! temporal clustering, two-step placement, PathFinder routing and
//! configuration-bitmap generation. If placement/routing fail, the flow
//! returns to logic mapping with the next folding configuration — the
//! iterative loop of steps 2–15.

// The flow sits directly behind the CLI: every failure on user input
// must surface as a `FlowError`, never a panic.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use nanomap_arch::{
    estimate_power, ArchParams, AreaModel, ChannelConfig, DefectMap, Grid, PowerModel, SmbPos,
    TimingModel,
};
use nanomap_netlist::rtl::RtlCircuit;
use nanomap_netlist::{LutNetwork, PlaneSet};
use nanomap_pack::{extract_nets, pack, PackOptions, Packing, TemporalDesign};
use nanomap_place::{place_with_defects_budgeted, PlaceOptions, Placement};
use nanomap_route::{route_design_budgeted, RouteOptions};
use nanomap_sched::{schedule_fds_budgeted, FdsOptions, ItemGraph, LeShape, Schedule};
use nanomap_techmap::{expand, ExpandOptions};

use std::path::PathBuf;
use std::time::Instant;

use nanomap_observe::span;

use crate::budget::{CancelToken, Degradation};
use crate::checkpoint::{
    netlist_fingerprint, Checkpoint, CheckpointError, CheckpointPhase, CheckpointWriter,
    ScheduleSnapshot,
};
use crate::error::FlowError;
use crate::exact::ExactRungResult;
use crate::folding::{candidate_configs, FoldingConfig, PlaneSharing};
use crate::objective::Objective;
use crate::recovery::{
    PhysicalOverrides, RecoveryAttempt, RecoveryLog, Remedy, LADDER, MAX_TOTAL_ATTEMPTS,
};
use crate::report::{MappingReport, PhaseTimes, PhysicalReport};
use crate::verify::check_folded_execution;

/// The NanoMap flow, configured for one NATURE instance.
///
/// # Examples
///
/// ```
/// use nanomap::{NanoMap, Objective};
/// use nanomap_arch::ArchParams;
/// use nanomap_netlist::rtl::{CombOp, RtlBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = RtlBuilder::new("demo");
/// let a = b.input("a", 4);
/// let c = b.input("b", 4);
/// let gnd = b.constant("gnd", 1, 0);
/// let add = b.comb("add", CombOp::Add { width: 4 });
/// b.connect(a, 0, add, 0)?;
/// b.connect(c, 0, add, 1)?;
/// b.connect(gnd, 0, add, 2)?;
/// let y = b.output("y", 4);
/// b.connect(add, 0, y, 0)?;
/// let circuit = b.finish()?;
///
/// let flow = NanoMap::new(ArchParams::paper_unbounded());
/// let report = flow.map_rtl(&circuit, Objective::MinAreaDelayProduct)?;
/// // Deep folding shrinks the 8-LUT adder to a couple of LEs.
/// assert!(report.num_les < 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NanoMap {
    /// Architecture instance.
    pub arch: ArchParams,
    /// Timing model.
    pub timing: TimingModel,
    /// Area model.
    pub area: AreaModel,
    /// Interconnect channel configuration.
    pub channels: ChannelConfig,
    /// FDS options.
    pub fds: FdsOptions,
    /// Temporal clustering options.
    pub pack_options: PackOptions,
    /// Placement options.
    pub place_options: PlaceOptions,
    /// Routing options.
    pub route_options: RouteOptions,
    /// Fabric defect map: dead slots, broken wires/switches, dead NRAM
    /// sets. Placement and routing work around these; the recovery
    /// ladder escalates when they cannot.
    pub defects: DefectMap,
    /// Run clustering + place + route for the chosen candidate.
    pub run_physical: bool,
    /// Emit the packed binary bitstream into the report.
    pub emit_bitstream: bool,
    /// Verify folded execution against the reference simulator.
    pub verify: bool,
    /// Macro cycles for the verification run.
    pub verify_cycles: usize,
    /// Build the QoR attribution artifact (critical paths, congestion,
    /// occupancy) into the report.
    pub explain: bool,
    /// Paths traced per folding cycle when `explain` is on.
    pub explain_top_k: usize,
    /// Wall-clock budget for the whole mapping, in milliseconds.
    /// `None` runs unbudgeted (no clock reads; artifacts stay
    /// byte-identical to a pre-budget flow).
    pub budget_ms: Option<u64>,
    /// Accept a budget-degraded best-so-far mapping instead of failing
    /// with [`FlowError::BudgetExhausted`] (anytime mode).
    pub anytime: bool,
    /// Directory for per-phase crash-safe checkpoints (`None` disables
    /// checkpointing).
    pub checkpoint_dir: Option<PathBuf>,
    /// Run the exact SAT-based assignment rung when the heuristic
    /// ladder exhausts (`--exact-recovery`).
    pub exact_recovery: bool,
    /// Conflict budget per SAT solve of the exact rung
    /// (`--sat-conflict-budget`); `None` bounds it only by the
    /// wall-clock token.
    pub sat_conflict_budget: Option<u64>,
}

impl NanoMap {
    /// Creates a flow for an architecture instance with default options.
    pub fn new(arch: ArchParams) -> Self {
        let shape = LeShape {
            luts: arch.luts_per_le,
            ffs: arch.ffs_per_le,
        };
        Self {
            arch,
            timing: TimingModel::nature_100nm(),
            area: AreaModel::nature_100nm(),
            channels: ChannelConfig::nature(),
            fds: FdsOptions {
                shape,
                ..FdsOptions::default()
            },
            pack_options: PackOptions::default(),
            place_options: PlaceOptions::default(),
            route_options: RouteOptions::default(),
            defects: DefectMap::none(),
            run_physical: true,
            emit_bitstream: false,
            verify: false,
            verify_cycles: 64,
            explain: false,
            explain_top_k: crate::explain::DEFAULT_TOP_K,
            budget_ms: None,
            anytime: false,
            checkpoint_dir: None,
            exact_recovery: false,
            sat_conflict_budget: None,
        }
    }

    /// Bounds the whole mapping to a wall-clock budget in milliseconds.
    pub fn with_budget_ms(mut self, budget_ms: u64) -> Self {
        self.budget_ms = Some(budget_ms);
        self
    }

    /// Accepts budget-degraded best-so-far mappings (anytime mode).
    pub fn with_anytime(mut self) -> Self {
        self.anytime = true;
        self
    }

    /// Writes a crash-safe checkpoint into `dir` after each completed
    /// phase.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Disables place-and-route (fast logic-mapping-only evaluation).
    pub fn without_physical(mut self) -> Self {
        self.run_physical = false;
        self
    }

    /// Enables folded-execution verification.
    pub fn with_verification(mut self) -> Self {
        self.verify = true;
        self
    }

    /// Emits the packed binary bitstream into the report.
    pub fn with_bitstream(mut self) -> Self {
        self.emit_bitstream = true;
        self
    }

    /// Maps onto a defective fabric described by `defects`.
    pub fn with_defects(mut self, defects: DefectMap) -> Self {
        self.defects = defects;
        self
    }

    /// Builds the QoR attribution artifact into the report.
    pub fn with_explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Enables the exact SAT-based assignment rung as the complete
    /// final fallback of the recovery ladder.
    pub fn with_exact_recovery(mut self) -> Self {
        self.exact_recovery = true;
        self
    }

    /// Bounds each SAT solve of the exact rung to a conflict budget.
    pub fn with_sat_conflict_budget(mut self, conflicts: u64) -> Self {
        self.sat_conflict_budget = Some(conflicts);
        self
    }

    /// Maps an RTL circuit: expand to LUTs, then [`Self::map`].
    ///
    /// # Errors
    ///
    /// Propagates expansion and mapping failures.
    pub fn map_rtl(
        &self,
        circuit: &RtlCircuit,
        objective: Objective,
    ) -> Result<MappingReport, FlowError> {
        let net = expand(
            circuit,
            ExpandOptions {
                lut_inputs: self.arch.lut_inputs,
                ..ExpandOptions::default()
            },
        )?;
        self.map(&net, objective)
    }

    /// Maps a LUT network onto NATURE under the given objective.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NoFeasibleFolding`] when no folding level
    /// satisfies the constraints, or the first hard failure from a flow
    /// stage.
    pub fn map(&self, net: &LutNetwork, objective: Objective) -> Result<MappingReport, FlowError> {
        let token = CancelToken::with_budget_ms(self.budget_ms);
        self.map_with_token(net, objective, &token)
    }

    /// [`Self::map`] under an externally owned [`CancelToken`], letting
    /// a caller share one deadline across several mappings or cancel
    /// cooperatively from another thread.
    ///
    /// # Errors
    ///
    /// Same as [`Self::map`], plus [`FlowError::BudgetExhausted`] when
    /// the token expires mid-flow and anytime mode is off.
    pub fn map_with_token(
        &self,
        net: &LutNetwork,
        objective: Objective,
        token: &CancelToken,
    ) -> Result<MappingReport, FlowError> {
        let total_start = Instant::now();
        self.publish_run_start(net, objective);
        let mut flow_span = span!("flow", circuit = net.name());
        let mut times = PhaseTimes::default();
        let planes = PlaneSet::extract(net)?;
        let candidates = candidate_configs(&planes, self.arch.num_reconf);

        // --- Logic mapping: evaluate candidates (steps 2-6). ---
        let select_start = Instant::now();
        let mut evaluated: Vec<(FoldingConfig, CandidateEval)> = Vec::new();
        let mut select_degradation: Option<Degradation> = None;
        {
            let _select_span = span!("folding-select", candidates = candidates.len());
            for config in &candidates {
                // Budget gone: stop enumerating once at least one
                // feasible candidate exists — a truncated preference
                // order beats no mapping at all.
                if token.expired()
                    && evaluated
                        .iter()
                        .any(|(_, e)| objective.admits(e.les, e.delay_ns))
                {
                    select_degradation = Some(Degradation {
                        phase: "folding-select".into(),
                        reason: format!(
                            "time budget expired after {} of {} folding candidates",
                            evaluated.len(),
                            candidates.len()
                        ),
                        completed_iterations: evaluated.len() as u64,
                        qor_estimate: (candidates.len() - evaluated.len()) as f64,
                    });
                    break;
                }
                let mut cand_span = span!("candidate", stages = config.stages);
                cand_span.attr("level", config.level);
                nanomap_observe::incr("flow.candidates_evaluated", 1);
                // During selection only the estimates matter, not the
                // schedules; a budget-truncated FDS estimate is kept (its
                // degradation resurfaces when the winning candidate is
                // re-evaluated below).
                match self.evaluate_budgeted(net, &planes, *config, token) {
                    Ok((eval, _)) => evaluated.push((*config, eval)),
                    Err(FlowError::Sched(_)) => {
                        // Infeasible stage count.
                        nanomap_observe::incr("flow.candidates_rejected_sched", 1);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        times.folding_select_ms = select_start.elapsed().as_secs_f64() * 1e3;
        if evaluated.is_empty() {
            return Err(FlowError::NoFeasibleFolding {
                reason: "no folding configuration schedules feasibly".into(),
            });
        }
        // Order by objective preference among constraint-satisfying
        // candidates; keep a constraint-violating fallback ordering too so
        // physical failures can degrade gracefully.
        let mut order: Vec<usize> = (0..evaluated.len()).collect();
        order.sort_by(|&a, &b| {
            let (ca, ea) = &evaluated[a];
            let (cb, eb) = &evaluated[b];
            let fa = objective.admits(ea.les, ea.delay_ns);
            let fb = objective.admits(eb.les, eb.delay_ns);
            match (fa, fb) {
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                _ => {
                    if objective.prefers(ea.les, ea.delay_ns, eb.les, eb.delay_ns) {
                        std::cmp::Ordering::Less
                    } else if objective.prefers(eb.les, eb.delay_ns, ea.les, ea.delay_ns) {
                        std::cmp::Ordering::Greater
                    } else {
                        ca.stages.cmp(&cb.stages)
                    }
                }
            }
        });
        let best_feasible = {
            let (_, e) = &evaluated[order[0]];
            objective.admits(e.les, e.delay_ns)
        };
        if !best_feasible {
            let (_, e) = &evaluated[order[0]];
            return Err(FlowError::NoFeasibleFolding {
                reason: format!(
                    "best candidate needs {} LEs / {:.2} ns, outside the constraints",
                    e.les, e.delay_ns
                ),
            });
        }

        // --- Physical design (steps 7-15) under the recovery ladder:
        // per candidate escalate baseline → reseed → widen grid → widen
        // channels, then fall back to the next folding configuration.
        // Every failed attempt lands in the RecoveryLog. ---
        let mut recovery = RecoveryLog::new();
        let base_degradations: Vec<Degradation> = select_degradation.into_iter().collect();
        'candidates: for (cand_rank, &idx) in order.iter().enumerate() {
            let (config, cached) = &evaluated[idx];
            let config = *config;
            if !objective.admits(cached.les, cached.delay_ns) {
                break; // remaining candidates violate constraints
            }
            if cand_rank > 0 {
                recovery.record_candidate_fallback();
            }
            for &remedy in &LADDER {
                if recovery.total_attempts() >= MAX_TOTAL_ATTEMPTS {
                    break 'candidates;
                }
                // Budget gone: stop climbing once one physical attempt
                // exists; anytime callers keep the degraded best-so-far,
                // strict callers get BudgetExhausted below.
                if token.expired() && !recovery.attempts.is_empty() {
                    break 'candidates;
                }
                // Re-evaluate to own the schedules (cheap relative to
                // P&R; finish_candidate consumes them).
                let attempt_start = Instant::now();
                let (eval, fds_degradation) =
                    self.evaluate_budgeted(net, &planes, config, token)?;
                times.fds_ms = attempt_start.elapsed().as_secs_f64() * 1e3;
                let overrides = remedy.apply(self.place_options, self.route_options, self.channels);
                let mut writer = self.checkpoint_writer(
                    net,
                    &objective,
                    cand_rank,
                    config,
                    remedy,
                    &overrides,
                    &eval.schedules,
                    &recovery,
                )?;
                if let Some(w) = writer.as_mut() {
                    w.write_fds()?;
                }
                let mut attempt_degradations = base_degradations.clone();
                attempt_degradations.extend(fds_degradation);
                match self.finish_candidate(
                    net,
                    &planes,
                    config,
                    eval,
                    times,
                    &overrides,
                    token,
                    writer.as_mut(),
                    ResumeProducts::default(),
                    &mut attempt_degradations,
                ) {
                    Ok(report) => {
                        flow_span.attr("folding_level", config.level);
                        flow_span.attr("num_les", report.num_les);
                        if !attempt_degradations.is_empty() {
                            flow_span.attr("degraded", 1u64);
                        }
                        return self.finalize(
                            report,
                            recovery,
                            remedy,
                            attempt_degradations,
                            token,
                            total_start,
                        );
                    }
                    Err(e @ (FlowError::Place(_) | FlowError::Route(_))) => {
                        let phase = match &e {
                            FlowError::Place(_) => "place",
                            _ => "route",
                        };
                        recovery.record(RecoveryAttempt {
                            attempt: recovery.total_attempts(),
                            candidate: cand_rank,
                            folding_level: config.level,
                            stages: config.stages,
                            remedy,
                            phase,
                            error: e.to_string(),
                            wall_us: attempt_start.elapsed().as_micros() as u64,
                        });
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            // The whole ladder failed for this candidate.
            nanomap_observe::incr("flow.candidates_rejected_physical", 1);
        }
        // --- The complete final rung: exact SAT-based slot assignment,
        // opt-in, run only once every heuristic rung of every candidate
        // has failed and time remains. The rung walks the *whole*
        // admitted candidate ladder in preference order — a shallow
        // folding with fewer NRAM sets may be solvable where the best
        // candidate is not — and claims infeasibility only when every
        // candidate is proven unsatisfiable. ---
        if self.exact_recovery && !token.expired() && !recovery.attempts.is_empty() {
            let mut best_unsat = None;
            let mut all_proven = true;
            for (cand_rank, &idx) in order.iter().enumerate() {
                let (config, cached) = &evaluated[idx];
                if !objective.admits(cached.les, cached.delay_ns) {
                    break; // remaining candidates violate constraints
                }
                if token.expired() {
                    all_proven = false;
                    break;
                }
                match self.exact_assign_rung(
                    net,
                    &planes,
                    *config,
                    cand_rank,
                    times,
                    &base_degradations,
                    &mut recovery,
                    token,
                ) {
                    ExactRungResult::Success(report, degradations) => {
                        flow_span.attr("folding_level", config.level);
                        flow_span.attr("num_les", report.num_les);
                        flow_span.attr("exact_recovery", 1u64);
                        return self.finalize(
                            *report,
                            recovery,
                            Remedy::ExactAssign,
                            degradations,
                            token,
                            total_start,
                        );
                    }
                    ExactRungResult::Infeasible(summary) => {
                        // Keep the preferred candidate's proof for the
                        // error; later candidates still must be tried.
                        if best_unsat.is_none() {
                            best_unsat = Some(summary);
                        }
                    }
                    ExactRungResult::Exhausted => all_proven = false,
                    ExactRungResult::Fatal(e) => return Err(e),
                }
            }
            // An interrupted or routing-starved candidate means the
            // infeasibility claim would be unsound; fall through to the
            // generic exhaustion errors instead.
            if all_proven {
                if let Some(summary) = best_unsat {
                    return Err(FlowError::ExactAssignUnsat {
                        log: recovery,
                        summary,
                    });
                }
            }
        }
        Err(if token.expired() {
            nanomap_observe::incr("flow.budget_expired", 1);
            FlowError::BudgetExhausted {
                log: recovery,
                degradations: base_degradations,
            }
        } else {
            FlowError::RecoveryExhausted { log: recovery }
        })
    }

    /// Resumes a mapping from a checkpoint written by a previous run with
    /// the same netlist, objective and architecture.
    ///
    /// The checkpoint pins the folding candidate and recovery-ladder
    /// rung; restored products (schedules, packing, placement) skip
    /// their phases, and the remaining phases re-run deterministically,
    /// reproducing the uninterrupted run's report. Should the pinned
    /// rung still fail, the ladder climbs from there.
    ///
    /// # Errors
    ///
    /// [`FlowError::Checkpoint`] when the checkpoint does not match this
    /// netlist/objective/architecture; otherwise the same errors as
    /// [`Self::map`].
    pub fn map_resume(
        &self,
        net: &LutNetwork,
        objective: Objective,
        checkpoint: &Checkpoint,
    ) -> Result<MappingReport, FlowError> {
        checkpoint.validate(net, &objective.key(), &self.arch)?;
        let token = CancelToken::with_budget_ms(self.budget_ms);
        let total_start = Instant::now();
        self.publish_run_start(net, objective);
        let mut flow_span = span!("flow", circuit = net.name());
        flow_span.attr("resumed", 1u64);
        let mut times = PhaseTimes::default();
        let planes = PlaneSet::extract(net)?;
        let config = checkpoint.folding_config();
        // Rebuild the item graphs (cheap and deterministic) and restore
        // the checkpointed schedules onto them.
        let level = config.level.unwrap_or_else(|| planes.depth_max().max(1));
        let mut graphs = Vec::new();
        for plane in planes.planes() {
            graphs.push(ItemGraph::build(net, plane, level)?);
        }
        if checkpoint.schedules.len() != graphs.len() {
            return Err(CheckpointError::Malformed {
                detail: format!(
                    "checkpoint has {} schedules for a {}-plane netlist",
                    checkpoint.schedules.len(),
                    graphs.len()
                ),
            }
            .into());
        }
        let mut schedules = Vec::new();
        for (plane_idx, (snapshot, graph)) in checkpoint.schedules.iter().zip(&graphs).enumerate() {
            if snapshot.stage_of.len() != graph.len() {
                return Err(CheckpointError::Malformed {
                    detail: format!(
                        "plane {plane_idx}: schedule covers {} items, plane has {}",
                        snapshot.stage_of.len(),
                        graph.len()
                    ),
                }
                .into());
            }
            schedules.push(snapshot.restore());
        }
        let mut recovery = checkpoint.recovery.clone();
        recovery.succeeded_with = None;
        let start_rung = LADDER
            .iter()
            .position(|&r| r == checkpoint.remedy)
            .unwrap_or(0);
        // The first resumed rung consumes the restored products; any
        // later rung re-runs its phases from scratch.
        let mut restored = {
            let (les, delay_ns) = self.assess(net, &planes, config, &graphs, &schedules);
            let packing = checkpoint.packing.as_ref().map(|p| p.restore());
            let placement = match checkpoint.placement.as_ref() {
                Some(p) => Some(p.restore().map_err(FlowError::Checkpoint)?),
                None => None,
            };
            Some((
                CandidateEval {
                    les,
                    delay_ns,
                    graphs,
                    schedules,
                },
                ResumeProducts { packing, placement },
            ))
        };
        for &remedy in &LADDER[start_rung..] {
            if recovery.total_attempts() >= MAX_TOTAL_ATTEMPTS {
                break;
            }
            if token.expired() && !recovery.attempts.is_empty() {
                break;
            }
            let attempt_start = Instant::now();
            let overrides = remedy.apply(self.place_options, self.route_options, self.channels);
            let (eval, resume, fds_degradation) = match restored.take() {
                Some((eval, products)) => (eval, products, None),
                None => {
                    let fds_start = Instant::now();
                    let (eval, d) = self.evaluate_budgeted(net, &planes, config, &token)?;
                    times.fds_ms = fds_start.elapsed().as_secs_f64() * 1e3;
                    (eval, ResumeProducts::default(), d)
                }
            };
            let mut writer = self.checkpoint_writer(
                net,
                &objective,
                checkpoint.candidate_rank,
                config,
                remedy,
                &overrides,
                &eval.schedules,
                &recovery,
            )?;
            if let Some(w) = writer.as_mut() {
                w.write_fds()?;
            }
            let mut attempt_degradations: Vec<Degradation> = fds_degradation.into_iter().collect();
            match self.finish_candidate(
                net,
                &planes,
                config,
                eval,
                times,
                &overrides,
                &token,
                writer.as_mut(),
                resume,
                &mut attempt_degradations,
            ) {
                Ok(report) => {
                    flow_span.attr("folding_level", config.level);
                    flow_span.attr("num_les", report.num_les);
                    if !attempt_degradations.is_empty() {
                        flow_span.attr("degraded", 1u64);
                    }
                    return self.finalize(
                        report,
                        recovery,
                        remedy,
                        attempt_degradations,
                        &token,
                        total_start,
                    );
                }
                Err(e @ (FlowError::Place(_) | FlowError::Route(_))) => {
                    let phase = match &e {
                        FlowError::Place(_) => "place",
                        _ => "route",
                    };
                    recovery.record(RecoveryAttempt {
                        attempt: recovery.total_attempts(),
                        candidate: checkpoint.candidate_rank,
                        folding_level: config.level,
                        stages: config.stages,
                        remedy,
                        phase,
                        error: e.to_string(),
                        wall_us: attempt_start.elapsed().as_micros() as u64,
                    });
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        // A resumed run earns the same final rung as a fresh one.
        if self.exact_recovery && !token.expired() && !recovery.attempts.is_empty() {
            match self.exact_assign_rung(
                net,
                &planes,
                config,
                checkpoint.candidate_rank,
                times,
                &[],
                &mut recovery,
                &token,
            ) {
                ExactRungResult::Success(report, degradations) => {
                    flow_span.attr("folding_level", config.level);
                    flow_span.attr("num_les", report.num_les);
                    flow_span.attr("exact_recovery", 1u64);
                    return self.finalize(
                        *report,
                        recovery,
                        Remedy::ExactAssign,
                        degradations,
                        &token,
                        total_start,
                    );
                }
                ExactRungResult::Infeasible(summary) => {
                    return Err(FlowError::ExactAssignUnsat {
                        log: recovery,
                        summary,
                    });
                }
                ExactRungResult::Exhausted => {}
                ExactRungResult::Fatal(e) => return Err(e),
            }
        }
        Err(if token.expired() {
            nanomap_observe::incr("flow.budget_expired", 1);
            FlowError::BudgetExhausted {
                log: recovery,
                degradations: Vec::new(),
            }
        } else {
            FlowError::RecoveryExhausted { log: recovery }
        })
    }

    /// Success bookkeeping shared by fresh and resumed runs: fold the
    /// degradation history into the report, route strict-mode expiry to
    /// [`FlowError::BudgetExhausted`], stamp totals.
    fn finalize(
        &self,
        mut report: MappingReport,
        mut recovery: RecoveryLog,
        remedy: Remedy,
        degradations: Vec<Degradation>,
        token: &CancelToken,
        total_start: Instant,
    ) -> Result<MappingReport, FlowError> {
        let degraded = !degradations.is_empty();
        if degraded {
            nanomap_observe::incr("flow.budget_expired", 1);
            if !self.anytime {
                return Err(FlowError::BudgetExhausted {
                    log: recovery,
                    degradations,
                });
            }
            recovery.succeeded_with = Some(Remedy::AcceptDegraded);
        } else {
            recovery.succeeded_with = Some(remedy);
        }
        report.degraded = degraded;
        report.degradations = degradations;
        report.recovery = recovery;
        report.phase_times.total_ms = total_start.elapsed().as_secs_f64() * 1e3;
        report.phase_times.budget_ms_remaining = token.remaining_ms();
        if nanomap_observe::events_enabled() {
            for d in &report.degradations {
                nanomap_observe::publish(nanomap_observe::EventKind::Degraded {
                    phase: d.phase.clone(),
                    reason: d.reason.clone(),
                    completed_iterations: d.completed_iterations,
                });
            }
        }
        Ok(report)
    }

    /// Stable flight-recorder id for mapping `net` under `objective`
    /// with this flow's seeds: the same inputs always produce the same
    /// id, so ledger history lines up across reruns.
    pub fn run_id(&self, net: &LutNetwork, objective: Objective) -> String {
        crate::runs::run_id(
            netlist_fingerprint(net),
            &objective.key(),
            self.place_options.seed,
            self.route_options.seed,
        )
    }

    /// Announces the run on the event bus (first event of the stream).
    fn publish_run_start(&self, net: &LutNetwork, objective: Objective) {
        if !nanomap_observe::events_enabled() {
            return;
        }
        nanomap_observe::publish(nanomap_observe::EventKind::RunStart {
            run_id: self.run_id(net, objective),
            circuit: net.name().to_string(),
            objective: objective.key(),
            place_seed: self.place_options.seed,
            route_seed: self.route_options.seed,
        });
    }

    /// Builds the checkpoint writer for one physical-design attempt,
    /// when a checkpoint directory is configured.
    #[allow(clippy::too_many_arguments)]
    fn checkpoint_writer(
        &self,
        net: &LutNetwork,
        objective: &Objective,
        candidate_rank: usize,
        config: FoldingConfig,
        remedy: Remedy,
        overrides: &PhysicalOverrides,
        schedules: &[Schedule],
        recovery: &RecoveryLog,
    ) -> Result<Option<CheckpointWriter>, FlowError> {
        let Some(dir) = &self.checkpoint_dir else {
            return Ok(None);
        };
        let checkpoint = Checkpoint {
            circuit: net.name().to_string(),
            netlist_hash: netlist_fingerprint(net),
            objective: objective.key(),
            lut_inputs: self.arch.lut_inputs,
            luts_per_le: self.arch.luts_per_le,
            ffs_per_le: self.arch.ffs_per_le,
            num_reconf: self.arch.num_reconf,
            phase: CheckpointPhase::Fds,
            candidate_rank,
            level: config.level,
            stages: config.stages,
            sharing: config.sharing,
            remedy,
            place_seed: overrides.place.seed,
            route_seed: overrides.route.seed,
            schedules: schedules.iter().map(ScheduleSnapshot::capture).collect(),
            recovery: recovery.clone(),
            packing: None,
            placement: None,
        };
        Ok(Some(CheckpointWriter::new(dir, checkpoint)?))
    }

    /// Logic-mapping evaluation of one folding configuration: schedules
    /// every plane (polling the cancel token at FDS round boundaries)
    /// and computes LE usage and analytical delay. Returns the merged
    /// per-plane degradation when the budget truncated any FDS run.
    pub(crate) fn evaluate_budgeted(
        &self,
        net: &LutNetwork,
        planes: &PlaneSet,
        config: FoldingConfig,
        token: &CancelToken,
    ) -> Result<(CandidateEval, Option<Degradation>), FlowError> {
        let mut graphs = Vec::new();
        let mut schedules = Vec::new();
        let mut degradation: Option<Degradation> = None;
        match config.level {
            None => {
                // No folding: trivial single-stage schedules, nothing for
                // the budget to truncate.
                for plane in planes.planes() {
                    let graph = ItemGraph::build(net, plane, planes.depth_max().max(1))?;
                    let n = graph.len();
                    graphs.push(graph);
                    schedules.push(Schedule::new(vec![0; n], 1));
                }
            }
            Some(p) => {
                let stages = config.stages;
                for plane in planes.planes() {
                    let graph = ItemGraph::build(net, plane, p)?;
                    let scheduled = schedule_fds_budgeted(net, &graph, stages, self.fds, token)?;
                    let (schedule, plane_degradation) = scheduled.into_parts();
                    if let Some(d) = plane_degradation {
                        // Merge per-plane degradations: first reason wins,
                        // iteration counts accumulate, worst estimate kept.
                        match degradation.as_mut() {
                            Some(merged) => {
                                merged.completed_iterations += d.completed_iterations;
                                merged.qor_estimate = merged.qor_estimate.max(d.qor_estimate);
                            }
                            None => degradation = Some(d),
                        }
                    }
                    graphs.push(graph);
                    schedules.push(schedule);
                }
            }
        }
        let (les, delay_ns) = self.assess(net, planes, config, &graphs, &schedules);
        Ok((
            CandidateEval {
                les,
                delay_ns,
                graphs,
                schedules,
            },
            degradation,
        ))
    }

    /// LE usage and analytical delay of a scheduled candidate — shared
    /// by fresh evaluation and checkpoint resume, so a restored schedule
    /// reproduces the original estimates bit for bit.
    fn assess(
        &self,
        net: &LutNetwork,
        planes: &PlaneSet,
        config: FoldingConfig,
        graphs: &[ItemGraph],
        schedules: &[Schedule],
    ) -> (u32, f64) {
        let num_planes = planes.num_planes() as u32;
        let shape = self.fds.shape;
        let total_ff_bits = net.num_ffs() as u32;
        match config.level {
            None => {
                // No folding: every LUT owns an LE; registers live in the
                // LE flip-flops.
                let total_luts = net.num_luts() as u32;
                let les = total_luts.max(total_ff_bits.div_ceil(shape.ffs));
                let delay_ns = self
                    .timing
                    .circuit_delay_no_folding(num_planes, planes.depth_max());
                (les, delay_ns)
            }
            Some(p) => {
                let stages = config.stages;
                let les = match config.sharing {
                    PlaneSharing::Shared => {
                        // All planes reuse the same LEs: peak over planes,
                        // with every circuit register alive throughout.
                        let mut peak = 0;
                        for (plane_idx, _plane) in planes.planes().iter().enumerate() {
                            // The DGs inside FDS follow the paper's
                            // weight_i storage estimate; the final LE
                            // accounting counts, bit by bit, the values
                            // that truly cross folding cycles.
                            let usage = schedules[plane_idx].le_usage_exact(
                                net,
                                &graphs[plane_idx],
                                total_ff_bits,
                                shape,
                            );
                            peak = peak.max(usage.peak);
                        }
                        peak
                    }
                    PlaneSharing::PerPlane => {
                        // Each plane owns LEs sized by its own peak, with
                        // its adjacent registers resident.
                        let owner = ff_owners(planes, net.num_ffs());
                        let mut total = 0;
                        for (plane_idx, _) in planes.planes().iter().enumerate() {
                            let reg_bits = owner.iter().filter(|&&o| o == plane_idx).count() as u32;
                            let usage = schedules[plane_idx].le_usage_exact(
                                net,
                                &graphs[plane_idx],
                                reg_bits,
                                shape,
                            );
                            total += usage.peak;
                        }
                        total
                    }
                };
                let delay_ns = self.timing.circuit_delay(num_planes, stages, p);
                (les, delay_ns)
            }
        }
    }

    /// Clustering, placement, routing, bitmap and verification for the
    /// chosen candidate, with the physical-design options of one
    /// recovery-ladder rung.
    ///
    /// Phases poll `token` at iteration boundaries and append their
    /// [`Degradation`] to `degradations` when it expires; `resume`
    /// products restored from a checkpoint skip their phase entirely,
    /// and each completed phase lands in `ckpt` when checkpointing is
    /// on.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_candidate(
        &self,
        net: &LutNetwork,
        planes: &PlaneSet,
        config: FoldingConfig,
        eval: CandidateEval,
        mut times: PhaseTimes,
        overrides: &PhysicalOverrides,
        token: &CancelToken,
        mut ckpt: Option<&mut CheckpointWriter>,
        mut resume: ResumeProducts,
        degradations: &mut Vec<Degradation>,
    ) -> Result<MappingReport, FlowError> {
        let design = TemporalDesign::new(net, planes, eval.graphs, eval.schedules)?;
        {
            // The verify span is always emitted so the phase set is
            // complete; the attribute records whether it actually ran.
            let mut verify_span = span!("verify", skipped = !self.verify);
            if self.verify {
                let verify_start = Instant::now();
                let check = check_folded_execution(&design, self.verify_cycles, 0xFEED);
                times.verify_ms = verify_start.elapsed().as_secs_f64() * 1e3;
                verify_span.attr("cycles", self.verify_cycles as u64);
                if let Some(detail) = check.failure {
                    return Err(FlowError::VerificationFailed { detail });
                }
            }
        }
        let mut explain = None;
        let physical = if self.run_physical {
            let pack_start = Instant::now();
            let packing = match resume.packing.take() {
                Some(packing) => packing,
                None => {
                    let _span = span!("pack", slices = design.num_slices());
                    pack(&design, &self.arch, self.pack_options)?
                }
            };
            let nets = extract_nets(&design, &packing);
            times.pack_ms = pack_start.elapsed().as_secs_f64() * 1e3;
            if let Some(w) = ckpt.as_deref_mut() {
                w.write_pack(&packing)?;
            }
            let place_start = Instant::now();
            let placement = match resume.placement.take() {
                Some((grid, pos_of)) => Placement::reconstruct(
                    &design,
                    &packing,
                    &nets,
                    &overrides.channels,
                    &self.timing,
                    overrides.place.weights,
                    grid,
                    pos_of,
                ),
                None => {
                    let mut place_span = span!("place", smbs = packing.num_smbs);
                    place_span.attr("seed", overrides.place.seed);
                    let placed = place_with_defects_budgeted(
                        &design,
                        &packing,
                        &nets,
                        &overrides.channels,
                        &self.timing,
                        overrides.place,
                        &self.defects,
                        token,
                    )?;
                    let (placement, degradation) = placed.into_parts();
                    if let Some(d) = degradation {
                        place_span.attr("degraded", 1u64);
                        degradations.push(d);
                    }
                    placement
                }
            };
            times.place_ms = place_start.elapsed().as_secs_f64() * 1e3;
            if let Some(w) = ckpt {
                w.write_place(placement.grid, &placement.pos_of)?;
            }
            let route_start = Instant::now();
            let routed = {
                let mut route_span = span!("route", slices = design.num_slices());
                route_span.attr("seed", overrides.route.seed);
                let routed = route_design_budgeted(
                    &design,
                    &packing,
                    &nets,
                    &placement,
                    &overrides.channels,
                    &self.timing,
                    &self.arch,
                    overrides.route,
                    &self.defects,
                    token,
                )?;
                let (routed, degradation) = routed.into_parts();
                if let Some(d) = degradation {
                    route_span.attr("degraded", 1u64);
                    degradations.push(d);
                }
                routed
            };
            times.bitmap_ms = routed.bitmap_ms;
            times.route_ms =
                (route_start.elapsed().as_secs_f64() * 1e3 - routed.bitmap_ms).max(0.0);
            if self.explain {
                let explain_start = Instant::now();
                let report = {
                    let _span = span!("explain", top_k = self.explain_top_k as u64);
                    crate::explain::ExplainReport::build(
                        net.name(),
                        &design,
                        &packing,
                        &nets,
                        &placement,
                        &routed,
                        &overrides.channels,
                        &self.timing,
                        &self.arch,
                        self.explain_top_k,
                    )
                };
                times.explain_ms = explain_start.elapsed().as_secs_f64() * 1e3;
                explain = Some(report);
            }
            let bitstream = self
                .emit_bitstream
                .then(|| nanomap_arch::pack_bitstream(&routed.bitmap, self.arch.lut_inputs));
            Some(PhysicalReport {
                num_smbs: packing.num_smbs,
                grid: (placement.grid.width, placement.grid.height),
                placement_cost: placement.cost,
                peak_utilization: placement.routability.peak_utilization,
                routed_delay_ns: routed.timing.circuit_delay,
                usage: routed.usage.into(),
                bitmap_bits: routed.bitmap.total_bits(&self.arch),
                bitstream,
            })
        } else {
            None
        };
        // Power estimate: average LUT work per cycle, configuration bits
        // re-read per cycle (zero without folding), leakage from the LE
        // footprint.
        let num_slices = planes.num_planes() as f64 * f64::from(config.stages);
        let (luts_per_cycle, bits_per_cycle, cycle_ns) = match config.level {
            None => (
                net.num_luts() as f64 / planes.num_planes() as f64,
                0.0,
                self.timing.plane_cycle_no_folding(planes.depth_max()),
            ),
            Some(p) => (
                net.num_luts() as f64 / num_slices,
                f64::from(eval.les) * nanomap_arch::bits_per_le(&self.arch) as f64,
                self.timing.folding_cycle(p),
            ),
        };
        let power = estimate_power(
            &PowerModel::nature_100nm(),
            luts_per_cycle,
            bits_per_cycle,
            eval.les,
            cycle_ns,
        );
        let area_um2 = self.area.design_area(&self.arch, eval.les);
        Ok(MappingReport {
            circuit: net.name().to_string(),
            num_planes: planes.num_planes() as u32,
            depth_max: planes.depth_max(),
            num_luts: net.num_luts() as u32,
            num_ffs: net.num_ffs() as u32,
            folding_level: config.level,
            stages: config.stages,
            sharing: config.sharing.into(),
            nram_sets_used: config.nram_sets(planes.num_planes() as u32),
            num_les: eval.les,
            delay_ns: eval.delay_ns,
            area_um2,
            power,
            physical,
            explain,
            recovery: RecoveryLog::default(),
            degraded: false,
            degradations: Vec::new(),
            phase_times: times,
            // One RSS sample at flow end tightens the peak even when no
            // background sampler ran; `memory_report()` stays `None`
            // (and the artifact byte-identical) unless the driver
            // enabled tracking.
            memory: {
                if nanomap_observe::memory_tracking() {
                    nanomap_observe::sample_rss_kb();
                }
                nanomap_observe::memory_report()
            },
        })
    }
}

/// Per-candidate logic-mapping result.
pub(crate) struct CandidateEval {
    pub(crate) les: u32,
    pub(crate) delay_ns: f64,
    pub(crate) graphs: Vec<ItemGraph>,
    pub(crate) schedules: Vec<Schedule>,
}

/// Phase products restored from a checkpoint; a resumed attempt consumes
/// them instead of re-running the corresponding phases.
#[derive(Default)]
pub(crate) struct ResumeProducts {
    pub(crate) packing: Option<Packing>,
    pub(crate) placement: Option<(Grid, Vec<SmbPos>)>,
}

/// Assigns every flip-flop to one plane (the plane it feeds, else the
/// plane that writes it) for per-plane register accounting.
fn ff_owners(planes: &PlaneSet, num_ffs: usize) -> Vec<usize> {
    let mut owner = vec![0usize; num_ffs];
    let mut assigned = vec![false; num_ffs];
    for (idx, plane) in planes.planes().iter().enumerate() {
        for &f in &plane.input_ffs {
            if !assigned[f.index()] {
                owner[f.index()] = idx;
                assigned[f.index()] = true;
            }
        }
    }
    for (idx, plane) in planes.planes().iter().enumerate() {
        for &f in &plane.output_ffs {
            if !assigned[f.index()] {
                owner[f.index()] = idx;
                assigned[f.index()] = true;
            }
        }
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};

    /// The paper's Fig. 1 circuit: controller (LUTs + 2 state bits) +
    /// datapath (3 registers, adder, multiplier) with status feedback.
    fn fig1_circuit() -> RtlCircuit {
        fig1_circuit_w(4)
    }

    fn fig1_circuit_w(w: u32) -> RtlCircuit {
        let mut b = RtlBuilder::new("fig1");
        let x = b.input("x", w);
        // Datapath registers with feedback through muxes.
        let reg1 = b.register("reg1", w);
        let reg2 = b.register("reg2", w);
        let reg3 = b.register("reg3", w);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: w });
        b.connect(reg1, 0, add, 0).unwrap();
        b.connect(reg2, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        let mul = b.comb("mul", CombOp::Mul { width: w });
        b.connect(add, 0, mul, 0).unwrap();
        b.connect(reg3, 0, mul, 1).unwrap();
        let mul_lo = b.comb(
            "mul_lo",
            CombOp::Slice {
                width: 2 * w,
                lo: 0,
                out_width: w,
            },
        );
        b.connect(mul, 0, mul_lo, 0).unwrap();
        // Controller: two state bits + 4 LUTs.
        let s0 = b.register("s0", 1);
        let s1 = b.register("s1", 1);
        // Status feedback from the datapath into the controller (the
        // carry-out flag), making controller + datapath one plane.
        let flag = b.comb(
            "flag",
            CombOp::Slice {
                width: w,
                lo: w - 1,
                out_width: 1,
            },
        );
        b.connect(reg3, 0, flag, 0).unwrap();
        let lut1 = b.lut("lut1", nanomap_netlist::TruthTable::xor(2));
        b.connect(s0, 0, lut1, 0).unwrap();
        b.connect(s1, 0, lut1, 1).unwrap();
        let lut2 = b.lut("lut2", nanomap_netlist::TruthTable::and(2));
        b.connect(s0, 0, lut2, 0).unwrap();
        b.connect(flag, 0, lut2, 1).unwrap();
        b.connect(lut1, 0, s0, 0).unwrap();
        b.connect(lut2, 0, s1, 0).unwrap();
        // Muxed register updates.
        let mux1 = b.comb("mux1", CombOp::Mux2 { width: w });
        b.connect(x, 0, mux1, 0).unwrap();
        b.connect(mul_lo, 0, mux1, 1).unwrap();
        b.connect(lut1, 0, mux1, 2).unwrap();
        b.connect(mux1, 0, reg1, 0).unwrap();
        let mux2 = b.comb("mux2", CombOp::Mux2 { width: w });
        b.connect(x, 0, mux2, 0).unwrap();
        b.connect(add, 0, mux2, 1).unwrap();
        b.connect(lut2, 0, mux2, 2).unwrap();
        b.connect(mux2, 0, reg2, 0).unwrap();
        let mux3 = b.comb("mux3", CombOp::Mux2 { width: w });
        b.connect(x, 0, mux3, 0).unwrap();
        b.connect(add, 0, mux3, 1).unwrap();
        b.connect(lut1, 0, mux3, 2).unwrap();
        b.connect(mux3, 0, reg3, 0).unwrap();
        let y = b.output("y", w);
        b.connect(reg3, 0, y, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn fig1_is_a_single_plane() {
        let circuit = fig1_circuit();
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        assert_eq!(planes.num_planes(), 1);
    }

    #[test]
    fn at_product_prefers_folding() {
        // Table 1 scale matters: at realistic circuit sizes AT
        // optimization lands on deep folding (level 1 with unbounded k).
        let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
        let report = flow
            .map_rtl(&fig1_circuit_w(8), Objective::MinAreaDelayProduct)
            .unwrap();
        assert!(
            report.folding_level.unwrap_or(u32::MAX) <= 2,
            "chose level {:?}",
            report.folding_level
        );
        // Folding must use far fewer LEs than the LUT count.
        assert!(report.num_les < report.num_luts / 3);
    }

    #[test]
    fn delay_min_unconstrained_picks_no_folding() {
        let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
        let report = flow
            .map_rtl(&fig1_circuit(), Objective::MinDelay { max_les: None })
            .unwrap();
        assert_eq!(report.folding_level, None);
        assert_eq!(
            report.num_les,
            report.num_luts.max(report.num_ffs.div_ceil(2))
        );
    }

    #[test]
    fn delay_min_with_area_constraint_folds_just_enough() {
        let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
        let unconstrained = flow
            .map_rtl(&fig1_circuit(), Objective::MinDelay { max_les: None })
            .unwrap();
        let budget = unconstrained.num_les / 2;
        let constrained = flow
            .map_rtl(
                &fig1_circuit(),
                Objective::MinDelay {
                    max_les: Some(budget),
                },
            )
            .unwrap();
        assert!(constrained.num_les <= budget);
        assert!(constrained.folding_level.is_some());
        assert!(constrained.delay_ns >= unconstrained.delay_ns);
    }

    #[test]
    fn impossible_constraint_errors() {
        let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
        let err = flow
            .map_rtl(&fig1_circuit(), Objective::MinDelay { max_les: Some(1) })
            .unwrap_err();
        assert!(matches!(err, FlowError::NoFeasibleFolding { .. }));
    }

    #[test]
    fn nram_limit_restricts_folding_level() {
        // k = 4 on a depth-~11 plane: level 1 needs ~11+ sets, so the
        // chosen level must satisfy stages <= 4.
        let arch = ArchParams {
            num_reconf: 4,
            ..ArchParams::paper()
        };
        let flow = NanoMap::new(arch).without_physical();
        let report = flow
            .map_rtl(&fig1_circuit(), Objective::MinAreaDelayProduct)
            .unwrap();
        assert!(report.nram_sets_used <= 4 || report.folding_level.is_none());
    }

    #[test]
    fn full_physical_flow_completes() {
        let flow = NanoMap::new(ArchParams::paper_unbounded()).with_verification();
        let report = flow
            .map_rtl(&fig1_circuit(), Objective::MinAreaDelayProduct)
            .unwrap();
        let physical = report.physical.expect("physical design ran");
        assert!(physical.num_smbs >= 1);
        assert!(physical.routed_delay_ns > 0.0);
        assert!(physical.bitmap_bits > 0);
    }

    #[test]
    fn clean_fabric_mapping_needs_no_recovery() {
        let flow = NanoMap::new(ArchParams::paper_unbounded());
        let report = flow
            .map_rtl(&fig1_circuit(), Objective::MinAreaDelayProduct)
            .unwrap();
        assert!(report.recovery.attempts.is_empty());
        assert_eq!(report.recovery.escalations, 0);
        assert!(!report.recovery.recovered());
        assert_eq!(
            report.recovery.succeeded_with,
            Some(crate::Remedy::Baseline)
        );
    }

    #[test]
    fn moderate_defects_map_via_the_ladder() {
        let flow = NanoMap::new(ArchParams::paper_unbounded())
            .with_defects(nanomap_arch::DefectMap::uniform(0.05, 42));
        let report = flow
            .map_rtl(&fig1_circuit(), Objective::MinAreaDelayProduct)
            .unwrap();
        // Succeeded — possibly after climbing rungs; whatever happened,
        // the log must be internally consistent.
        assert!(report.recovery.succeeded_with.is_some());
        assert!(report.recovery.total_attempts() <= MAX_TOTAL_ATTEMPTS);
        let physical = report.physical.expect("physical design ran");
        assert!(physical.num_smbs >= 1);
        assert!(physical.routed_delay_ns > 0.0);
    }

    #[test]
    fn dead_fabric_fails_cleanly_with_attempt_history() {
        let flow = NanoMap::new(ArchParams::paper_unbounded())
            .with_defects(nanomap_arch::DefectMap::uniform(1.0, 7));
        let err = flow
            .map_rtl(&fig1_circuit(), Objective::MinAreaDelayProduct)
            .unwrap_err();
        let log = err.recovery_log().expect("structured recovery history");
        assert!(!log.attempts.is_empty());
        assert!(log.escalations > 0, "ladder never escalated");
        assert!(log.total_attempts() <= MAX_TOTAL_ATTEMPTS);
        // Every attempt names its phase, remedy and error.
        for a in &log.attempts {
            assert!(a.phase == "place" || a.phase == "route");
            assert!(!a.error.is_empty());
        }
        // Display includes the history summary and the last failure.
        let msg = err.to_string();
        assert!(msg.contains("failed attempt"), "{msg}");
        assert!(msg.contains("last failure"), "{msg}");
    }

    #[test]
    fn verification_runs_clean_on_folded_mapping() {
        let flow = NanoMap::new(ArchParams::paper_unbounded())
            .without_physical()
            .with_verification();
        // Errors out if the folded execution diverges.
        flow.map_rtl(&fig1_circuit(), Objective::MinAreaDelayProduct)
            .unwrap();
    }
}
