//! The exact recovery rung: complete SAT-based defect assignment.
//!
//! Every heuristic rung of the recovery ladder ([`crate::Remedy`]) is
//! incomplete: annealing with defect-aware move rejection can fail on a
//! fabric where a legal assignment *does* exist. This module is the
//! terminal rung that closes that gap. It compiles the slot-assignment
//! problem — exactly one usable slot per packed SMB cluster, at most
//! one cluster per slot, congestion-guard capacity groups — into CNF
//! and hands it to the [`nanomap_sat`] CDCL solver:
//!
//! * **Complete**: if the instance is satisfiable within budget, a model
//!   is found. The flow walks *every* admitted folding candidate through
//!   the rung in preference order — shallow foldings use fewer NRAM
//!   sets, so their slots survive defects the preferred candidate
//!   cannot — and only when each candidate is unsatisfiable on the most
//!   generous grid the ladder ever grants (and with the heuristic
//!   capacity guards *removed*) does the flow fail with a typed
//!   [`crate::FlowError::ExactAssignUnsat`] carrying an
//!   [`ExactUnsatSummary`] naming the defect class that made the fabric
//!   infeasible — instead of the generic `RecoveryExhausted`.
//! * **Precise**: legality uses the per-cluster active-set view
//!   ([`nanomap_pack::Packing::required_sets`]), not the conservative
//!   `num_slices` prefix the annealer checks — a slot whose dead NRAM
//!   set is never active for a given cluster is usable for it.
//! * **Deterministic**: the solver branches by seeded phase saving and
//!   index-ordered VSIDS ties; the model is re-validated by
//!   [`nanomap_place::adopt_assignment`] and then re-routed/re-timed by
//!   the exact same code paths an annealed placement takes, so
//!   same-seed runs stay byte-identical under `qor-diff --exact`.
//! * **Anytime**: the solver polls the flow's [`CancelToken`] at
//!   conflict boundaries (every 128 conflicts) and respects the
//!   `--sat-conflict-budget` cap; an interrupted solve surfaces as
//!   budget exhaustion, never a hang.
//!
//! Grid sizing is monotone: adding slots only adds models. The rung
//! therefore tries the ladder's widened grid first and, on
//! infeasibility, jumps straight to the largest grid it is willing to
//! route — a proof of unsatisfiability is only claimed there.

use std::time::Instant;

use nanomap_arch::{ChannelConfig, DefectMap, Grid};
use nanomap_netlist::{LutNetwork, PlaneSet};
use nanomap_observe::span;
use nanomap_pack::{extract_nets, pack, TemporalDesign};
use nanomap_place::adopt_assignment;
use nanomap_sat::{
    solve_assignment, AssignOutcome, AssignmentProblem, CapacityGroup, SolverOptions,
};

use crate::budget::{CancelToken, Degradation};
use crate::error::FlowError;
use crate::flow::{NanoMap, ResumeProducts};
use crate::folding::FoldingConfig;
use crate::recovery::{RecoveryAttempt, RecoveryLog, Remedy};
use crate::report::{MappingReport, PhaseTimes};

/// Grid growth factor between exact-rung sizing attempts.
const GRID_GROWTH: f64 = 1.3;

/// Grid sizing attempts (the last one is the "most generous grid" on
/// which unsatisfiability may be claimed).
const MAX_GRID_ATTEMPTS: u32 = 3;

/// Seed perturbation separating the SAT branching stream from the
/// annealer's random stream (both derive from the place seed).
const SAT_SEED_SALT: u64 = 0x5EED_CDC1;

/// Why the exact rung proved the fabric unmappable, in terms a user can
/// act on: which defect class dominates the loss.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactUnsatSummary {
    /// SMB clusters that needed slots.
    pub smbs: u32,
    /// Grid the proof was carried out on (width, height) — the most
    /// generous grid the recovery ladder grants.
    pub grid: (u16, u16),
    /// Slots that are entirely dead.
    pub dead_slots: u32,
    /// Slots alive but unusable for *every* cluster because of dead
    /// NRAM configuration sets.
    pub nram_blocked_slots: u32,
    /// Slots usable by at least one cluster.
    pub open_slots: u32,
    /// The solver/precheck infeasibility cause (unsatisfiable-core
    /// summary), e.g. "item 3 has no usable slot".
    pub detail: String,
    /// The dominant defect class: `"dead slots"` or
    /// `"dead NRAM configuration sets"`.
    pub dominant_class: &'static str,
}

impl std::fmt::Display for ExactUnsatSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no legal assignment of {} SMBs on a {}x{} grid: {}; \
             {} slots dead, {} blocked by dead NRAM sets, {} open \
             (dominant defect class: {})",
            self.smbs,
            self.grid.0,
            self.grid.1,
            self.detail,
            self.dead_slots,
            self.nram_blocked_slots,
            self.open_slots,
            self.dominant_class
        )
    }
}

/// Outcome of one invocation of the exact rung.
pub(crate) enum ExactRungResult {
    /// A SAT model routed and timed cleanly.
    Success(Box<MappingReport>, Vec<Degradation>),
    /// Proven infeasible on the largest grid with guards relaxed.
    Infeasible(ExactUnsatSummary),
    /// No proof either way: solver interrupted (budget/cancel) or every
    /// SAT model failed routing. The caller falls back to the generic
    /// exhaustion errors.
    Exhausted,
    /// A non-recoverable flow error (I/O, verification, internal).
    Fatal(FlowError),
}

/// Congestion guards: when wire defects are heavy, cap how many
/// clusters the solver may pile into any single row or column, so the
/// model it returns is not a routing-hostile clump. The caps are
/// generous (never below 75 % of a line even on a dead fabric) and are
/// *relaxed before* unsatisfiability is claimed — they trade solver
/// completeness for routability only provisionally.
fn congestion_groups(
    defects: &DefectMap,
    grid: Grid,
    channels: &ChannelConfig,
) -> Vec<CapacityGroup> {
    let counts = defects.tally(grid, channels);
    let wire_live = if counts.total_wires == 0 {
        1.0
    } else {
        1.0 - f64::from(counts.dead_wires) / f64::from(counts.total_wires)
    };
    let mut groups = Vec::new();
    let row_cap = (f64::from(grid.width) * (0.5 + wire_live / 2.0)).ceil() as usize;
    if row_cap < grid.width as usize {
        for y in 0..grid.height {
            let slots = (0..grid.width)
                .map(|x| u32::from(y) * u32::from(grid.width) + u32::from(x))
                .collect();
            groups.push(CapacityGroup {
                label: format!("row {y}"),
                slots,
                cap: row_cap,
            });
        }
    }
    let col_cap = (f64::from(grid.height) * (0.5 + wire_live / 2.0)).ceil() as usize;
    if col_cap < grid.height as usize {
        for x in 0..grid.width {
            let slots = (0..grid.height)
                .map(|y| u32::from(y) * u32::from(grid.width) + u32::from(x))
                .collect();
            groups.push(CapacityGroup {
                label: format!("column {x}"),
                slots,
                cap: col_cap,
            });
        }
    }
    groups
}

impl NanoMap {
    /// Runs the exact SAT-based assignment rung for one folding
    /// candidate, after the whole heuristic ladder has failed. The flow
    /// walks every admitted candidate through this in preference order:
    /// a shallow folding with fewer NRAM sets is often solvable on a
    /// fabric where the deep preferred candidate is provably not.
    ///
    /// Per grid size: re-evaluates the candidate (deterministic),
    /// re-packs, encodes per-cluster slot domains from the precise
    /// active-set view, solves, re-validates the model through
    /// [`adopt_assignment`], and re-runs routing/timing on the adopted
    /// placement. A routed model returns `Success`; a proof of
    /// unsatisfiability on the largest grid (guards relaxed) returns
    /// `Infeasible`; an interrupted solve or a model that will not
    /// route returns `Exhausted`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exact_assign_rung(
        &self,
        net: &LutNetwork,
        planes: &PlaneSet,
        config: FoldingConfig,
        cand_rank: usize,
        times: PhaseTimes,
        base_degradations: &[Degradation],
        recovery: &mut RecoveryLog,
        token: &CancelToken,
    ) -> ExactRungResult {
        let overrides =
            Remedy::ExactAssign.apply(self.place_options, self.route_options, self.channels);
        let base_slack = overrides.place.grid_slack;
        let last = MAX_GRID_ATTEMPTS - 1;
        let mut sizing = 0u32;
        while sizing < MAX_GRID_ATTEMPTS {
            if token.expired() {
                return ExactRungResult::Exhausted;
            }
            let attempt_start = Instant::now();
            let slack = base_slack * GRID_GROWTH.powi(sizing as i32);

            // Re-evaluate to own the schedules (FDS is deterministic,
            // so this reproduces the heuristic rungs' logic mapping
            // bit for bit), then build the temporal design and packing
            // the encoder works from.
            let (eval, _) = match self.evaluate_budgeted(net, planes, config, token) {
                Ok(v) => v,
                Err(e) => return ExactRungResult::Fatal(e),
            };
            let design = match TemporalDesign::new(net, planes, eval.graphs, eval.schedules) {
                Ok(d) => d,
                Err(e) => return ExactRungResult::Fatal(e.into()),
            };
            let packing = match pack(&design, &self.arch, self.pack_options) {
                Ok(p) => p,
                Err(e) => return ExactRungResult::Fatal(e.into()),
            };
            let n = packing.num_smbs;
            let grid = Grid::with_capacity(((f64::from(n) * slack).ceil() as u32).max(n));
            let required = packing.required_sets(&design);

            // Per-cluster slot domains from the precise active-set
            // view; this is where the rung sees slots the heuristic
            // prefix check would waste.
            let allowed: Vec<Vec<u32>> = required
                .iter()
                .map(|sets| {
                    (0..grid.num_slots())
                        .filter(|&s| {
                            self.defects
                                .slot_usable_for_sets(grid.pos(s as usize), sets)
                        })
                        .collect()
                })
                .collect();
            let problem = AssignmentProblem {
                num_slots: grid.num_slots(),
                allowed,
                groups: congestion_groups(&self.defects, grid, &overrides.channels),
            };
            let options = SolverOptions {
                seed: overrides
                    .place
                    .seed
                    .wrapping_add(SAT_SEED_SALT)
                    .wrapping_add(u64::from(sizing)),
                conflict_budget: self.sat_conflict_budget,
                ..SolverOptions::default()
            };

            let mut sat_span = span!("exact-assign", smbs = n);
            sat_span.attr("slots", u64::from(grid.num_slots()));
            sat_span.attr("sizing", u64::from(sizing));
            let (mut outcome, mut stats, num_vars) =
                solve_assignment(&problem, options.clone(), token);
            // Capacity guards are heuristic; a completeness claim must
            // not rest on them. Relax and re-solve before believing an
            // UNSAT answer.
            if matches!(outcome, AssignOutcome::Infeasible(_)) && !problem.groups.is_empty() {
                sat_span.attr("relaxed_guards", 1u64);
                let bare = AssignmentProblem {
                    num_slots: problem.num_slots,
                    allowed: problem.allowed.clone(),
                    groups: Vec::new(),
                };
                let (o, s, _) = solve_assignment(&bare, options, token);
                stats.decisions += s.decisions;
                stats.conflicts += s.conflicts;
                stats.propagations += s.propagations;
                stats.restarts += s.restarts;
                outcome = o;
            }
            sat_span.attr("vars", u64::from(num_vars));
            sat_span.attr("decisions", stats.decisions);
            sat_span.attr("conflicts", stats.conflicts);
            sat_span.attr("learned", stats.learned);
            drop(sat_span);
            nanomap_observe::incr("sat.decisions", stats.decisions);
            nanomap_observe::incr("sat.conflicts", stats.conflicts);
            nanomap_observe::incr("sat.learned", stats.learned);
            nanomap_observe::incr("flow.exact_assign.solves", 1);

            match outcome {
                AssignOutcome::Assigned(slot_of_smb) => {
                    // Trust boundary: re-validate the model from
                    // scratch before adopting it.
                    let nets = extract_nets(&design, &packing);
                    let adopted = adopt_assignment(
                        &design,
                        &packing,
                        &nets,
                        &overrides.channels,
                        &self.timing,
                        overrides.place.weights,
                        &self.defects,
                        &required,
                        grid,
                        &slot_of_smb,
                    );
                    let pos_of = match adopted {
                        Ok(placement) => placement.pos_of,
                        Err(e) => {
                            // An encoder/decoder invariant broke; this
                            // is a bug, not a fabric property. Fail
                            // loudly rather than claim infeasibility.
                            return ExactRungResult::Fatal(FlowError::Internal {
                                detail: format!("SAT model failed adoption: {e}"),
                            });
                        }
                    };
                    drop(design);
                    // Re-evaluate for the finishing pipeline (it
                    // consumes the schedules) and inject the solver
                    // placement; routing, timing, bitmaps and
                    // verification all run the normal path.
                    let (eval, fds_degradation) =
                        match self.evaluate_budgeted(net, planes, config, token) {
                            Ok(v) => v,
                            Err(e) => return ExactRungResult::Fatal(e),
                        };
                    let mut degradations = base_degradations.to_vec();
                    degradations.extend(fds_degradation);
                    match self.finish_candidate(
                        net,
                        planes,
                        config,
                        eval,
                        times,
                        &overrides,
                        token,
                        None,
                        ResumeProducts {
                            packing: Some(packing),
                            placement: Some((grid, pos_of)),
                        },
                        &mut degradations,
                    ) {
                        Ok(report) => {
                            nanomap_observe::incr("flow.exact_assign.rescues", 1);
                            return ExactRungResult::Success(Box::new(report), degradations);
                        }
                        Err(e @ (FlowError::Place(_) | FlowError::Route(_))) => {
                            // A legal assignment that will not route;
                            // try again with more room.
                            recovery.record(RecoveryAttempt {
                                attempt: recovery.total_attempts(),
                                candidate: cand_rank,
                                folding_level: config.level,
                                stages: config.stages,
                                remedy: Remedy::ExactAssign,
                                phase: match &e {
                                    FlowError::Place(_) => "place",
                                    _ => "route",
                                },
                                error: e.to_string(),
                                wall_us: attempt_start.elapsed().as_micros() as u64,
                            });
                            sizing += 1;
                        }
                        Err(e) => return ExactRungResult::Fatal(e),
                    }
                }
                AssignOutcome::Infeasible(cause) => {
                    recovery.record(RecoveryAttempt {
                        attempt: recovery.total_attempts(),
                        candidate: cand_rank,
                        folding_level: config.level,
                        stages: config.stages,
                        remedy: Remedy::ExactAssign,
                        phase: "exact-assign",
                        error: format!(
                            "infeasible on {}x{} grid: {cause}",
                            grid.width, grid.height
                        ),
                        wall_us: attempt_start.elapsed().as_micros() as u64,
                    });
                    if sizing < last {
                        // Feasibility is monotone in grid size: skip
                        // the intermediate size, go straight to the
                        // largest grid for the proof.
                        sizing = last;
                        continue;
                    }
                    // Proven infeasible on the most generous grid with
                    // guards relaxed: summarize which defect class is
                    // to blame.
                    let mut dead = 0u32;
                    let mut blocked = 0u32;
                    let mut open = 0u32;
                    for s in 0..grid.num_slots() {
                        let pos = grid.pos(s as usize);
                        if self.defects.slot_defective(pos) {
                            dead += 1;
                        } else if required
                            .iter()
                            .any(|sets| self.defects.slot_usable_for_sets(pos, sets))
                        {
                            open += 1;
                        } else {
                            blocked += 1;
                        }
                    }
                    nanomap_observe::incr("flow.exact_assign.unsat", 1);
                    return ExactRungResult::Infeasible(ExactUnsatSummary {
                        smbs: n,
                        grid: (grid.width, grid.height),
                        dead_slots: dead,
                        nram_blocked_slots: blocked,
                        open_slots: open,
                        detail: cause.to_string(),
                        dominant_class: if dead >= blocked {
                            "dead slots"
                        } else {
                            "dead NRAM configuration sets"
                        },
                    });
                }
                AssignOutcome::Interrupted(reason) => {
                    recovery.record(RecoveryAttempt {
                        attempt: recovery.total_attempts(),
                        candidate: cand_rank,
                        folding_level: config.level,
                        stages: config.stages,
                        remedy: Remedy::ExactAssign,
                        phase: "exact-assign",
                        error: format!("solver interrupted: {reason}"),
                        wall_us: attempt_start.elapsed().as_micros() as u64,
                    });
                    return ExactRungResult::Exhausted;
                }
            }
        }
        ExactRungResult::Exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_arch::{ArchParams, SmbPos};
    use nanomap_netlist::rtl::{CombOp, RtlBuilder, RtlCircuit};
    use nanomap_techmap::{expand, ExpandOptions};

    use crate::folding::candidate_configs;
    use crate::objective::Objective;

    /// A two-plane feed-forward pipeline: an adder plane feeding a
    /// multiplier plane through a register bank. Multi-plane designs
    /// pack clusters whose active NRAM sets are proper subsets of the
    /// full schedule — the precision gap the exact rung exploits.
    fn two_plane_circuit() -> RtlCircuit {
        let w = 8;
        let mut b = RtlBuilder::new("gap2");
        let x = b.input("x", w);
        let y = b.input("y", w);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: w });
        b.connect(x, 0, add, 0).unwrap();
        b.connect(y, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        let reg = b.register("reg", w);
        b.connect(add, 0, reg, 0).unwrap();
        let mul = b.comb("mul", CombOp::Mul { width: w });
        b.connect(reg, 0, mul, 0).unwrap();
        b.connect(reg, 0, mul, 1).unwrap();
        let lo = b.comb(
            "lo",
            CombOp::Slice {
                width: 2 * w,
                lo: 0,
                out_width: w,
            },
        );
        b.connect(mul, 0, lo, 0).unwrap();
        let out = b.output("o", w);
        b.connect(lo, 0, out, 0).unwrap();
        b.finish().unwrap()
    }

    /// An unbalanced feed-forward pipeline: a wide adder-tree plane
    /// feeding progressively narrower planes. Under shared folding the
    /// narrow planes' clusters are active in a small fraction of the
    /// NRAM sets, widening the prefix-vs-precise legality gap on
    /// uniformly defective fabrics.
    fn unbalanced_pipeline(w: u32, terms: u32) -> RtlCircuit {
        let mut b = RtlBuilder::new("pipe");
        let gnd = b.constant("gnd", 1, 0);
        // Plane 0: a reduction tree over `terms` inputs.
        let mut stage: Vec<_> = (0..terms).map(|i| b.input(&format!("x{i}"), w)).collect();
        let mut level = 0u32;
        while stage.len() > 1 {
            let mut next = Vec::new();
            for (j, pair) in stage.chunks(2).enumerate() {
                if pair.len() == 2 {
                    let add = b.comb(&format!("a{level}_{j}"), CombOp::Add { width: w });
                    b.connect(pair[0], 0, add, 0).unwrap();
                    b.connect(pair[1], 0, add, 1).unwrap();
                    b.connect(gnd, 0, add, 2).unwrap();
                    next.push(add);
                } else {
                    next.push(pair[0]);
                }
            }
            stage = next;
            level += 1;
        }
        let r0 = b.register("r0", w);
        b.connect(stage[0], 0, r0, 0).unwrap();
        // Plane 1: a single increment.
        let one = b.constant("one", w, 1);
        let inc = b.comb("inc", CombOp::Add { width: w });
        b.connect(r0, 0, inc, 0).unwrap();
        b.connect(one, 0, inc, 1).unwrap();
        b.connect(gnd, 0, inc, 2).unwrap();
        let r1 = b.register("r1", w);
        b.connect(inc, 0, r1, 0).unwrap();
        // Plane 2: one more, keeping the tail planes tiny.
        let dec = b.comb("dec", CombOp::Add { width: w });
        b.connect(r1, 0, dec, 0).unwrap();
        b.connect(one, 0, dec, 1).unwrap();
        b.connect(gnd, 0, dec, 2).unwrap();
        let out = b.output("o", w);
        b.connect(dec, 0, out, 0).unwrap();
        b.finish().unwrap()
    }

    /// A shallow multi-plane relay: `planes` register-separated stages,
    /// each one level of wide bitwise logic. Every folding candidate of
    /// a multi-plane design (including no-folding) spreads its NRAM
    /// sets across the planes, so the heuristic prefix view decays as
    /// `(1-r)^(1+sets)` while each cluster only needs its own plane's
    /// sets alive — a wide natural window where heuristics starve but
    /// an exact assignment exists.
    fn relay_circuit(w: u32, planes: u32) -> RtlCircuit {
        let mut b = RtlBuilder::new("relay");
        let x = b.input("x", w);
        let k = b.input("k", w);
        let mut carry = x;
        for p in 0..planes {
            let fold = b.comb(&format!("fold{p}"), CombOp::Xor { width: w });
            b.connect(carry, 0, fold, 0).unwrap();
            b.connect(k, 0, fold, 1).unwrap();
            let gate = b.comb(&format!("gate{p}"), CombOp::Or { width: w });
            b.connect(fold, 0, gate, 0).unwrap();
            b.connect(x, 0, gate, 1).unwrap();
            if p + 1 < planes {
                let r = b.register(&format!("r{p}"), w);
                b.connect(gate, 0, r, 0).unwrap();
                carry = r;
            } else {
                let out = b.output("o", w);
                b.connect(gate, 0, out, 0).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    #[ignore = "diagnostic: scans the relay circuit for natural rescue windows"]
    fn diagnose_relay_window() {
        let net = expand(&relay_circuit(48, 4), ExpandOptions::default()).unwrap();
        for rate in [0.10, 0.15, 0.20, 0.25, 0.30] {
            for seed in 1..=4u64 {
                let exact = NanoMap::new(ArchParams::paper_unbounded())
                    .with_defects(DefectMap::uniform(rate, seed))
                    .with_exact_recovery()
                    .map(&net, Objective::MinAreaDelayProduct);
                match &exact {
                    Ok(r) if r.recovery.succeeded_with == Some(Remedy::ExactAssign) => {
                        println!("rate={rate} seed={seed} RESCUE");
                    }
                    Ok(r) => {
                        let p = r.physical.as_ref().unwrap();
                        println!(
                            "rate={rate} seed={seed} heur-ok level={:?} sets={} n={} grid={:?} [{}]",
                            r.folding_level,
                            r.nram_sets_used,
                            p.num_smbs,
                            p.grid,
                            r.recovery.summary()
                        );
                    }
                    Err(FlowError::ExactAssignUnsat { summary, .. }) => {
                        println!("rate={rate} seed={seed} unsat: {summary}");
                    }
                    Err(e) => println!("rate={rate} seed={seed} other: {e}"),
                }
            }
        }
    }

    #[test]
    #[ignore = "diagnostic: scans the unbalanced pipeline for natural rescue windows"]
    fn diagnose_pipeline_window() {
        let net = expand(&unbalanced_pipeline(8, 8), ExpandOptions::default()).unwrap();
        for rate in [0.10, 0.15, 0.20, 0.25, 0.30] {
            for seed in 1..=4u64 {
                let exact = NanoMap::new(ArchParams::paper_unbounded())
                    .with_defects(DefectMap::uniform(rate, seed))
                    .with_exact_recovery()
                    .map(&net, Objective::MinAreaDelayProduct);
                let tag = match &exact {
                    Ok(r) if r.recovery.succeeded_with == Some(Remedy::ExactAssign) => "RESCUE",
                    Ok(_) => "heur-ok",
                    Err(FlowError::ExactAssignUnsat { .. }) => "unsat",
                    Err(e) => {
                        println!("rate={rate} seed={seed} other: {e}");
                        continue;
                    }
                };
                println!("rate={rate} seed={seed} {tag}");
            }
        }
    }

    #[test]
    #[ignore = "diagnostic: prints per-candidate packing structure"]
    fn diagnose_gap() {
        let net = expand(&two_plane_circuit(), ExpandOptions::default()).unwrap();
        let flow = NanoMap::new(ArchParams::paper_unbounded());
        let planes = PlaneSet::extract(&net).unwrap();
        println!(
            "planes={} depth_max={}",
            planes.num_planes(),
            planes.depth_max()
        );
        let token = CancelToken::with_budget_ms(None);
        for config in candidate_configs(&planes, flow.arch.num_reconf) {
            let Ok((eval, _)) = flow.evaluate_budgeted(&net, &planes, config, &token) else {
                println!("{config:?}: infeasible");
                continue;
            };
            let design = TemporalDesign::new(&net, &planes, eval.graphs, eval.schedules).unwrap();
            let packing = pack(&design, &flow.arch, flow.pack_options).unwrap();
            let required = packing.required_sets(&design);
            let num_sets = required
                .iter()
                .flat_map(|s| s.iter())
                .max()
                .map_or(0, |m| m + 1);
            let mut users = vec![0u32; num_sets as usize];
            for sets in &required {
                for &s in sets {
                    users[s as usize] += 1;
                }
            }
            println!(
                "{:?}: les={} delay={:.2} n={} sets={} users={:?}",
                config, eval.les, eval.delay_ns, packing.num_smbs, num_sets, users
            );
        }
    }

    /// A fabric that starves the heuristic prefix view while staying
    /// assignable under the precise per-cluster view: NRAM set 0 is
    /// dead at every coordinate except (0, 0). The prefix check
    /// `slot_usable(pos, num_slices)` sees exactly one usable slot, so
    /// every heuristic placement attempt of every folding candidate
    /// (all of which pack at least two clusters) fails with "too many
    /// defects". The exact encoder knows only one cluster is active in
    /// set 0 — that cluster takes (0, 0) and the rest spread over the
    /// otherwise healthy grid.
    fn prefix_starved_fabric() -> DefectMap {
        let mut map = DefectMap::none();
        for x in 0..32u16 {
            for y in 0..32u16 {
                if (x, y) != (0, 0) {
                    map.kill_nram_set(SmbPos { x, y }, 0);
                }
            }
        }
        map
    }

    fn gap_network() -> LutNetwork {
        expand(&two_plane_circuit(), ExpandOptions::default()).expect("expands")
    }

    /// The heuristic ladder alone must exhaust on the prefix-starved
    /// fabric — this is the premise of the rescue test below, asserted
    /// separately so a placer that learns the precise view shows up
    /// here first.
    #[test]
    fn heuristics_alone_exhaust_on_a_prefix_starved_fabric() {
        let err = NanoMap::new(ArchParams::paper_unbounded())
            .with_defects(prefix_starved_fabric())
            .map(&gap_network(), Objective::MinAreaDelayProduct)
            .expect_err("the prefix view sees a single usable slot");
        assert!(
            matches!(err, FlowError::RecoveryExhausted { .. }),
            "expected RecoveryExhausted, got: {err}"
        );
    }

    /// End-to-end rescue: the exact rung finds the assignment the
    /// annealer cannot, and the solver placement rides the normal
    /// route/timing path to a complete physical report.
    #[test]
    fn exact_rung_rescues_a_prefix_starved_fabric() {
        let report = NanoMap::new(ArchParams::paper_unbounded())
            .with_defects(prefix_starved_fabric())
            .with_exact_recovery()
            .map(&gap_network(), Objective::MinAreaDelayProduct)
            .expect("the per-cluster view has a legal assignment");
        assert_eq!(report.recovery.succeeded_with, Some(Remedy::ExactAssign));
        assert!(report.recovery.recovered());
        let physical = report.physical.expect("the rescue is a full mapping");
        assert!(physical.routed_delay_ns > 0.0);
        assert!(physical.num_smbs >= 2);
    }

    /// Same seed, same fabric: the rescue is byte-deterministic through
    /// placement, routing and timing.
    #[test]
    fn exact_rescue_is_deterministic() {
        let run = || {
            NanoMap::new(ArchParams::paper_unbounded())
                .with_defects(prefix_starved_fabric())
                .with_exact_recovery()
                .map(&gap_network(), Objective::MinAreaDelayProduct)
                .expect("maps via the exact rung")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.folding_level, b.folding_level);
        assert_eq!(a.num_les, b.num_les);
        let (pa, pb) = (a.physical.unwrap(), b.physical.unwrap());
        assert_eq!(pa.placement_cost, pb.placement_cost);
        assert_eq!(pa.routed_delay_ns, pb.routed_delay_ns);
        assert_eq!(pa.bitmap_bits, pb.bitmap_bits);
    }
}
