//! Quality-of-results (QoR) snapshots and the regression gate.
//!
//! A [`QorReport`] freezes the numbers the paper's result tables are made
//! of — LUT count, folding level, LE usage, SMBs, critical-path delay,
//! routed wirelength, channel width — plus phase wall-clock times and the
//! peak values of every convergence series, into one flat, deterministic
//! metric map. [`QorDocument`] bundles one report per circuit with a
//! schema tag and round-trips through the observe crate's serde-free JSON
//! emitter/parser.
//!
//! [`diff_documents`] compares a freshly generated document against a
//! committed baseline with per-metric tolerances ([`tolerance_for`]):
//! structural metrics (counts, levels) must match exactly, analytic
//! floats get a tight relative band, physical-design outcomes (routed
//! delay, wirelength) a looser one, and wall-clock times are reported but
//! never gated. The `nanomap qor-diff` subcommand and CI's `qor` job are
//! thin wrappers over this module.

use std::collections::BTreeMap;

use nanomap_arch::ChannelConfig;
use nanomap_observe::{json, JsonValue, MetricsSnapshot};

use crate::diff::number_map;
pub use crate::diff::{has_regression, DiffEntry, DiffStatus};
use crate::report::MappingReport;

/// Schema tag stamped on every QoR document.
pub const QOR_SCHEMA: &str = crate::artifact::versions::QOR;

/// Encoding of "no folding" in the `folding_level` metric.
const NO_FOLDING: f64 = -1.0;

/// QoR snapshot of one circuit's mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct QorReport {
    /// Circuit name.
    pub circuit: String,
    /// Gateable metrics, name → value (sorted, deterministic).
    pub metrics: BTreeMap<String, f64>,
    /// Wall-clock milliseconds per phase — reported, never gated.
    pub phase_times: BTreeMap<String, f64>,
}

impl QorReport {
    /// Builds a QoR snapshot from a finished mapping, the channel
    /// configuration it targeted, and the observability snapshot of the
    /// run (for convergence-series peaks).
    pub fn from_mapping(
        report: &MappingReport,
        channels: &ChannelConfig,
        snapshot: &MetricsSnapshot,
    ) -> Self {
        let mut metrics = BTreeMap::new();
        let mut m = |name: &str, value: f64| {
            metrics.insert(name.to_string(), value);
        };
        m("num_luts", f64::from(report.num_luts));
        m("num_ffs", f64::from(report.num_ffs));
        m(
            "folding_level",
            report.folding_level.map_or(NO_FOLDING, f64::from),
        );
        m("stages", f64::from(report.stages));
        m("num_les", f64::from(report.num_les));
        m("delay_ns", report.delay_ns);
        m("area_um2", report.area_um2);
        m(
            "channel_width",
            f64::from(channels.direct + channels.length1 + channels.length4 + channels.global),
        );
        if let Some(p) = &report.physical {
            m("num_smbs", f64::from(p.num_smbs));
            m("critical_path_delay_ns", p.routed_delay_ns);
            m("routed_wirelength", p.usage.total() as f64);
        }
        // Budget telemetry rides along only when it happened, so
        // unbudgeted runs stay byte-identical to pre-budget baselines.
        if report.degraded {
            m("degraded", 1.0);
            m("degraded_phases", report.degradations.len() as f64);
        }
        for (&name, series) in &snapshot.series {
            if series.count > 0 {
                m(&format!("peak.{name}"), series.peak());
            }
        }
        let t = report.phase_times;
        let mut phase_times: BTreeMap<String, f64> = [
            ("folding_select_ms", t.folding_select_ms),
            ("fds_ms", t.fds_ms),
            ("pack_ms", t.pack_ms),
            ("place_ms", t.place_ms),
            ("route_ms", t.route_ms),
            ("bitmap_ms", t.bitmap_ms),
            ("verify_ms", t.verify_ms),
            ("explain_ms", t.explain_ms),
            ("total_ms", t.total_ms),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        if let Some(remaining) = t.budget_ms_remaining {
            phase_times.insert("budget_ms_remaining".to_string(), remaining);
        }
        Self {
            circuit: report.circuit.clone(),
            metrics,
            phase_times,
        }
    }

    /// Deterministic JSON serialization (keys sorted by `BTreeMap`).
    pub fn to_json(&self) -> JsonValue {
        let mut metrics = JsonValue::object();
        for (name, &value) in &self.metrics {
            metrics.set(name, value);
        }
        let mut times = JsonValue::object();
        for (name, &value) in &self.phase_times {
            times.set(name, value);
        }
        JsonValue::object()
            .with("circuit", self.circuit.as_str())
            .with("metrics", metrics)
            .with("phase_times", times)
    }

    /// Parses one report out of its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let circuit = value
            .get("circuit")
            .and_then(JsonValue::as_str)
            .ok_or("report missing string `circuit`")?
            .to_string();
        Ok(Self {
            circuit,
            metrics: number_map(value.get("metrics"), "metrics")?,
            phase_times: number_map(value.get("phase_times"), "phase_times")?,
        })
    }
}

/// A QoR document: one report per circuit plus the schema tag.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QorDocument {
    /// Per-circuit reports in insertion order.
    pub reports: Vec<QorReport>,
}

impl QorDocument {
    /// Bundles reports into a document.
    pub fn new(reports: Vec<QorReport>) -> Self {
        Self { reports }
    }

    /// Looks up a circuit's report by name.
    pub fn circuit(&self, name: &str) -> Option<&QorReport> {
        self.reports.iter().find(|r| r.circuit == name)
    }

    /// Deterministic JSON serialization with the schema tag.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object().with("schema", QOR_SCHEMA).with(
            "circuits",
            JsonValue::Array(self.reports.iter().map(QorReport::to_json).collect()),
        )
    }

    /// Parses a document from JSON text.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, a wrong/missing schema tag, or malformed
    /// reports.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        match value.get("schema").and_then(JsonValue::as_str) {
            Some(QOR_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported QoR schema `{other}`")),
            None => return Err("missing `schema` tag (not a QoR document?)".into()),
        }
        let circuits = value
            .get("circuits")
            .and_then(JsonValue::as_array)
            .ok_or("missing `circuits` array")?;
        let reports = circuits
            .iter()
            .map(QorReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { reports })
    }
}

/// Relative tolerance for a metric, or `None` for report-only metrics
/// that never gate.
///
/// Structural results of the deterministic flow (counts, folding level,
/// channel width) must match exactly. Analytic model outputs get a tight
/// band for cross-platform float noise. Physical-design outcomes sit
/// downstream of `exp()`/`sqrt()` in the annealer — libm differences can
/// legitimately shift them a little — so they get a looser band, and the
/// convergence-series peaks looser still.
pub fn tolerance_for(metric: &str) -> Option<f64> {
    match metric {
        "num_luts" | "num_ffs" | "folding_level" | "stages" | "num_les" | "num_smbs"
        | "channel_width" => Some(0.0),
        "delay_ns" | "area_um2" => Some(0.01),
        "critical_path_delay_ns" => Some(0.10),
        "routed_wirelength" => Some(0.20),
        name if name.starts_with("peak.") => Some(0.30),
        _ => None,
    }
}

/// Compares a new document against a baseline, metric by metric.
///
/// Gate-relevant entries come first (per circuit, in metric order);
/// `phase_times` are appended as [`DiffStatus::Info`] entries. A circuit
/// present in the baseline but missing from the new document yields one
/// failing entry named `<circuit>` itself.
pub fn diff_documents(baseline: &QorDocument, new: &QorDocument) -> Vec<DiffEntry> {
    diff_documents_with(baseline, new, false)
}

/// Zero-tolerance variant of [`diff_documents`]: every gated metric must
/// be *exactly* equal (the per-metric tolerance bands collapse to zero).
///
/// This is the determinism gate — the flow is a pure function of its
/// inputs, so a defect-free rerun must reproduce the committed baseline
/// bit for bit. Wall-clock phase times remain informational.
pub fn diff_documents_exact(baseline: &QorDocument, new: &QorDocument) -> Vec<DiffEntry> {
    diff_documents_with(baseline, new, true)
}

fn diff_documents_with(baseline: &QorDocument, new: &QorDocument, exact: bool) -> Vec<DiffEntry> {
    let mut entries = Vec::new();
    for base in &baseline.reports {
        let Some(fresh) = new.circuit(&base.circuit) else {
            entries.push(DiffEntry {
                circuit: base.circuit.clone(),
                metric: "<circuit>".into(),
                baseline: None,
                new: None,
                tolerance: None,
                status: DiffStatus::MissingInNew,
            });
            continue;
        };
        entries.extend(diff_reports(base, fresh, exact));
    }
    for fresh in &new.reports {
        if baseline.circuit(&fresh.circuit).is_none() {
            entries.push(DiffEntry {
                circuit: fresh.circuit.clone(),
                metric: "<circuit>".into(),
                baseline: None,
                new: None,
                tolerance: None,
                status: DiffStatus::MissingInBaseline,
            });
        }
    }
    entries
}

fn diff_reports(base: &QorReport, fresh: &QorReport, exact: bool) -> Vec<DiffEntry> {
    let mut entries = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        base.metrics.keys().chain(fresh.metrics.keys()).collect();
    for name in names {
        let b = base.metrics.get(name).copied();
        let n = fresh.metrics.get(name).copied();
        let tolerance = if exact {
            tolerance_for(name).map(|_| 0.0)
        } else {
            tolerance_for(name)
        };
        let status = match (b, n, tolerance) {
            (Some(_), None, Some(_)) => DiffStatus::MissingInNew,
            (None, Some(_), _) => DiffStatus::MissingInBaseline,
            (Some(_), None, None) => DiffStatus::Info,
            (Some(b), Some(n), Some(tol)) => {
                // Symmetric band: improvements beyond tolerance also fail,
                // forcing the baseline to stay honest. Exact mode demands
                // bit-for-bit equality.
                let allowed = if exact { 0.0 } else { tol * b.abs() + 1e-9 };
                if (n - b).abs() <= allowed {
                    DiffStatus::Ok
                } else {
                    DiffStatus::Regression
                }
            }
            (Some(_), Some(_), None) => DiffStatus::Info,
            (None, None, _) => unreachable!("name came from one of the maps"),
        };
        entries.push(DiffEntry {
            circuit: base.circuit.clone(),
            metric: name.clone(),
            baseline: b,
            new: n,
            tolerance,
            status,
        });
    }
    for (name, &b) in &base.phase_times {
        entries.push(DiffEntry {
            circuit: base.circuit.clone(),
            metric: format!("time.{name}"),
            baseline: Some(b),
            new: fresh.phase_times.get(name).copied(),
            tolerance: None,
            status: DiffStatus::Info,
        });
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(circuit: &str, metrics: &[(&str, f64)]) -> QorReport {
        QorReport {
            circuit: circuit.into(),
            metrics: metrics.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            phase_times: [("total_ms".to_string(), 12.5)].into_iter().collect(),
        }
    }

    #[test]
    fn document_round_trips_through_json() {
        let doc = QorDocument::new(vec![report(
            "ex1",
            &[
                ("num_les", 34.0),
                ("delay_ns", 17.02),
                ("folding_level", 1.0),
                ("peak.place.cost", 123.456),
            ],
        )]);
        let text = doc.to_json().to_pretty_string();
        let parsed = QorDocument::parse(&text).expect("parses");
        assert_eq!(parsed, doc);
        // Serialization is deterministic.
        assert_eq!(text, parsed.to_json().to_pretty_string());
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(QorDocument::parse(r#"{"schema":"v999","circuits":[]}"#).is_err());
        assert!(QorDocument::parse(r#"{"circuits":[]}"#).is_err());
        assert!(QorDocument::parse("not json").is_err());
    }

    #[test]
    fn identical_documents_pass() {
        let doc = QorDocument::new(vec![report(
            "ex1",
            &[("num_les", 34.0), ("delay_ns", 17.0)],
        )]);
        let entries = diff_documents(&doc, &doc);
        assert!(!has_regression(&entries));
        assert!(entries.iter().any(|e| e.metric == "time.total_ms"));
    }

    #[test]
    fn exact_metrics_fail_on_any_change() {
        let base = QorDocument::new(vec![report("ex1", &[("num_les", 34.0)])]);
        let new = QorDocument::new(vec![report("ex1", &[("num_les", 35.0)])]);
        let entries = diff_documents(&base, &new);
        assert!(has_regression(&entries));
        let e = entries.iter().find(|e| e.metric == "num_les").unwrap();
        assert_eq!(e.status, DiffStatus::Regression);
    }

    #[test]
    fn tolerant_metrics_absorb_small_drift_both_ways() {
        let base = QorDocument::new(vec![report("ex1", &[("routed_wirelength", 100.0)])]);
        for (value, ok) in [(110.0, true), (85.0, true), (121.0, false), (79.0, false)] {
            let new = QorDocument::new(vec![report("ex1", &[("routed_wirelength", value)])]);
            let entries = diff_documents(&base, &new);
            assert_eq!(!has_regression(&entries), ok, "value {value}");
        }
    }

    #[test]
    fn missing_circuit_or_metric_fails_missing_baseline_informs() {
        let base = QorDocument::new(vec![report("ex1", &[("num_les", 34.0)])]);
        let gone = QorDocument::new(vec![]);
        assert!(has_regression(&diff_documents(&base, &gone)));
        // Metric disappeared.
        let dropped = QorDocument::new(vec![report("ex1", &[])]);
        assert!(has_regression(&diff_documents(&base, &dropped)));
        // New metric appeared: informational only.
        let grown = QorDocument::new(vec![report("ex1", &[("num_les", 34.0), ("num_smbs", 3.0)])]);
        assert!(!has_regression(&diff_documents(&base, &grown)));
    }

    #[test]
    fn exact_mode_rejects_any_drift_in_gated_metrics() {
        let base = QorDocument::new(vec![report(
            "ex1",
            &[("routed_wirelength", 100.0), ("delay_ns", 17.02)],
        )]);
        // Drift well inside the normal tolerance band still fails exactly.
        let drifted = QorDocument::new(vec![report(
            "ex1",
            &[("routed_wirelength", 101.0), ("delay_ns", 17.02)],
        )]);
        assert!(!has_regression(&diff_documents(&base, &drifted)));
        assert!(has_regression(&diff_documents_exact(&base, &drifted)));
        // A perfect reproduction passes both modes.
        assert!(!has_regression(&diff_documents_exact(&base, &base.clone())));
        // Unknown (report-only) metrics stay informational in exact mode.
        let exotic_a = QorDocument::new(vec![report("ex1", &[("exotic_metric", 1.0)])]);
        let exotic_b = QorDocument::new(vec![report("ex1", &[("exotic_metric", 2.0)])]);
        assert!(!has_regression(&diff_documents_exact(&exotic_a, &exotic_b)));
    }

    #[test]
    fn failure_detail_reports_absolute_and_relative_delta() {
        let base = QorDocument::new(vec![report("ex1", &[("num_les", 34.0)])]);
        let new = QorDocument::new(vec![report("ex1", &[("num_les", 35.0)])]);
        let entries = diff_documents_exact(&base, &new);
        let e = entries.iter().find(|e| e.metric == "num_les").unwrap();
        assert!(e.status.fails());
        let detail = e.failure_detail();
        assert!(detail.contains("+1.000000"), "{detail}");
        assert!(detail.contains("+2.9412%"), "{detail}");
        // Missing sides are named, not silently blank.
        let gone = QorDocument::new(vec![report("ex1", &[])]);
        let entries = diff_documents(&base, &gone);
        let e = entries.iter().find(|e| e.metric == "num_les").unwrap();
        assert!(e.failure_detail().contains("no new value"));
    }

    #[test]
    fn unknown_metrics_never_gate() {
        let base = QorDocument::new(vec![report("ex1", &[("exotic_metric", 1.0)])]);
        let new = QorDocument::new(vec![report("ex1", &[("exotic_metric", 99.0)])]);
        assert!(!has_regression(&diff_documents(&base, &new)));
    }

    #[test]
    fn tolerances_cover_the_qor_metric_set() {
        for gated in [
            "num_luts",
            "folding_level",
            "num_les",
            "num_smbs",
            "channel_width",
            "delay_ns",
            "critical_path_delay_ns",
            "routed_wirelength",
            "peak.place.cost",
            "peak.route.overuse",
        ] {
            assert!(tolerance_for(gated).is_some(), "{gated} must gate");
        }
        assert!(tolerance_for("something_else").is_none());
    }
}
