//! `nanomap` — command-line driver for the NanoMap flow.
//!
//! ```text
//! nanomap <design.vhd | design.blif> [options]
//!   --objective delay|area|at   optimization target (default: at)
//!   --max-les N                 area budget in logic elements
//!   --max-delay NS              delay budget in nanoseconds
//!   --k N                       NRAM configuration sets (default 16; 0 = unbounded)
//!   --ffs-per-le N              flip-flops per LE (default 2)
//!   --optimize                  run the LUT-network cleanup passes first
//!   --no-physical               skip clustering/placement/routing
//!   --verify                    check folded execution against simulation
//!   --bitmap PATH               write the packed binary bitstream to PATH
//!   --metrics PATH              write spans/counters/report as JSON to PATH
//!   --chrome-trace PATH         write a Perfetto-loadable trace to PATH
//!   --qor PATH                  write a QoR document to PATH
//!   --explain PATH              write the QoR attribution artifact to PATH
//!   --defect-rate F             inject uniform fabric defects at rate F (0..1)
//!   --defect-seed N             seed for the defect injection (default 1)
//!   --defect-map PATH           load an explicit defect map instead
//!   --time-budget-ms N          wall-clock budget for the whole mapping
//!   --anytime                   accept a budget-degraded best-so-far mapping
//!   --exact-recovery            after the heuristic recovery ladder fails, run
//!                               the complete SAT-based slot-assignment rung
//!   --sat-conflict-budget N     cap the SAT solver at N conflicts (default
//!                               unbounded; the time budget still applies)
//!   --checkpoint-dir PATH       write a crash-safe checkpoint after each phase
//!   --resume PATH               resume from a checkpoint file
//!   --profile DIR               sample span stacks + memory; write
//!                               DIR/<circuit>.profile.json (nanomap-profile-v1)
//!                               and DIR/<circuit>.collapsed (flamegraph input)
//!   --sample-hz N               profiler sampling rate (default 997)
//!   --live-status PATH          stream nanomap-events-v1 NDJSON (run/phase
//!                               lifecycle + progress) to PATH as the flow runs
//!   --ledger PATH               append a one-line flight-recorder summary of
//!                               this run to the ledger at PATH
//!   --progress                  echo top-level phase timings to stderr
//!   --trace                     echo every span to stderr as it closes
//!
//! PATH may be `-` for stdout (at most one of
//! --metrics/--chrome-trace/--qor/--explain/--live-status; the
//! human-readable report then moves to stderr).
//!
//! Exit codes:
//!   0  mapping succeeded
//!   1  usage, I/O or parse error, or any other hard failure
//!   2  the recovery ladder was exhausted (attempt history on stderr)
//!   3  the time budget expired without --anytime (partial history on stderr)
//!   4  mapping succeeded but is budget-degraded (--anytime accepted it)
//!   5  --exact-recovery proved no defect-legal assignment exists (the
//!      fabric, not the heuristics, is the limit; summary on stderr)
//!
//! nanomap explain <design.vhd | design.blif> [flow options]
//!                 [--out PATH] [--top-k N]
//!   Runs the flow and prints the QoR attribution report: congestion and
//!   placement heatmaps, per-stage NRAM occupancy, and the top-K routed
//!   critical paths hop by hop. --out additionally writes the JSON
//!   artifact (deterministic: same seed, same bytes).
//!
//! nanomap explain --check <artifact.json>
//!   Re-validates an emitted artifact's internal invariants: the per-hop
//!   delay sums, the delay identity, and the congestion/usage
//!   reconciliation.
//!
//! nanomap qor-diff [--exact] <baseline.json> <new.json>
//!   Compares two QoR documents metric-by-metric with per-metric
//!   tolerances; exits non-zero when any gated metric regresses.
//!   With --exact every gated metric must match bit for bit (the
//!   determinism gate for defect-free reruns).
//!
//! nanomap profile <design.vhd | design.blif> [flow options]
//!                 [--sample-hz N] [--top-k N] [--out DIR]
//!   Runs the flow under the sampling profiler and prints the top-K hot
//!   span paths with each path's share of its phase. --out DIR
//!   additionally writes the profile JSON + collapsed stacks.
//!
//! nanomap perf-diff [--rel F] [--abs-ms F] <baseline.json> <new.json>
//!   Compares two nanomap-perf-v1 documents (from the bench `perf` leg).
//!   One-sided gate: a phase median must slow down by more than BOTH the
//!   relative tolerance (--rel, default 1.0 = 100%) and the absolute
//!   guard band (--abs-ms, default 25 ms) to fail. p95, memory metrics
//!   and circuits missing from the new document are informational.
//!
//! nanomap runs <list | show ID | trend | regress | check-stream FILE>
//!              [--ledger PATH]
//!   Flight-recorder queries over the cross-run ledger (default
//!   results/runs/ledger.jsonl). `list` tabulates run history, `show`
//!   prints one record by run-id prefix, `trend [--benchmark B]
//!   [--field F]` renders per-circuit sparkline trends, `regress
//!   [--field F] [--window N] [--k F]` flags rolling-median+MAD
//!   outliers (exit 1 when any), and `check-stream` validates a
//!   --live-status NDJSON capture.
//!
//! nanomap runs show --trace ID [--events PATH] [--ledger PATH]
//!   Reconstructs one service request end to end: the `service` events
//!   in a `nanomapd --events` NDJSON capture become a millisecond
//!   timeline (queued/started/preempted/coalesced/completed), and the
//!   ledger record stamped with the same trace id is printed after it.
//!
//! nanomap submit <design.vhd | design.blif> --addr HOST:PORT|SOCKET
//!                [--objective delay|area|at] [--max-les N] [--max-delay NS]
//!                [--time-budget-ms N] [--id STR] [--retries N]
//!                [--backoff-ms MS] [--retry-seed N] [--report PATH|-]
//!                [--trace-id STR]
//!   Submits one mapping request to a running `nanomapd` with jittered
//!   exponential backoff across connect failures and retryable
//!   (`shed`/`shutdown`) rejections. Idempotent: the daemon's cache key
//!   is the netlist fingerprint + objective + seeds, so re-submission
//!   re-serves the same result byte for byte. The MappingReport JSON
//!   goes to stdout (or --report PATH); lifecycle lines go to stderr.
//!   Every attempt's server-assigned trace id is echoed on stderr (and
//!   written into the --report error document on permanent rejection);
//!   --trace-id propagates a caller-chosen id instead.
//!   Exit codes: 0 served, 1 transport failure or retries exhausted,
//!   2 permanent rejection (invalid/panic/failed), 3 budget rejection.
//!
//! nanomap top --addr HOST:PORT|SOCKET [--interval-ms N] [--once]
//!   Live operator console for a running `nanomapd`: polls the `stats`
//!   op and redraws counters, gauges, shed/cache-hit rates, per-class
//!   latency percentiles, request-segment means and utilization
//!   sparklines. With --once (or stdout not a terminal) it prints one
//!   compact `nanomapd-stats-v1` JSON line and exits.
//! ```

// The CLI turns every failure into a diagnostic plus exit code; a panic
// anywhere on this path is a bug.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

use nanomap::perf::{DEFAULT_ABS_GUARD_MS, DEFAULT_REL_TOLERANCE};
use nanomap::qor::{diff_documents, diff_documents_exact, QorDocument, QorReport};
use nanomap::runs::{self, Ledger, RunRecord, DEFAULT_LEDGER_PATH};
use nanomap::{
    atomic_write, atomic_write_text, check_artifact, diff_perf, has_regression, render_diff_table,
    Checkpoint, DiffEntry, DiffStatus, ExplainReport, FlowError, MappingReport, NanoMap, Objective,
    PerfDocument, DEFAULT_TOP_K,
};
use nanomap_arch::{ArchParams, DefectMap};
use nanomap_netlist::{blif, vhdl, LutNetwork};
use nanomap_observe::{json, Echo, EventStream, JsonValue, ProfileData};
use nanomap_techmap::{expand, optimize, ExpandOptions};

/// Count every heap round-trip the flow makes. Tracking is off (one
/// relaxed load of overhead) until `--profile` turns it on.
#[global_allocator]
static ALLOC: nanomap_observe::CountingAllocator = nanomap_observe::CountingAllocator::system();

/// Default number of hot paths the profile subcommand prints.
const DEFAULT_PROFILE_TOP_K: usize = 15;

/// Exit code: the recovery ladder was exhausted.
const EXIT_RECOVERY_EXHAUSTED: u8 = 2;
/// Exit code: the time budget expired without `--anytime`.
const EXIT_BUDGET_EXHAUSTED: u8 = 3;
/// Exit code: success, but the mapping is budget-degraded.
const EXIT_DEGRADED: u8 = 4;
/// Exit code: the exact rung proved the fabric unmappable.
const EXIT_INFEASIBLE: u8 = 5;

/// Writes formatted text to stdout, tolerating a closed pipe: when the
/// reader goes away (`nanomap --qor - | head`), the write is silently
/// dropped and the process keeps going toward a clean exit instead of
/// panicking the way `println!` would. Other write errors surface on
/// stderr.
fn stdout_write(text: std::fmt::Arguments<'_>, newline: bool) {
    let mut out = std::io::stdout().lock();
    let result = out.write_fmt(text).and_then(|()| {
        if newline {
            out.write_all(b"\n")
        } else {
            Ok(())
        }
    });
    if let Err(e) = result {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("error: writing stdout: {e}");
        }
    }
}

/// `println!`, minus the broken-pipe panic.
macro_rules! outln {
    ($($t:tt)*) => { stdout_write(format_args!($($t)*), true) };
}

/// `print!`, minus the broken-pipe panic.
macro_rules! out {
    ($($t:tt)*) => { stdout_write(format_args!($($t)*), false) };
}

struct Args {
    input: String,
    objective: String,
    max_les: Option<u32>,
    max_delay: Option<f64>,
    k: u32,
    ffs_per_le: u32,
    run_optimize: bool,
    physical: bool,
    verify: bool,
    bitmap_path: Option<String>,
    metrics_path: Option<String>,
    chrome_trace_path: Option<String>,
    qor_path: Option<String>,
    explain_path: Option<String>,
    explain_out: Option<String>,
    explain_top_k: Option<usize>,
    defect_rate: Option<f64>,
    defect_seed: u64,
    defect_map_path: Option<String>,
    time_budget_ms: Option<u64>,
    anytime: bool,
    exact_recovery: bool,
    sat_conflict_budget: Option<u64>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    profile_dir: Option<String>,
    sample_hz: u32,
    live_status: Option<String>,
    ledger_path: Option<String>,
    progress: bool,
    trace: bool,
}

impl Args {
    /// The JSON sinks that may claim stdout via `-`, as (flag, path) pairs.
    fn stdout_sinks(&self) -> Vec<&'static str> {
        [
            ("--metrics", &self.metrics_path),
            ("--chrome-trace", &self.chrome_trace_path),
            ("--qor", &self.qor_path),
            ("--explain", &self.explain_path),
            ("--live-status", &self.live_status),
        ]
        .into_iter()
        .filter(|(_, path)| path.as_deref() == Some("-"))
        .map(|(flag, _)| flag)
        .collect()
    }
}

/// Pulls the value following a `--flag VALUE` option off the iterator.
fn value(iter: &mut impl Iterator<Item = String>, name: &str) -> Result<String, String> {
    iter.next().ok_or_else(|| format!("{name} needs a value"))
}

fn parse_args(cli: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        objective: "at".into(),
        max_les: None,
        max_delay: None,
        k: 16,
        ffs_per_le: 2,
        run_optimize: false,
        physical: true,
        verify: false,
        bitmap_path: None,
        metrics_path: None,
        chrome_trace_path: None,
        qor_path: None,
        explain_path: None,
        explain_out: None,
        explain_top_k: None,
        defect_rate: None,
        defect_seed: 1,
        defect_map_path: None,
        time_budget_ms: None,
        anytime: false,
        exact_recovery: false,
        sat_conflict_budget: None,
        checkpoint_dir: None,
        resume: None,
        profile_dir: None,
        sample_hz: 0,
        live_status: None,
        ledger_path: None,
        progress: false,
        trace: false,
    };
    let mut iter = cli;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--objective" => args.objective = value(&mut iter, "--objective")?,
            "--max-les" => {
                args.max_les = Some(
                    value(&mut iter, "--max-les")?
                        .parse()
                        .map_err(|e| format!("--max-les: {e}"))?,
                )
            }
            "--max-delay" => {
                args.max_delay = Some(
                    value(&mut iter, "--max-delay")?
                        .parse()
                        .map_err(|e| format!("--max-delay: {e}"))?,
                )
            }
            "--k" => {
                args.k = value(&mut iter, "--k")?
                    .parse()
                    .map_err(|e| format!("--k: {e}"))?
            }
            "--ffs-per-le" => {
                args.ffs_per_le = value(&mut iter, "--ffs-per-le")?
                    .parse()
                    .map_err(|e| format!("--ffs-per-le: {e}"))?
            }
            "--bitmap" => args.bitmap_path = Some(value(&mut iter, "--bitmap")?),
            "--metrics" => args.metrics_path = Some(value(&mut iter, "--metrics")?),
            "--chrome-trace" => args.chrome_trace_path = Some(value(&mut iter, "--chrome-trace")?),
            "--qor" => args.qor_path = Some(value(&mut iter, "--qor")?),
            "--explain" => args.explain_path = Some(value(&mut iter, "--explain")?),
            "--out" => args.explain_out = Some(value(&mut iter, "--out")?),
            "--top-k" => {
                args.explain_top_k = Some(
                    value(&mut iter, "--top-k")?
                        .parse()
                        .map_err(|e| format!("--top-k: {e}"))?,
                )
            }
            "--defect-rate" => {
                let rate: f64 = value(&mut iter, "--defect-rate")?
                    .parse()
                    .map_err(|e| format!("--defect-rate: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--defect-rate: {rate} is outside 0..1"));
                }
                args.defect_rate = Some(rate);
            }
            "--defect-seed" => {
                args.defect_seed = value(&mut iter, "--defect-seed")?
                    .parse()
                    .map_err(|e| format!("--defect-seed: {e}"))?
            }
            "--defect-map" => args.defect_map_path = Some(value(&mut iter, "--defect-map")?),
            "--time-budget-ms" => {
                args.time_budget_ms = Some(
                    value(&mut iter, "--time-budget-ms")?
                        .parse()
                        .map_err(|e| format!("--time-budget-ms: {e}"))?,
                )
            }
            "--anytime" => args.anytime = true,
            "--exact-recovery" => args.exact_recovery = true,
            "--sat-conflict-budget" => {
                args.sat_conflict_budget = Some(
                    value(&mut iter, "--sat-conflict-budget")?
                        .parse()
                        .map_err(|e| format!("--sat-conflict-budget: {e}"))?,
                )
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(value(&mut iter, "--checkpoint-dir")?),
            "--resume" => args.resume = Some(value(&mut iter, "--resume")?),
            "--profile" => args.profile_dir = Some(value(&mut iter, "--profile")?),
            "--live-status" => args.live_status = Some(value(&mut iter, "--live-status")?),
            "--ledger" => args.ledger_path = Some(value(&mut iter, "--ledger")?),
            "--sample-hz" => {
                args.sample_hz = value(&mut iter, "--sample-hz")?
                    .parse()
                    .map_err(|e| format!("--sample-hz: {e}"))?
            }
            "--optimize" => args.run_optimize = true,
            "--no-physical" => args.physical = false,
            "--verify" => args.verify = true,
            "--progress" => args.progress = true,
            "--trace" => args.trace = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see --help)"))
            }
            other => {
                if !args.input.is_empty() {
                    return Err("multiple input files".into());
                }
                args.input = other.to_string();
            }
        }
    }
    if args.input.is_empty() {
        return Err("missing input file".into());
    }
    if args.defect_rate.is_some() && args.defect_map_path.is_some() {
        return Err("--defect-rate and --defect-map are mutually exclusive".into());
    }
    if args.explain_path.is_some() && !args.physical {
        return Err("--explain needs the physical flow (drop --no-physical)".into());
    }
    let claimed = args.stdout_sinks();
    if claimed.len() > 1 {
        return Err(format!(
            "only one output may write to stdout: {} all say `-`",
            claimed.join(" and ")
        ));
    }
    Ok(args)
}

fn load(path: &str, lut_inputs: u32) -> Result<LutNetwork, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".blif") {
        blif::parse(&text).map_err(|e| format!("{path}: {e}"))
    } else if path.ends_with(".vhd") || path.ends_with(".vhdl") {
        let circuit = vhdl::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        expand(
            &circuit,
            ExpandOptions {
                lut_inputs,
                ..ExpandOptions::default()
            },
        )
        .map_err(|e| format!("{path}: {e}"))
    } else {
        Err(format!("{path}: unknown extension (use .vhd/.vhdl/.blif)"))
    }
}

/// Writes `text` to `path`, or to stdout when `path` is `-`. File writes
/// are atomic (temp file + rename): a killed run leaves the previous
/// artifact intact, never a truncated one.
fn write_sink(path: &str, text: &str) -> Result<(), String> {
    if path == "-" {
        outln!("{text}");
        Ok(())
    } else {
        atomic_write_text(Path::new(path), text).map_err(|e| e.to_string())
    }
}

/// Opens the `--live-status` sink: stdout for `-`, otherwise a fresh
/// file at PATH (the stream is line-oriented NDJSON, written live —
/// a crash leaves a valid prefix, so no atomic-rename dance applies).
fn open_live_sink(path: &str) -> Result<Box<dyn std::io::Write + Send>, String> {
    if path == "-" {
        Ok(Box::new(std::io::stdout()))
    } else {
        if let Some(parent) = Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("--live-status {path}: {e}"))?;
            }
        }
        let file = std::fs::File::create(path).map_err(|e| format!("--live-status {path}: {e}"))?;
        Ok(Box::new(file))
    }
}

/// Resolves the `--objective` string into a flow [`Objective`].
fn parse_objective(args: &Args) -> Result<Objective, String> {
    match args.objective.as_str() {
        "delay" => Ok(Objective::MinDelay {
            max_les: args.max_les,
        }),
        "area" => Ok(Objective::MinArea {
            max_delay_ns: args.max_delay,
        }),
        "at" => Ok(Objective::MinAreaDelayProduct),
        other => Err(format!("unknown objective `{other}` (delay|area|at)")),
    }
}

/// Applies the `--defect-rate`/`--defect-map` options to a flow.
fn apply_defects(mut flow: NanoMap, args: &Args) -> Result<NanoMap, String> {
    if let Some(path) = &args.defect_map_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let map = DefectMap::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        flow = flow.with_defects(map);
    } else if let Some(rate) = args.defect_rate {
        if rate > 0.0 {
            flow = flow.with_defects(DefectMap::uniform(rate, args.defect_seed));
        }
    }
    Ok(flow)
}

/// `nanomap explain ...`: run the flow with QoR attribution enabled and
/// print the heatmaps plus top-K critical paths; `--check FILE` instead
/// re-validates an already-emitted artifact.
fn explain_main(cli: Vec<String>) -> ExitCode {
    if cli.first().map(String::as_str) == Some("--check") {
        let [_, path] = &cli[..] else {
            eprintln!("usage: nanomap explain --check <artifact.json>");
            return ExitCode::FAILURE;
        };
        let checked = std::fs::read_to_string(path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|text| json::parse(&text).map_err(|e| format!("{path}: {e}")))
            .and_then(|doc| check_artifact(&doc).map_err(|e| format!("{path}: {e}")));
        return match checked {
            Ok(()) => {
                outln!("{path}: OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args(cli.into_iter()) {
        Ok(a) => a,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprintln!("usage: nanomap explain <design.vhd | design.blif> [flow options]");
            eprintln!("       [--out PATH] [--top-k N]");
            eprintln!("       nanomap explain --check <artifact.json>");
            return ExitCode::FAILURE;
        }
    };
    if args.explain_path.is_some() {
        eprintln!("error: the explain subcommand always builds the artifact; use --out PATH");
        return ExitCode::FAILURE;
    }
    if !args.physical {
        eprintln!("error: explain needs the physical flow (drop --no-physical)");
        return ExitCode::FAILURE;
    }
    let arch = ArchParams {
        num_reconf: if args.k == 0 { u32::MAX } else { args.k },
        ffs_per_le: args.ffs_per_le,
        ..ArchParams::paper()
    };
    let top_k = args.explain_top_k.unwrap_or(DEFAULT_TOP_K);
    let run = || -> Result<ExplainReport, String> {
        let mut net = load(&args.input, arch.lut_inputs)?;
        if args.run_optimize {
            net = optimize(&net).0;
        }
        let objective = parse_objective(&args)?;
        let mut flow = apply_defects(NanoMap::new(arch).with_explain(), &args)?;
        flow.explain_top_k = top_k;
        let report = flow.map(&net, objective).map_err(|e| e.to_string())?;
        report
            .explain
            .ok_or_else(|| "flow finished without attribution data".to_string())
    };
    let explain = match run() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = explain.validate() {
        eprintln!("error: artifact invariant violated: {e}");
        return ExitCode::FAILURE;
    }
    // When `--out -` claims stdout for the JSON, the text report moves to
    // stderr (mirroring the main flow's sink convention).
    let text = explain.render_text(top_k);
    if args.explain_out.as_deref() == Some("-") {
        eprint!("{text}");
    } else {
        out!("{text}");
    }
    if let Some(path) = &args.explain_out {
        if let Err(e) = write_sink(path, &explain.to_json().to_pretty_string()) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        if path != "-" {
            outln!("\nartifact: -> {path}");
        }
    }
    ExitCode::SUCCESS
}

/// `nanomap qor-diff [--exact] <baseline.json> <new.json>`: the
/// regression gate (with `--exact`, the determinism gate).
fn qor_diff_main(args: &[String]) -> ExitCode {
    let exact = args.iter().any(|a| a == "--exact");
    let paths: Vec<&String> = args.iter().filter(|a| *a != "--exact").collect();
    let [baseline_path, new_path] = paths[..] else {
        eprintln!("usage: nanomap qor-diff [--exact] <baseline.json> <new.json>");
        return ExitCode::FAILURE;
    };
    let read_doc = |path: &String| -> Result<QorDocument, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        QorDocument::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, new) = match (read_doc(baseline_path), read_doc(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let entries = if exact {
        diff_documents_exact(&baseline, &new)
    } else {
        diff_documents(&baseline, &new)
    };
    // Keep the table focused: silent on in-tolerance info metrics.
    let show = |e: &DiffEntry| {
        e.status.fails()
            || matches!(e.status, DiffStatus::MissingInBaseline)
            || e.tolerance.is_some()
    };
    let (lines, failures) = render_diff_table(&entries, show);
    for line in lines {
        outln!("{line}");
    }
    let mode = if exact { " (exact)" } else { "" };
    if has_regression(&entries) {
        outln!("QoR gate{mode}: FAIL ({failures} regressed metrics)");
        ExitCode::FAILURE
    } else {
        outln!("QoR gate{mode}: PASS ({} metrics compared)", entries.len());
        ExitCode::SUCCESS
    }
}

/// `nanomap perf-diff [--rel F] [--abs-ms F] <baseline.json> <new.json>`:
/// the performance regression gate over `nanomap-perf-v1` documents.
fn perf_diff_main(cli: Vec<String>) -> ExitCode {
    let mut rel = DEFAULT_REL_TOLERANCE;
    let mut abs_ms = DEFAULT_ABS_GUARD_MS;
    let mut paths: Vec<String> = Vec::new();
    let mut iter = cli.into_iter();
    let usage = || {
        eprintln!("usage: nanomap perf-diff [--rel F] [--abs-ms F] <baseline.json> <new.json>");
        ExitCode::FAILURE
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--rel" => match value(&mut iter, "--rel")
                .and_then(|v| v.parse::<f64>().map_err(|e| format!("--rel: {e}")))
            {
                Ok(v) if v >= 0.0 => rel = v,
                _ => return usage(),
            },
            "--abs-ms" => match value(&mut iter, "--abs-ms")
                .and_then(|v| v.parse::<f64>().map_err(|e| format!("--abs-ms: {e}")))
            {
                Ok(v) if v >= 0.0 => abs_ms = v,
                _ => return usage(),
            },
            other if other.starts_with('-') => return usage(),
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, new_path] = &paths[..] else {
        return usage();
    };
    let read_doc = |path: &String| -> Result<PerfDocument, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        PerfDocument::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, new) = match (read_doc(baseline_path), read_doc(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let entries = diff_perf(&baseline, &new, rel, abs_ms);
    // Show gated medians plus anything that failed; skip the
    // info-only p95/memory rows unless they are new metrics.
    let show = |e: &DiffEntry| e.status.fails() || e.tolerance.is_some();
    let (lines, failures) = render_diff_table(&entries, show);
    for line in lines {
        outln!("{line}");
    }
    if has_regression(&entries) {
        outln!("perf gate: FAIL ({failures} regressed metrics, rel {rel}, abs {abs_ms} ms)");
        ExitCode::FAILURE
    } else {
        outln!(
            "perf gate: PASS ({} metrics compared, rel {rel}, abs {abs_ms} ms)",
            entries.len()
        );
        ExitCode::SUCCESS
    }
}

/// Writes `<dir>/<circuit>.profile.json` + `<dir>/<circuit>.collapsed`
/// and reports where they went. Failures are warnings: the mapping
/// already succeeded and its artifacts must survive a broken profile
/// sink.
fn write_profile_artifacts(dir: &str, circuit: &str, profile: &ProfileData) -> Option<String> {
    let dir_path = Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir_path) {
        eprintln!("warning: --profile {dir}: {e}");
        return None;
    }
    let json_path = dir_path.join(format!("{circuit}.profile.json"));
    let collapsed_path = dir_path.join(format!("{circuit}.collapsed"));
    let written = atomic_write_text(&json_path, &profile.to_json().to_pretty_string())
        .and_then(|()| atomic_write_text(&collapsed_path, &profile.collapsed()));
    match written {
        Ok(()) => Some(json_path.display().to_string()),
        Err(e) => {
            eprintln!("warning: --profile {dir}: {e}");
            None
        }
    }
}

/// `nanomap profile ...`: run the flow under the sampling profiler and
/// print the top-K hot span paths.
fn profile_main(cli: Vec<String>) -> ExitCode {
    let args = match parse_args(cli.into_iter()) {
        Ok(a) => a,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprintln!("usage: nanomap profile <design.vhd | design.blif> [flow options]");
            eprintln!("       [--sample-hz N] [--top-k N] [--out DIR]");
            return ExitCode::FAILURE;
        }
    };
    let top_k = args.explain_top_k.unwrap_or(DEFAULT_PROFILE_TOP_K);
    let arch = ArchParams {
        num_reconf: if args.k == 0 { u32::MAX } else { args.k },
        ffs_per_le: args.ffs_per_le,
        ..ArchParams::paper()
    };
    nanomap_observe::set_enabled(true);
    nanomap_observe::reset_memory();
    nanomap_observe::set_memory_tracking(true);
    if !nanomap_observe::start_sampler(args.sample_hz) {
        eprintln!("warning: continuing without the sampling profiler");
    }
    let run = || -> Result<nanomap::MappingReport, String> {
        let mut net = load(&args.input, arch.lut_inputs)?;
        if args.run_optimize {
            net = optimize(&net).0;
        }
        let objective = parse_objective(&args)?;
        let flow = apply_defects(NanoMap::new(arch), &args)?;
        flow.map(&net, objective).map_err(|e| e.to_string())
    };
    let result = run();
    let profile = nanomap_observe::stop_sampler();
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    outln!("{}", report.summary());
    match &profile {
        Some(profile) => {
            out!("{}", profile.render_top(top_k));
            if let Some(dir) = &args.explain_out {
                if let Some(path) = write_profile_artifacts(dir, &report.circuit, profile) {
                    outln!("profile: -> {path}");
                }
            }
        }
        None => eprintln!("warning: no profile collected"),
    }
    if let Some(memory) = &report.memory {
        outln!(
            "memory: {} allocations, {:.1} MiB allocated, peak live {:.1} MiB{}",
            memory.alloc_count,
            memory.alloc_bytes as f64 / (1024.0 * 1024.0),
            memory.peak_live_bytes as f64 / (1024.0 * 1024.0),
            memory.peak_rss_kb.map_or(String::new(), |kb| format!(
                ", peak RSS {:.1} MiB",
                kb as f64 / 1024.0
            ))
        );
    }
    ExitCode::SUCCESS
}

/// `nanomap runs ...`: flight-recorder queries over the cross-run
/// ledger — `list`, `show <id>`, `trend`, `regress`, `check-stream`.
fn runs_main(cli: Vec<String>) -> ExitCode {
    let usage = || {
        eprintln!("usage: nanomap runs <list | show ID | trend | regress | check-stream FILE>");
        eprintln!("       [--ledger PATH] [--benchmark B] [--field F] [--window N] [--k F]");
        eprintln!("       runs show --trace ID [--events PATH] reconstructs one service");
        eprintln!("       request's timeline from an event capture plus its ledger record");
        ExitCode::FAILURE
    };
    let mut iter = cli.into_iter();
    let mut ledger_path = DEFAULT_LEDGER_PATH.to_string();
    let mut benchmark: Option<String> = None;
    let mut fields: Vec<String> = Vec::new();
    let mut window = runs::REGRESS_WINDOW;
    let mut k = runs::REGRESS_K;
    let mut trace: Option<String> = None;
    let mut events_path: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ledger" => match value(&mut iter, "--ledger") {
                Ok(v) => ledger_path = v,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            },
            "--trace" => match value(&mut iter, "--trace") {
                Ok(v) => trace = Some(v),
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            },
            "--events" => match value(&mut iter, "--events") {
                Ok(v) => events_path = Some(v),
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            },
            "--benchmark" => match value(&mut iter, "--benchmark") {
                Ok(v) => benchmark = Some(v),
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            },
            "--field" => match value(&mut iter, "--field") {
                Ok(v) => fields.push(v),
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            },
            "--window" => match value(&mut iter, "--window")
                .and_then(|v| v.parse::<usize>().map_err(|e| format!("--window: {e}")))
            {
                Ok(v) => window = v,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            },
            "--k" => match value(&mut iter, "--k")
                .and_then(|v| v.parse::<f64>().map_err(|e| format!("--k: {e}")))
            {
                Ok(v) => k = v,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            },
            other if other.starts_with('-') && other != "-" => {
                eprintln!("error: unknown option `{other}`");
                return usage();
            }
            other => positional.push(other.to_string()),
        }
    }
    // The verb is the first non-flag argument, so flags may come first.
    if positional.is_empty() {
        return usage();
    }
    let verb = positional.remove(0);
    // check-stream reads an event capture, not the ledger.
    if verb == "check-stream" {
        let [path] = &positional[..] else {
            return usage();
        };
        let text = if path == "-" {
            let mut buf = String::new();
            if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf) {
                eprintln!("error: stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        } else {
            match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        return match runs::check_stream(&text) {
            Ok(check) => {
                outln!(
                    "{path}: OK ({} events, run {}, exit {}, total {:.1} ms)",
                    check.events,
                    check.run_id,
                    check.exit_code,
                    check.total_ms
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let ledger = match Ledger::load(Path::new(&ledger_path)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !ledger.skipped_lines.is_empty() {
        eprintln!(
            "warning: {ledger_path}: skipped {} malformed line(s): {:?}",
            ledger.skipped_lines.len(),
            ledger.skipped_lines
        );
    }
    match verb.as_str() {
        "list" => {
            outln!(
                "{:<18} {:<14} {:<10} {:>8} {:>10} {:>10} {:>9}",
                "run",
                "circuit",
                "status",
                "les",
                "delay_ns",
                "total_ms",
                "Δtotal"
            );
            // Remember each circuit's previous total to show the delta
            // against the run one line up in its own history.
            let mut last_total: std::collections::BTreeMap<&str, f64> =
                std::collections::BTreeMap::new();
            for r in &ledger.records {
                if benchmark.as_deref().is_some_and(|b| b != r.circuit) {
                    continue;
                }
                let total = r.phase_ms.get("total_ms").copied().unwrap_or(f64::NAN);
                let delta = last_total
                    .insert(r.circuit.as_str(), total)
                    .map_or("-".to_string(), |prev| format!("{:+.1}", total - prev));
                let les = r
                    .metrics
                    .get("num_les")
                    .map_or("-".to_string(), |v| format!("{v:.0}"));
                let delay = r
                    .metrics
                    .get("delay_ns")
                    .map_or("-".to_string(), |v| format!("{v:.2}"));
                outln!(
                    "{:<18} {:<14} {:<10} {:>8} {:>10} {:>10.1} {:>9}",
                    &r.run_id[..r.run_id.len().min(16)],
                    r.circuit,
                    r.status(),
                    les,
                    delay,
                    total,
                    delta
                );
            }
            outln!("{} runs in {ledger_path}", ledger.records.len());
            ExitCode::SUCCESS
        }
        "show" => {
            // --trace flips show from run-id lookup to service-request
            // reconstruction: the event capture gives the timeline
            // (queue/slice/coalesce stages), the ledger the run record.
            if let Some(trace) = &trace {
                let mut found = false;
                if let Some(path) = &events_path {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("error: {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let timeline = runs::trace_timeline(&text, trace);
                    if timeline.is_empty() {
                        eprintln!("warning: no service events for trace {trace} in {path}");
                    } else {
                        found = true;
                        outln!("trace {trace} ({} events):", timeline.len());
                        for line in runs::render_trace_timeline(&timeline) {
                            outln!("{line}");
                        }
                    }
                }
                match ledger.find_by_trace(trace) {
                    Some(record) => {
                        outln!("{}", record.to_json().to_pretty_string());
                        ExitCode::SUCCESS
                    }
                    None if found => {
                        eprintln!(
                            "note: no ledger record stamped with trace {trace} in {ledger_path}"
                        );
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("error: trace {trace} not found in {ledger_path}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                let [prefix] = &positional[..] else {
                    return usage();
                };
                match ledger.find(prefix) {
                    Some(record) => {
                        outln!("{}", record.to_json().to_pretty_string());
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("error: no run matching `{prefix}` in {ledger_path}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        "trend" => {
            let defaults = ["num_les", "delay_ns", "total_ms"];
            let names: Vec<&str> = if fields.is_empty() {
                defaults.to_vec()
            } else {
                fields.iter().map(String::as_str).collect()
            };
            let rows = runs::trend(&ledger, benchmark.as_deref(), &names);
            if rows.is_empty() {
                outln!("no matching runs in {ledger_path}");
                return ExitCode::SUCCESS;
            }
            outln!(
                "{:<14} {:<20} {:>4} {:>12} {:>12} {:>12}  trend",
                "circuit",
                "field",
                "runs",
                "min",
                "max",
                "last"
            );
            for row in rows {
                outln!("{}", row.render());
            }
            ExitCode::SUCCESS
        }
        "regress" => {
            let field = fields.first().map_or("total_ms", String::as_str);
            let outliers = runs::regress(&ledger, benchmark.as_deref(), field, window, k);
            if outliers.is_empty() {
                outln!("regress: OK (field {field}, window {window}, k {k})");
                ExitCode::SUCCESS
            } else {
                for o in &outliers {
                    outln!("{}", o.render());
                }
                outln!(
                    "regress: {} outlier(s) flagged (field {field}, window {window}, k {k})",
                    outliers.len()
                );
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

/// `nanomap submit <design> --addr ADDR [...]`: the retry/backoff
/// client for a running `nanomapd`. Transport failures and retryable
/// rejections back off with jitter; permanent rejections map to the
/// same exit-code vocabulary the local flow uses.
fn submit_main(args: Vec<String>) -> ExitCode {
    fn usage() -> ExitCode {
        eprintln!("usage: nanomap submit <design.vhd|design.blif> --addr HOST:PORT|SOCKET");
        eprintln!("       [--objective delay|area|at] [--max-les N] [--max-delay NS]");
        eprintln!("       [--time-budget-ms N] [--id STR] [--retries N] [--backoff-ms MS]");
        eprintln!("       [--retry-seed N] [--report PATH|-] [--trace-id STR]");
        ExitCode::FAILURE
    }
    let mut design: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut objective = "at".to_string();
    let mut max_les: Option<u32> = None;
    let mut max_delay_ns: Option<f64> = None;
    let mut time_budget_ms: Option<u64> = None;
    let mut id: Option<String> = None;
    let mut trace_id: Option<String> = None;
    let mut policy = nanomap::RetryPolicy::default();
    let mut report_sink: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        macro_rules! val {
            () => {
                match it.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("error: {flag} needs a value");
                        return usage();
                    }
                }
            };
        }
        macro_rules! num {
            () => {
                match val!().parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("error: {flag} needs a number");
                        return usage();
                    }
                }
            };
        }
        match flag.as_str() {
            "--addr" => addr = Some(val!()),
            "--objective" => objective = val!(),
            "--max-les" => max_les = Some(num!()),
            "--max-delay" => max_delay_ns = Some(num!()),
            "--time-budget-ms" => time_budget_ms = Some(num!()),
            "--id" => id = Some(val!()),
            "--trace-id" => trace_id = Some(val!()),
            "--retries" => policy.max_attempts = num!(),
            "--backoff-ms" => policy.base_backoff_ms = num!(),
            "--retry-seed" => policy.seed = num!(),
            "--report" => report_sink = Some(val!()),
            other if !other.starts_with('-') && design.is_none() => {
                design = Some(other.to_string());
            }
            other => {
                eprintln!("error: unknown flag {other}");
                return usage();
            }
        }
    }
    let (Some(design), Some(addr)) = (design, addr) else {
        return usage();
    };
    let request = nanomap::MapRequest {
        id: id.unwrap_or_else(|| format!("cli-{}", std::process::id())),
        source: nanomap::DesignSource::Path(design),
        objective,
        max_les,
        max_delay_ns,
        time_budget_ms,
        trace_id,
    };
    let submission = match nanomap::submit_with_retry(&addr, &request, &policy) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Retryable rejections absorbed along the way each carry the
    // server-assigned trace, so shed attempts stay attributable.
    for rejection in &submission.rejections {
        eprintln!(
            "submit: retried after {} rejection (trace {})",
            rejection.code.as_deref().unwrap_or("?"),
            rejection.trace_id.as_deref().unwrap_or("-")
        );
    }
    for event in &submission.lifecycle {
        match event {
            nanomap::Response::Queued { depth } => eprintln!("submit: queued (depth {depth})"),
            nanomap::Response::Started => eprintln!("submit: started"),
            nanomap::Response::Preempted => eprintln!("submit: preempted (checkpoint held)"),
            nanomap::Response::Resumed => eprintln!("submit: resumed from checkpoint"),
            _ => {}
        }
    }
    let result = &submission.result;
    if result.ok {
        eprintln!(
            "submit: ok run {} (cache {}, attempt {}, trace {})",
            result.run_id.as_deref().unwrap_or("-"),
            result.cache.as_deref().unwrap_or("-"),
            submission.attempts,
            result.trace_id.as_deref().unwrap_or("-")
        );
        let report = result.report_text.as_deref().unwrap_or("{}");
        match report_sink.as_deref() {
            None | Some("-") => outln!("{report}"),
            Some(path) => {
                if let Err(e) = atomic_write_text(Path::new(path), report) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("submit: report -> {path}");
            }
        }
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "error: request rejected ({}): {} (trace {})",
        result.code.as_deref().unwrap_or("?"),
        result.detail.as_deref().unwrap_or("no detail"),
        result.trace_id.as_deref().unwrap_or("-")
    );
    // A rejection with --report still writes a small typed document so
    // scripted callers get the trace id without scraping stderr.
    if let Some(path) = report_sink.as_deref().filter(|p| *p != "-") {
        let mut doc = JsonValue::object()
            .with("schema", nanomap::SERVICE_SCHEMA)
            .with("status", "error")
            .with("request", result.request.as_str())
            .with("code", result.code.as_deref().unwrap_or("?"));
        if let Some(trace) = &result.trace_id {
            doc.set("trace_id", trace.as_str());
        }
        if let Some(detail) = &result.detail {
            doc.set("detail", detail.as_str());
        }
        if let Err(e) = atomic_write_text(Path::new(path), &doc.to_compact_string()) {
            eprintln!("error: {e}");
        }
    }
    match result.code.as_deref() {
        Some(nanomap::service::code::BUDGET) => ExitCode::from(EXIT_BUDGET_EXHAUSTED),
        Some(_) => ExitCode::from(EXIT_RECOVERY_EXHAUSTED),
        None => ExitCode::FAILURE,
    }
}

/// Latency classes `top` tabulates, in the daemon's fixed schema order.
const TOP_CLASSES: [&str; 7] = [
    "ok", "shed", "shutdown", "invalid", "panic", "budget", "failed",
];

/// How many poll samples each `top` sparkline keeps.
const TOP_HISTORY: usize = 60;

/// Reads an integer counter/gauge out of a nested stats object.
fn stat_int(doc: &JsonValue, group: &str, name: &str) -> i64 {
    doc.get(group)
        .and_then(|g| g.get(name))
        .and_then(JsonValue::as_int)
        .unwrap_or(0)
}

/// Renders one polled stats document as the live console frame.
fn render_top_frame(addr: &str, doc: &JsonValue, histories: &[(&str, &[f64])]) -> String {
    use std::fmt::Write as _;
    let mut frame = String::new();
    let uptime_s = doc
        .get("uptime_ms")
        .and_then(JsonValue::as_int)
        .unwrap_or(0) as f64
        / 1000.0;
    let version = doc
        .get("version")
        .and_then(JsonValue::as_str)
        .unwrap_or("?");
    let draining = doc
        .get("draining")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    let _ = writeln!(
        frame,
        "{version} @ {addr} — up {uptime_s:.1} s{}",
        if draining { "  [DRAINING]" } else { "" }
    );
    let served = stat_int(doc, "counters", "served");
    let shed = stat_int(doc, "counters", "shed");
    let cache_hits = stat_int(doc, "counters", "cache_hits");
    let _ = writeln!(
        frame,
        "counters  served {served}  shed {shed}  panics {}  failures {}  cache_hits {cache_hits}  preemptions {}",
        stat_int(doc, "counters", "panics"),
        stat_int(doc, "counters", "failures"),
        stat_int(doc, "counters", "preemptions"),
    );
    let _ = writeln!(
        frame,
        "gauges    queue {}  inflight {}/{} workers  cache {} entries / {} bytes",
        stat_int(doc, "gauges", "queue_depth"),
        stat_int(doc, "gauges", "inflight"),
        stat_int(doc, "gauges", "workers"),
        stat_int(doc, "gauges", "cache_entries"),
        stat_int(doc, "gauges", "cache_bytes"),
    );
    let admitted = served + shed;
    let shed_pct = if admitted > 0 {
        100.0 * shed as f64 / admitted as f64
    } else {
        0.0
    };
    let hit_pct = if served > 0 {
        100.0 * cache_hits as f64 / served as f64
    } else {
        0.0
    };
    let _ = writeln!(
        frame,
        "rates     shed {shed_pct:.1}%  cache hit {hit_pct:.1}%"
    );
    let _ = writeln!(
        frame,
        "\n{:<10} {:>8} {:>10} {:>10} {:>10}  (latency, ms)",
        "class", "count", "p50", "p95", "p99"
    );
    for class in TOP_CLASSES {
        let Some(hist) = doc.get("latency_us").and_then(|l| l.get(class)) else {
            continue;
        };
        let count = hist.get("count").and_then(JsonValue::as_int).unwrap_or(0);
        if count == 0 {
            continue;
        }
        let ms = |name: &str| hist.get(name).and_then(JsonValue::as_f64).unwrap_or(0.0) / 1000.0;
        let _ = writeln!(
            frame,
            "{class:<10} {count:>8} {:>10.3} {:>10.3} {:>10.3}",
            ms("p50"),
            ms("p95"),
            ms("p99")
        );
    }
    let seg_mean = |name: &str| {
        doc.get("segments_us")
            .and_then(|s| s.get(name))
            .and_then(|h| h.get("mean"))
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0)
            / 1000.0
    };
    let _ = writeln!(
        frame,
        "\nsegments  queue {:.3} ms  compute {:.3} ms  cache {:.3} ms  serialize {:.3} ms  (mean)",
        seg_mean("queue"),
        seg_mean("compute"),
        seg_mean("cache"),
        seg_mean("serialize"),
    );
    for (label, history) in histories {
        if history.iter().any(|v| *v > 0.0) {
            let _ = writeln!(frame, "{:<10} {}", label, runs::sparkline(history));
        }
    }
    frame
}

/// `nanomap top --addr ADDR [...]`: the live operator console. Polls
/// the daemon's `stats` op and redraws; `--once` (or a non-terminal
/// stdout, so `nanomap top | head` just works) prints a single compact
/// `nanomapd-stats-v1` line instead.
fn top_main(args: Vec<String>) -> ExitCode {
    fn usage() -> ExitCode {
        eprintln!("usage: nanomap top --addr HOST:PORT|SOCKET [--interval-ms N] [--once]");
        ExitCode::FAILURE
    }
    let mut addr: Option<String> = None;
    let mut interval_ms: u64 = 1_000;
    let mut once = false;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v),
                None => {
                    eprintln!("error: --addr needs a value");
                    return usage();
                }
            },
            "--interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => interval_ms = v,
                None => {
                    eprintln!("error: --interval-ms needs a number");
                    return usage();
                }
            },
            "--once" => once = true,
            other => {
                eprintln!("error: unknown flag {other}");
                return usage();
            }
        }
    }
    let Some(addr) = addr else {
        return usage();
    };
    // A pipe or file on stdout degrades to single-snapshot NDJSON: the
    // ANSI dashboard is for humans at a terminal only.
    let live = !once && std::io::IsTerminal::is_terminal(&std::io::stdout());
    if !live {
        return match nanomap::query_stats(&addr, 5_000) {
            Ok(doc) => {
                outln!("{}", doc.to_compact_string());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut util_history: Vec<f64> = Vec::new();
    let mut queue_history: Vec<f64> = Vec::new();
    let mut served_history: Vec<f64> = Vec::new();
    let mut last_served: Option<i64> = None;
    let mut failures = 0u32;
    loop {
        match nanomap::query_stats(&addr, 5_000) {
            Ok(doc) => {
                failures = 0;
                let workers = stat_int(&doc, "gauges", "workers").max(1);
                let push = |history: &mut Vec<f64>, v: f64| {
                    history.push(v);
                    if history.len() > TOP_HISTORY {
                        history.remove(0);
                    }
                };
                push(
                    &mut util_history,
                    stat_int(&doc, "gauges", "inflight") as f64 / workers as f64,
                );
                push(
                    &mut queue_history,
                    stat_int(&doc, "gauges", "queue_depth") as f64,
                );
                let served = stat_int(&doc, "counters", "served");
                push(
                    &mut served_history,
                    (served - last_served.unwrap_or(served)) as f64,
                );
                last_served = Some(served);
                let frame = render_top_frame(
                    &addr,
                    &doc,
                    &[
                        ("util", &util_history),
                        ("queue", &queue_history),
                        ("served/s", &served_history),
                    ],
                );
                // Clear + home, then the frame in one write to keep
                // redraws flicker-free.
                out!("\u{1b}[2J\u{1b}[H{frame}");
            }
            Err(e) => {
                // One missed poll is a blip (daemon restarting, socket
                // backlog); three in a row means it is gone.
                failures += 1;
                eprintln!("top: {e} ({failures}/3)");
                if failures >= 3 {
                    return ExitCode::FAILURE;
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

fn main() -> ExitCode {
    let mut cli: Vec<String> = std::env::args().skip(1).collect();
    if cli.first().map(String::as_str) == Some("qor-diff") {
        return qor_diff_main(&cli.split_off(1));
    }
    if cli.first().map(String::as_str) == Some("perf-diff") {
        return perf_diff_main(cli.split_off(1));
    }
    if cli.first().map(String::as_str) == Some("explain") {
        return explain_main(cli.split_off(1));
    }
    if cli.first().map(String::as_str) == Some("profile") {
        return profile_main(cli.split_off(1));
    }
    if cli.first().map(String::as_str) == Some("runs") {
        return runs_main(cli.split_off(1));
    }
    if cli.first().map(String::as_str) == Some("submit") {
        return submit_main(cli.split_off(1));
    }
    if cli.first().map(String::as_str) == Some("top") {
        return top_main(cli.split_off(1));
    }
    let args = match parse_args(cli.into_iter()) {
        Ok(a) => a,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprintln!("usage: nanomap <design.vhd | design.blif> [--objective delay|area|at]");
            eprintln!("       [--max-les N] [--max-delay NS] [--k N] [--ffs-per-le N]");
            eprintln!("       [--optimize] [--no-physical] [--verify] [--bitmap PATH]");
            eprintln!("       [--metrics PATH] [--chrome-trace PATH] [--qor PATH]");
            eprintln!("       [--explain PATH] [--defect-rate F] [--defect-seed N]");
            eprintln!("       [--defect-map PATH] [--time-budget-ms N] [--anytime]");
            eprintln!("       [--exact-recovery] [--sat-conflict-budget N]");
            eprintln!("       [--checkpoint-dir PATH] [--resume PATH] [--profile DIR]");
            eprintln!("       [--sample-hz N] [--live-status PATH] [--ledger PATH]");
            eprintln!("       [--progress] [--trace]");
            eprintln!("       nanomap explain <design> [--out PATH] [--top-k N]");
            eprintln!("       nanomap explain --check <artifact.json>");
            eprintln!("       nanomap profile <design> [--sample-hz N] [--top-k N] [--out DIR]");
            eprintln!("       nanomap qor-diff [--exact] <baseline.json> <new.json>");
            eprintln!("       nanomap perf-diff [--rel F] [--abs-ms F] <baseline.json> <new.json>");
            eprintln!("       nanomap runs <list | show ID | trend | regress | check-stream FILE>");
            eprintln!("       nanomap runs show --trace ID [--events PATH]");
            eprintln!("       nanomap submit <design> --addr HOST:PORT|SOCKET [options]");
            eprintln!("       nanomap top --addr HOST:PORT|SOCKET [--interval-ms N] [--once]");
            return ExitCode::FAILURE;
        }
    };
    if args.explain_out.is_some() || args.explain_top_k.is_some() {
        eprintln!("error: --out/--top-k belong to the explain subcommand");
        return ExitCode::FAILURE;
    }
    // The human-readable report moves to stderr when a JSON sink owns stdout.
    let stdout_claimed = !args.stdout_sinks().is_empty();
    macro_rules! report {
        ($($t:tt)*) => {
            if stdout_claimed {
                eprintln!($($t)*);
            } else {
                outln!($($t)*);
            }
        };
    }
    // Observability: the JSON sinks need the collector recording; --progress
    // and --trace additionally echo spans to stderr as they close.
    if args.metrics_path.is_some()
        || args.chrome_trace_path.is_some()
        || args.qor_path.is_some()
        || args.profile_dir.is_some()
        || args.live_status.is_some()
        || args.progress
        || args.trace
    {
        nanomap_observe::set_enabled(true);
    }
    // --profile: turn on memory tracking and the background sampler.
    // Runs without the flag never touch either, keeping their artifacts
    // byte-identical.
    if args.profile_dir.is_some() {
        nanomap_observe::reset_memory();
        nanomap_observe::set_memory_tracking(true);
        if !nanomap_observe::start_sampler(args.sample_hz) {
            eprintln!("warning: continuing without the sampling profiler");
        }
    }
    if args.trace {
        nanomap_observe::set_echo(Echo::Trace);
    } else if args.progress {
        nanomap_observe::set_echo(Echo::Progress);
    }
    let arch = ArchParams {
        num_reconf: if args.k == 0 { u32::MAX } else { args.k },
        ffs_per_le: args.ffs_per_le,
        ..ArchParams::paper()
    };
    let mut net = match load(&args.input, arch.lut_inputs) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.run_optimize {
        let (cleaned, stats) = optimize(&net);
        report!(
            "optimize: {} -> {} LUTs ({:.1}% removed, {} iterations)",
            stats.luts_before,
            stats.luts_after,
            100.0 * stats.reduction(),
            stats.iterations
        );
        net = cleaned;
    }
    let objective = match parse_objective(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut flow = match apply_defects(NanoMap::new(arch), &args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.explain_path.is_some() {
        flow = flow.with_explain();
    }
    if !args.physical {
        flow = flow.without_physical();
    }
    if args.bitmap_path.is_some() {
        flow = flow.with_bitstream();
    }
    if args.verify {
        flow = flow.with_verification();
    }
    if let Some(budget) = args.time_budget_ms {
        flow = flow.with_budget_ms(budget);
    }
    if args.anytime {
        flow = flow.with_anytime();
    }
    if args.exact_recovery {
        flow = flow.with_exact_recovery();
    }
    if let Some(budget) = args.sat_conflict_budget {
        flow = flow.with_sat_conflict_budget(budget);
    }
    if let Some(dir) = &args.checkpoint_dir {
        flow = flow.with_checkpoint_dir(dir);
    }
    let channels = flow.channels;
    // --live-status: start the event-bus streaming thread before the
    // flow so run-start is the first line out. The stream never blocks
    // or fails the mapping — a broken sink degrades to a warning.
    let mut live: Option<EventStream> = None;
    if let Some(path) = &args.live_status {
        match open_live_sink(path) {
            Ok(sink) => live = Some(EventStream::spawn(sink)),
            Err(e) => eprintln!("warning: {e}"),
        }
    }
    let run_id = (args.live_status.is_some() || args.ledger_path.is_some())
        .then(|| flow.run_id(&net, objective));
    let result = match &args.resume {
        Some(path) => match Checkpoint::load(Path::new(path)) {
            Ok(checkpoint) => {
                report!(
                    "resume: {} from after {} (candidate {}, remedy {})",
                    path,
                    checkpoint.phase.as_str(),
                    checkpoint.candidate_rank,
                    checkpoint.remedy.as_str()
                );
                flow.map_resume(&net, objective, &checkpoint)
            }
            // A torn or corrupt checkpoint is a typed error, and under
            // --anytime it degrades to a fresh run: losing a snapshot
            // costs time, never the result.
            Err(err) if args.anytime => {
                eprintln!("warning: checkpoint {path} unusable ({err}); --anytime restarts fresh");
                flow.map(&net, objective)
            }
            Err(err) => Err(FlowError::from(err)),
        },
        None => flow.map(&net, objective),
    };
    // The sampler stops whether the flow succeeded or not; its profile
    // only gets written on success (failures leave no partial sinks).
    let profile = if args.profile_dir.is_some() {
        nanomap_observe::stop_sampler()
    } else {
        None
    };
    match result {
        Ok(report) => {
            report!("{}", report.summary());
            report!(
                "  sharing: {:?}, NRAM sets used: {}, AT product: {:.0}",
                report.sharing,
                report.nram_sets_used,
                report.area_delay_product()
            );
            report!(
                "  power: logic {:.2} mW + reconfiguration {:.2} mW + leakage {:.2} mW = {:.2} mW",
                report.power.logic_mw,
                report.power.reconfiguration_mw,
                report.power.leakage_mw,
                report.power.total_mw()
            );
            if let Some(p) = &report.physical {
                report!(
                    "  physical: {} SMBs on {}x{}, routed delay {:.2} ns, {} config bits",
                    p.num_smbs,
                    p.grid.0,
                    p.grid.1,
                    p.routed_delay_ns,
                    p.bitmap_bits
                );
                report!(
                    "  interconnect: {} direct, {} len-1, {} len-4, {} global",
                    p.usage.direct,
                    p.usage.length1,
                    p.usage.length4,
                    p.usage.global
                );
            }
            if !report.recovery.attempts.is_empty() {
                report!("  recovery: {}", report.recovery.summary());
            }
            if report.degraded {
                report!("  DEGRADED: time budget expired; best-so-far mapping accepted");
                for d in &report.degradations {
                    report!("    {}", d.summary());
                }
            }
            if args.verify {
                report!("  folded-execution verification: PASSED");
            }
            let t = &report.phase_times;
            report!(
                "  time: total {:.1} ms (select {:.1}, fds {:.1}, pack {:.1}, place {:.1}, route {:.1}, bitmap {:.1}, verify {:.1}, explain {:.1})",
                t.total_ms,
                t.folding_select_ms,
                t.fds_ms,
                t.pack_ms,
                t.place_ms,
                t.route_ms,
                t.bitmap_ms,
                t.verify_ms,
                t.explain_ms
            );
            if let Some(memory) = &report.memory {
                report!(
                    "  memory: {} allocs, {:.1} MiB allocated, peak live {:.1} MiB{}",
                    memory.alloc_count,
                    memory.alloc_bytes as f64 / (1024.0 * 1024.0),
                    memory.peak_live_bytes as f64 / (1024.0 * 1024.0),
                    memory.peak_rss_kb.map_or(String::new(), |kb| format!(
                        ", peak RSS {:.1} MiB",
                        kb as f64 / 1024.0
                    ))
                );
            }
            if let (Some(dir), Some(profile)) = (&args.profile_dir, &profile) {
                if let Some(path) = write_profile_artifacts(dir, &report.circuit, profile) {
                    report!(
                        "  profile: {} samples at {:.0} Hz effective ({:.2}% overhead) -> {path}",
                        profile.total_samples,
                        profile.effective_hz,
                        profile.overhead_fraction() * 100.0
                    );
                }
            }
            if let (Some(path), Some(physical)) = (&args.bitmap_path, &report.physical) {
                if let Some(bytes) = &physical.bitstream {
                    if let Err(e) = atomic_write(Path::new(path), bytes) {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                    report!("  bitstream: {} bytes -> {path}", bytes.len());
                }
            }
            if args.progress || args.trace {
                let snap = nanomap_observe::snapshot();
                eprint!("{}", snap.render_tree());
            }
            // All JSON sinks render from one snapshot of the finished flow.
            let snap = nanomap_observe::snapshot();
            if let Some(path) = &args.metrics_path {
                let doc = JsonValue::object()
                    .with("report", report.to_json())
                    .with("metrics", snap.to_json());
                if let Err(e) = write_sink(path, &doc.to_pretty_string()) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                report!("  metrics: -> {path}");
            }
            if let Some(path) = &args.chrome_trace_path {
                // With --explain active the worst routed path rides along
                // as flow ("s"/"t"/"f") arrows on the trace; with
                // --profile the sampler's hits fold in as instant events.
                let mut extra = report
                    .explain
                    .as_ref()
                    .map(ExplainReport::chrome_flow_events)
                    .unwrap_or_default();
                if let Some(profile) = &profile {
                    extra.extend(profile.chrome_events());
                }
                let doc = snap.to_chrome_trace_with_events(extra);
                if let Err(e) = write_sink(path, &doc.to_pretty_string()) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                report!("  chrome trace: -> {path} (load at ui.perfetto.dev)");
            }
            if let Some(path) = &args.qor_path {
                let qor = QorReport::from_mapping(&report, &channels, &snap);
                let doc = QorDocument::new(vec![qor]).to_json();
                if let Err(e) = write_sink(path, &doc.to_pretty_string()) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                report!("  qor: -> {path}");
            }
            if let Some(path) = &args.explain_path {
                let Some(explain) = &report.explain else {
                    eprintln!("error: flow finished without attribution data");
                    return ExitCode::FAILURE;
                };
                if let Err(e) = explain.validate() {
                    eprintln!("error: artifact invariant violated: {e}");
                    return ExitCode::FAILURE;
                }
                if let Err(e) = write_sink(path, &explain.to_json().to_pretty_string()) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                report!("  explain: -> {path}");
            }
            let code = if report.degraded { EXIT_DEGRADED } else { 0 };
            finish_run(
                &args,
                &flow,
                objective,
                run_id.as_deref(),
                code,
                Some(&report),
                live,
            );
            ExitCode::from(code)
        }
        Err(e) => {
            eprintln!("error: {e}");
            // A recovery-ladder failure carries its full attempt history;
            // spell it out so the user can see what was tried.
            if let Some(log) = e.recovery_log() {
                for a in &log.attempts {
                    eprintln!(
                        "  attempt {} [candidate {}, {}] {} failed after {:.1} ms: {}",
                        a.attempt,
                        a.candidate,
                        a.remedy.as_str(),
                        a.phase,
                        a.wall_us as f64 / 1e3,
                        a.error
                    );
                }
            }
            let code = match &e {
                FlowError::RecoveryExhausted { .. } => EXIT_RECOVERY_EXHAUSTED,
                FlowError::ExactAssignUnsat { summary, .. } => {
                    eprintln!(
                        "  infeasibility proof: {} open slot(s) for {} SMBs; dominant defect class: {}",
                        summary.open_slots, summary.smbs, summary.dominant_class
                    );
                    EXIT_INFEASIBLE
                }
                FlowError::BudgetExhausted { degradations, .. } => {
                    for d in degradations {
                        eprintln!("  degraded: {}", d.summary());
                    }
                    EXIT_BUDGET_EXHAUSTED
                }
                _ => 1,
            };
            finish_run(&args, &flow, objective, run_id.as_deref(), code, None, live);
            ExitCode::from(code)
        }
    }
}

/// Terminal flight-recorder bookkeeping shared by every flow outcome:
/// publish the run-end event, shut the live stream down (reporting any
/// backpressure drops), and append the ledger line. None of it can fail
/// the run — a broken ledger or sink is a warning.
fn finish_run(
    args: &Args,
    flow: &NanoMap,
    objective: Objective,
    run_id: Option<&str>,
    exit_code: u8,
    report: Option<&MappingReport>,
    live: Option<EventStream>,
) {
    let exit_code = i32::from(exit_code);
    if let Some(run_id) = run_id {
        runs::publish_run_end(run_id, exit_code, report);
    }
    if let Some(stream) = live {
        let stats = stream.finish();
        if stats.dropped > 0 {
            eprintln!(
                "warning: --live-status: {} events dropped under backpressure",
                stats.dropped
            );
        }
    }
    if let (Some(path), Some(run_id), Some(report)) = (&args.ledger_path, run_id, report) {
        let mut record = RunRecord::from_report(report, run_id.to_string(), exit_code);
        record.objective = objective.key();
        record.place_seed = flow.place_options.seed;
        record.route_seed = flow.route_options.seed;
        if let Err(e) = runs::append_run(Path::new(path), &record) {
            eprintln!("warning: --ledger {path}: {e}");
        }
    }
}
