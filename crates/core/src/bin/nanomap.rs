//! `nanomap` — command-line driver for the NanoMap flow.
//!
//! ```text
//! nanomap <design.vhd | design.blif> [options]
//!   --objective delay|area|at   optimization target (default: at)
//!   --max-les N                 area budget in logic elements
//!   --max-delay NS              delay budget in nanoseconds
//!   --k N                       NRAM configuration sets (default 16; 0 = unbounded)
//!   --ffs-per-le N              flip-flops per LE (default 2)
//!   --optimize                  run the LUT-network cleanup passes first
//!   --no-physical               skip clustering/placement/routing
//!   --verify                    check folded execution against simulation
//!   --bitmap PATH               write the packed binary bitstream to PATH
//!   --metrics PATH              write spans/counters/report as JSON to PATH
//!   --progress                  echo top-level phase timings to stderr
//!   --trace                     echo every span to stderr as it closes
//! ```

use std::process::ExitCode;

use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_netlist::{blif, vhdl, LutNetwork};
use nanomap_observe::{Echo, JsonValue};
use nanomap_techmap::{expand, optimize, ExpandOptions};

struct Args {
    input: String,
    objective: String,
    max_les: Option<u32>,
    max_delay: Option<f64>,
    k: u32,
    ffs_per_le: u32,
    run_optimize: bool,
    physical: bool,
    verify: bool,
    bitmap_path: Option<String>,
    metrics_path: Option<String>,
    progress: bool,
    trace: bool,
}

/// Pulls the value following a `--flag VALUE` option off the iterator.
fn value(iter: &mut impl Iterator<Item = String>, name: &str) -> Result<String, String> {
    iter.next().ok_or_else(|| format!("{name} needs a value"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        objective: "at".into(),
        max_les: None,
        max_delay: None,
        k: 16,
        ffs_per_le: 2,
        run_optimize: false,
        physical: true,
        verify: false,
        bitmap_path: None,
        metrics_path: None,
        progress: false,
        trace: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--objective" => args.objective = value(&mut iter, "--objective")?,
            "--max-les" => {
                args.max_les = Some(
                    value(&mut iter, "--max-les")?
                        .parse()
                        .map_err(|e| format!("--max-les: {e}"))?,
                )
            }
            "--max-delay" => {
                args.max_delay = Some(
                    value(&mut iter, "--max-delay")?
                        .parse()
                        .map_err(|e| format!("--max-delay: {e}"))?,
                )
            }
            "--k" => {
                args.k = value(&mut iter, "--k")?
                    .parse()
                    .map_err(|e| format!("--k: {e}"))?
            }
            "--ffs-per-le" => {
                args.ffs_per_le = value(&mut iter, "--ffs-per-le")?
                    .parse()
                    .map_err(|e| format!("--ffs-per-le: {e}"))?
            }
            "--bitmap" => args.bitmap_path = Some(value(&mut iter, "--bitmap")?),
            "--metrics" => args.metrics_path = Some(value(&mut iter, "--metrics")?),
            "--optimize" => args.run_optimize = true,
            "--no-physical" => args.physical = false,
            "--verify" => args.verify = true,
            "--progress" => args.progress = true,
            "--trace" => args.trace = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see --help)"))
            }
            other => {
                if !args.input.is_empty() {
                    return Err("multiple input files".into());
                }
                args.input = other.to_string();
            }
        }
    }
    if args.input.is_empty() {
        return Err("missing input file".into());
    }
    Ok(args)
}

fn load(path: &str, lut_inputs: u32) -> Result<LutNetwork, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".blif") {
        blif::parse(&text).map_err(|e| format!("{path}: {e}"))
    } else if path.ends_with(".vhd") || path.ends_with(".vhdl") {
        let circuit = vhdl::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        expand(
            &circuit,
            ExpandOptions {
                lut_inputs,
                ..ExpandOptions::default()
            },
        )
        .map_err(|e| format!("{path}: {e}"))
    } else {
        Err(format!("{path}: unknown extension (use .vhd/.vhdl/.blif)"))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprintln!("usage: nanomap <design.vhd | design.blif> [--objective delay|area|at]");
            eprintln!("       [--max-les N] [--max-delay NS] [--k N] [--ffs-per-le N]");
            eprintln!("       [--optimize] [--no-physical] [--verify] [--bitmap PATH]");
            eprintln!("       [--metrics PATH] [--progress] [--trace]");
            return ExitCode::FAILURE;
        }
    };
    // Observability: --metrics needs the collector recording; --progress and
    // --trace additionally echo spans to stderr as they close.
    if args.metrics_path.is_some() || args.progress || args.trace {
        nanomap_observe::set_enabled(true);
    }
    if args.trace {
        nanomap_observe::set_echo(Echo::Trace);
    } else if args.progress {
        nanomap_observe::set_echo(Echo::Progress);
    }
    let arch = ArchParams {
        num_reconf: if args.k == 0 { u32::MAX } else { args.k },
        ffs_per_le: args.ffs_per_le,
        ..ArchParams::paper()
    };
    let mut net = match load(&args.input, arch.lut_inputs) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.run_optimize {
        let (cleaned, stats) = optimize(&net);
        println!(
            "optimize: {} -> {} LUTs ({:.1}% removed, {} iterations)",
            stats.luts_before,
            stats.luts_after,
            100.0 * stats.reduction(),
            stats.iterations
        );
        net = cleaned;
    }
    let objective = match args.objective.as_str() {
        "delay" => Objective::MinDelay {
            max_les: args.max_les,
        },
        "area" => Objective::MinArea {
            max_delay_ns: args.max_delay,
        },
        "at" => Objective::MinAreaDelayProduct,
        other => {
            eprintln!("error: unknown objective `{other}` (delay|area|at)");
            return ExitCode::FAILURE;
        }
    };
    let mut flow = NanoMap::new(arch);
    if !args.physical {
        flow = flow.without_physical();
    }
    if args.bitmap_path.is_some() {
        flow = flow.with_bitstream();
    }
    if args.verify {
        flow = flow.with_verification();
    }
    match flow.map(&net, objective) {
        Ok(report) => {
            println!("{}", report.summary());
            println!(
                "  sharing: {:?}, NRAM sets used: {}, AT product: {:.0}",
                report.sharing,
                report.nram_sets_used,
                report.area_delay_product()
            );
            println!(
                "  power: logic {:.2} mW + reconfiguration {:.2} mW + leakage {:.2} mW = {:.2} mW",
                report.power.logic_mw,
                report.power.reconfiguration_mw,
                report.power.leakage_mw,
                report.power.total_mw()
            );
            if let Some(p) = &report.physical {
                println!(
                    "  physical: {} SMBs on {}x{}, routed delay {:.2} ns, {} config bits",
                    p.num_smbs, p.grid.0, p.grid.1, p.routed_delay_ns, p.bitmap_bits
                );
                println!(
                    "  interconnect: {} direct, {} len-1, {} len-4, {} global",
                    p.usage.direct, p.usage.length1, p.usage.length4, p.usage.global
                );
            }
            if args.verify {
                println!("  folded-execution verification: PASSED");
            }
            let t = &report.phase_times;
            println!(
                "  time: total {:.1} ms (select {:.1}, fds {:.1}, pack {:.1}, place {:.1}, route {:.1}, bitmap {:.1}, verify {:.1})",
                t.total_ms,
                t.folding_select_ms,
                t.fds_ms,
                t.pack_ms,
                t.place_ms,
                t.route_ms,
                t.bitmap_ms,
                t.verify_ms
            );
            if let (Some(path), Some(physical)) = (&args.bitmap_path, &report.physical) {
                if let Some(bytes) = &physical.bitstream {
                    if let Err(e) = std::fs::write(path, bytes) {
                        eprintln!("error: writing {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("  bitstream: {} bytes -> {path}", bytes.len());
                }
            }
            if args.progress || args.trace {
                let snap = nanomap_observe::snapshot();
                eprint!("{}", snap.render_tree());
            }
            if let Some(path) = &args.metrics_path {
                let snap = nanomap_observe::snapshot();
                let doc = JsonValue::object()
                    .with("report", report.to_json())
                    .with("metrics", snap.to_json());
                if let Err(e) = std::fs::write(path, doc.to_pretty_string()) {
                    eprintln!("error: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("  metrics: -> {path}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
