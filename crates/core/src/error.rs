//! Flow-level errors.

use std::error::Error;
use std::fmt;

use nanomap_observe::Degradation;

use crate::artifact::ArtifactError;
use crate::checkpoint::CheckpointError;
use crate::recovery::RecoveryLog;

/// Errors produced by the NanoMap flow.
#[derive(Debug)]
pub enum FlowError {
    /// The input netlist is malformed.
    Netlist(nanomap_netlist::NetlistError),
    /// Technology mapping failed.
    Techmap(nanomap_techmap::TechmapError),
    /// No folding configuration satisfies the constraints.
    NoFeasibleFolding {
        /// Human-readable explanation (which constraint failed).
        reason: String,
    },
    /// Scheduling failed unexpectedly.
    Sched(nanomap_sched::SchedError),
    /// Clustering failed.
    Pack(nanomap_pack::PackError),
    /// Placement failed.
    Place(nanomap_place::PlaceError),
    /// Routing failed after all retries.
    Route(nanomap_route::RouteError),
    /// The folded execution model diverged from the reference simulation.
    VerificationFailed {
        /// Description of the first divergence.
        detail: String,
    },
    /// Physical design failed on every rung of the recovery ladder, for
    /// every feasible folding candidate. The log holds the full attempt
    /// history (remedy, phase and error of each try).
    RecoveryExhausted {
        /// Every attempt the ladder made before giving up.
        log: RecoveryLog,
    },
    /// The wall-clock budget expired before a complete mapping was
    /// produced and anytime mode was off (a degraded best-so-far mapping
    /// existed but the caller asked for strict completion — rerun with
    /// anytime enabled, or a larger budget, to accept it).
    BudgetExhausted {
        /// The ladder history up to the point the budget ran out.
        log: RecoveryLog,
        /// Which phases returned degraded best-so-far results.
        degradations: Vec<Degradation>,
    },
    /// The exact SAT-based recovery rung *proved* no defect-legal slot
    /// assignment exists on the most generous grid the ladder grants —
    /// the fabric, not the heuristics, is the limit. The summary names
    /// the defect class responsible; the log holds the heuristic
    /// attempts that preceded the proof.
    ExactAssignUnsat {
        /// Every attempt made before (and during) the exact rung.
        log: RecoveryLog,
        /// Unsatisfiable-core summary: slot census and dominant defect
        /// class.
        summary: crate::exact::ExactUnsatSummary,
    },
    /// An internal invariant was violated — a bug in the flow, not a
    /// property of the input or the fabric.
    Internal {
        /// What broke.
        detail: String,
    },
    /// Writing or loading a checkpoint failed, or a checkpoint refused
    /// to resume against the given netlist/objective/architecture.
    Checkpoint(CheckpointError),
    /// An artifact sink write failed.
    Artifact(ArtifactError),
}

impl FlowError {
    /// The recovery-ladder history, for errors that carry one.
    pub fn recovery_log(&self) -> Option<&RecoveryLog> {
        match self {
            Self::RecoveryExhausted { log }
            | Self::BudgetExhausted { log, .. }
            | Self::ExactAssignUnsat { log, .. } => Some(log),
            _ => None,
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Netlist(e) => write!(f, "netlist error: {e}"),
            Self::Techmap(e) => write!(f, "technology mapping error: {e}"),
            Self::NoFeasibleFolding { reason } => {
                write!(f, "no feasible folding configuration: {reason}")
            }
            Self::Sched(e) => write!(f, "scheduling error: {e}"),
            Self::Pack(e) => write!(f, "clustering error: {e}"),
            Self::Place(e) => write!(f, "placement error: {e}"),
            Self::Route(e) => write!(f, "routing error: {e}"),
            Self::VerificationFailed { detail } => {
                write!(f, "folded execution diverged from reference: {detail}")
            }
            Self::RecoveryExhausted { log } => {
                write!(f, "physical design failed after {}", log.summary())?;
                if let Some(last) = log.attempts.last() {
                    write!(f, "; last failure ({}): {}", last.phase, last.error)?;
                }
                Ok(())
            }
            Self::BudgetExhausted { degradations, .. } => {
                write!(
                    f,
                    "time budget exhausted before a complete mapping (rerun with --anytime \
                     to accept the degraded result, or raise --time-budget-ms)"
                )?;
                if let Some(d) = degradations.last() {
                    write!(f, "; deepest degraded phase: {}", d.summary())?;
                }
                Ok(())
            }
            Self::ExactAssignUnsat { summary, .. } => {
                write!(f, "mapping proven infeasible on this fabric: {summary}")
            }
            Self::Internal { detail } => write!(f, "internal flow invariant violated: {detail}"),
            Self::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Self::Artifact(e) => write!(f, "artifact error: {e}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            Self::Techmap(e) => Some(e),
            Self::Sched(e) => Some(e),
            Self::Pack(e) => Some(e),
            Self::Place(e) => Some(e),
            Self::Route(e) => Some(e),
            Self::Checkpoint(e) => Some(e),
            Self::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for FlowError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}
impl From<ArtifactError> for FlowError {
    fn from(e: ArtifactError) -> Self {
        Self::Artifact(e)
    }
}

impl From<nanomap_netlist::NetlistError> for FlowError {
    fn from(e: nanomap_netlist::NetlistError) -> Self {
        Self::Netlist(e)
    }
}
impl From<nanomap_techmap::TechmapError> for FlowError {
    fn from(e: nanomap_techmap::TechmapError) -> Self {
        Self::Techmap(e)
    }
}
impl From<nanomap_sched::SchedError> for FlowError {
    fn from(e: nanomap_sched::SchedError) -> Self {
        Self::Sched(e)
    }
}
impl From<nanomap_pack::PackError> for FlowError {
    fn from(e: nanomap_pack::PackError) -> Self {
        Self::Pack(e)
    }
}
impl From<nanomap_place::PlaceError> for FlowError {
    fn from(e: nanomap_place::PlaceError) -> Self {
        Self::Place(e)
    }
}
impl From<nanomap_route::RouteError> for FlowError {
    fn from(e: nanomap_route::RouteError) -> Self {
        Self::Route(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FlowError::NoFeasibleFolding {
            reason: "area constraint of 10 LEs unreachable".into(),
        };
        assert!(e.to_string().contains("10 LEs"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }
}
