//! Crash-safe checkpoint/resume for the mapping flow.
//!
//! With a checkpoint directory configured, the flow serializes a
//! deterministic `nanomap-checkpoint-v1` snapshot after each completed
//! phase of the current physical-design attempt: FDS (the winning
//! candidate's schedules), pack (the temporal clustering) and place (the
//! final SMB positions). Snapshots are written through
//! [`crate::artifact::atomic_write`], so a crash — even a SIGKILL mid
//! write — leaves either the previous complete checkpoint or the new
//! one, never a torn file.
//!
//! `nanomap --resume PATH` reloads the snapshot, verifies that the
//! netlist (by FNV-1a fingerprint), objective and architecture match,
//! and restarts the flow from the last completed phase: restored
//! schedules skip FDS, a restored packing skips clustering, a restored
//! placement is reconstructed bit-exactly (placement cost, routability
//! and delay are pure recomputations). Because placement and routing are
//! seeded deterministically, the resumed run reproduces the
//! uninterrupted run's `MappingReport` exactly.
//!
//! A checkpoint pins one folding candidate and one recovery-ladder rung;
//! resume restarts the ladder at that rung and climbs from there. It
//! does not re-enumerate earlier candidates (their rejection is already
//! recorded in the embedded recovery log).

// Checkpoints sit on the CLI's resume path: malformed or stale files
// must surface as typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use nanomap_arch::{ArchParams, Grid, SmbPos};
use nanomap_netlist::{FfId, LutId, LutNetwork, SignalRef};
use nanomap_observe::{json, JsonValue};
use nanomap_pack::{Packing, Slice};
use nanomap_sched::Schedule;

use crate::artifact::atomic_write_text;
use crate::folding::{FoldingConfig, PlaneSharing};
use crate::recovery::{RecoveryLog, Remedy};

/// Schema tag stamped on every checkpoint file.
pub const CHECKPOINT_SCHEMA: &str = crate::artifact::versions::CHECKPOINT;

/// Errors from checkpoint save, load and validation.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the checkpoint file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// Description of the I/O failure.
        detail: String,
    },
    /// The file is not a structurally valid checkpoint.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// The checkpoint does not match the run it is being resumed into
    /// (different netlist, objective or architecture).
    Mismatch {
        /// The field that disagreed.
        what: &'static str,
        /// Value the current run expects.
        expected: String,
        /// Value stored in the checkpoint.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, detail } => write!(f, "{}: {detail}", path.display()),
            Self::Malformed { detail } => write!(f, "malformed checkpoint: {detail}"),
            Self::Mismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint was written for a different {what} \
                 (expected {expected}, found {found})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The last phase whose products the checkpoint holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckpointPhase {
    /// FDS re-scheduling of the winning candidate is done.
    Fds,
    /// Temporal clustering is done (packing snapshot present).
    Pack,
    /// Placement is done (packing + placement snapshots present).
    Place,
}

impl CheckpointPhase {
    /// Stable lowercase name for serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Fds => "fds",
            Self::Pack => "pack",
            Self::Place => "place",
        }
    }

    fn parse(name: &str) -> Option<Self> {
        match name {
            "fds" => Some(Self::Fds),
            "pack" => Some(Self::Pack),
            "place" => Some(Self::Place),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit fingerprint of a LUT network's full structure: inputs,
/// every LUT's truth table and connections, every flip-flop's data input
/// and bank, and the primary outputs. Any structural edit changes the
/// fingerprint, which is how resume refuses a checkpoint written for a
/// different netlist.
pub fn netlist_fingerprint(net: &LutNetwork) -> u64 {
    let mut h = Fnv1a::new();
    h.bytes(net.name().as_bytes());
    h.u64(net.num_inputs() as u64);
    h.u64(net.num_luts() as u64);
    h.u64(net.num_ffs() as u64);
    for (_, lut) in net.luts() {
        h.u64(u64::from(lut.truth.num_inputs()));
        h.u64(lut.truth.bits());
        for &input in &lut.inputs {
            h.signal(input);
        }
    }
    for (_, ff) in net.ffs() {
        h.signal(ff.d);
        match ff.bank {
            Some(bank) => {
                h.byte(1);
                h.u64(u64::from(bank));
            }
            None => h.byte(0),
        }
    }
    for (name, signal) in net.outputs() {
        h.bytes(name.as_bytes());
        h.signal(*signal);
    }
    h.finish()
}

struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
        self.byte(0xFF); // separator: "ab","c" hashes differently from "a","bc"
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn signal(&mut self, s: SignalRef) {
        match s {
            SignalRef::Input(i) => {
                self.byte(0);
                self.u64(i.index() as u64);
            }
            SignalRef::Lut(i) => {
                self.byte(1);
                self.u64(i.index() as u64);
            }
            SignalRef::Ff(i) => {
                self.byte(2);
                self.u64(i.index() as u64);
            }
            SignalRef::Const(b) => {
                self.byte(3);
                self.byte(u8::from(b));
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One plane's frozen FDS schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleSnapshot {
    /// Stage count.
    pub stages: u32,
    /// Stage of every scheduled item, in item order.
    pub stage_of: Vec<u32>,
}

impl ScheduleSnapshot {
    /// Freezes a schedule.
    pub fn capture(schedule: &Schedule) -> Self {
        Self {
            stages: schedule.stages,
            stage_of: schedule.stage_of.clone(),
        }
    }

    /// Rebuilds the schedule.
    pub fn restore(&self) -> Schedule {
        Schedule::new(self.stage_of.clone(), self.stages)
    }
}

/// Frozen temporal clustering, with the `HashMap`s flattened into sorted
/// arrays for deterministic serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackSnapshot {
    /// SMB count.
    pub num_smbs: u32,
    /// `(lut, smb)` pairs, sorted by LUT id.
    pub lut_smb: Vec<(u32, u32)>,
    /// `(lut, le)` pairs, sorted by LUT id.
    pub lut_le: Vec<(u32, u32)>,
    /// `(producer lut, smb)` pairs for cross-cycle stored values.
    pub stored_smb: Vec<(u32, u32)>,
    /// `(ff, smb)` pairs, sorted by flip-flop id.
    pub ff_smb: Vec<(u32, u32)>,
    /// `(smb, plane, stage, count)` LUT occupancy entries.
    pub lut_occupancy: Vec<(u32, u32, u32, u32)>,
    /// `(smb, plane, stage, count)` flip-flop occupancy entries.
    pub ff_occupancy: Vec<(u32, u32, u32, u32)>,
}

impl PackSnapshot {
    /// Freezes a packing.
    pub fn capture(packing: &Packing) -> Self {
        fn id_map<K: Copy>(map: &HashMap<K, u32>, index: impl Fn(K) -> u32) -> Vec<(u32, u32)> {
            let mut v: Vec<(u32, u32)> = map.iter().map(|(&k, &s)| (index(k), s)).collect();
            v.sort_unstable();
            v
        }
        fn occ_map(map: &HashMap<(u32, Slice), u32>) -> Vec<(u32, u32, u32, u32)> {
            let mut v: Vec<(u32, u32, u32, u32)> = map
                .iter()
                .map(|(&(smb, slice), &n)| (smb, slice.plane as u32, slice.stage, n))
                .collect();
            v.sort_unstable();
            v
        }
        Self {
            num_smbs: packing.num_smbs,
            lut_smb: id_map(&packing.lut_smb, |l: LutId| l.0),
            lut_le: id_map(&packing.lut_le, |l: LutId| l.0),
            stored_smb: id_map(&packing.stored_smb, |l: LutId| l.0),
            ff_smb: id_map(&packing.ff_smb, |f: FfId| f.0),
            lut_occupancy: occ_map(&packing.lut_occupancy),
            ff_occupancy: occ_map(&packing.ff_occupancy),
        }
    }

    /// Rebuilds the packing.
    pub fn restore(&self) -> Packing {
        fn occ_map(entries: &[(u32, u32, u32, u32)]) -> HashMap<(u32, Slice), u32> {
            entries
                .iter()
                .map(|&(smb, plane, stage, n)| {
                    (
                        (
                            smb,
                            Slice {
                                plane: plane as usize,
                                stage,
                            },
                        ),
                        n,
                    )
                })
                .collect()
        }
        Packing {
            num_smbs: self.num_smbs,
            lut_smb: self.lut_smb.iter().map(|&(l, s)| (LutId(l), s)).collect(),
            lut_le: self.lut_le.iter().map(|&(l, s)| (LutId(l), s)).collect(),
            stored_smb: self
                .stored_smb
                .iter()
                .map(|&(l, s)| (LutId(l), s))
                .collect(),
            ff_smb: self.ff_smb.iter().map(|&(f, s)| (FfId(f), s)).collect(),
            lut_occupancy: occ_map(&self.lut_occupancy),
            ff_occupancy: occ_map(&self.ff_occupancy),
        }
    }
}

/// Frozen placement: the grid and every SMB's position. Cost,
/// routability and delay are recomputed on restore (they are pure
/// functions of the positions), so the snapshot stays small and exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceSnapshot {
    /// Grid width.
    pub width: u16,
    /// Grid height.
    pub height: u16,
    /// `(x, y)` of every SMB, indexed by SMB id.
    pub pos: Vec<(u16, u16)>,
}

impl PlaceSnapshot {
    /// Freezes a placement's grid and positions.
    pub fn capture(grid: Grid, pos_of: &[SmbPos]) -> Self {
        Self {
            width: grid.width,
            height: grid.height,
            pos: pos_of.iter().map(|p| (p.x, p.y)).collect(),
        }
    }

    /// Rebuilds the grid and positions.
    ///
    /// # Errors
    ///
    /// Rejects an empty grid or out-of-grid positions.
    pub fn restore(&self) -> Result<(Grid, Vec<SmbPos>), CheckpointError> {
        if self.width == 0 || self.height == 0 {
            return Err(CheckpointError::Malformed {
                detail: format!("placement grid {}x{} is empty", self.width, self.height),
            });
        }
        for &(x, y) in &self.pos {
            if x >= self.width || y >= self.height {
                return Err(CheckpointError::Malformed {
                    detail: format!(
                        "SMB position ({x}, {y}) is outside the {}x{} grid",
                        self.width, self.height
                    ),
                });
            }
        }
        Ok((
            Grid::new(self.width, self.height),
            self.pos.iter().map(|&(x, y)| SmbPos::new(x, y)).collect(),
        ))
    }
}

/// A complete flow checkpoint: identity (netlist hash, objective,
/// architecture), the pinned candidate and ladder rung, the per-phase
/// products completed so far, and the recovery history.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Circuit name (for the file name and human eyes; identity is the
    /// hash).
    pub circuit: String,
    /// [`netlist_fingerprint`] of the mapped network.
    pub netlist_hash: u64,
    /// [`crate::Objective::key`] of the run's objective.
    pub objective: String,
    /// Architecture scalars that shape the mapping.
    pub lut_inputs: u32,
    /// LUTs per LE.
    pub luts_per_le: u32,
    /// Flip-flops per LE.
    pub ffs_per_le: u32,
    /// NRAM configuration sets.
    pub num_reconf: u32,
    /// The last completed phase.
    pub phase: CheckpointPhase,
    /// Preference-order rank of the pinned folding candidate.
    pub candidate_rank: usize,
    /// Folding level of that candidate (`None` = no folding).
    pub level: Option<u32>,
    /// Folding stages of that candidate.
    pub stages: u32,
    /// Plane sharing mode of that candidate.
    pub sharing: PlaneSharing,
    /// The recovery-ladder rung the attempt runs with.
    pub remedy: Remedy,
    /// Effective placement seed of the attempt (RNG state: annealing is
    /// a pure function of this seed and the inputs).
    pub place_seed: u64,
    /// Effective routing seed of the attempt.
    pub route_seed: u64,
    /// Per-plane FDS schedules of the candidate.
    pub schedules: Vec<ScheduleSnapshot>,
    /// Ladder history up to the checkpoint.
    pub recovery: RecoveryLog,
    /// Clustering products (phases `pack` and later).
    pub packing: Option<PackSnapshot>,
    /// Placement products (phase `place`).
    pub placement: Option<PlaceSnapshot>,
}

/// Hex form of a 64-bit value (JSON integers are `i64`; hashes and
/// derived seeds overflow them).
fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

fn parse_hex64(s: &str, what: &str) -> Result<u64, CheckpointError> {
    u64::from_str_radix(s, 16).map_err(|e| CheckpointError::Malformed {
        detail: format!("`{what}` is not a 64-bit hex value: {e}"),
    })
}

fn pairs_to_json(pairs: &[(u32, u32)]) -> JsonValue {
    JsonValue::from(
        pairs
            .iter()
            .map(|&(a, b)| JsonValue::from(vec![JsonValue::from(a), JsonValue::from(b)]))
            .collect::<Vec<_>>(),
    )
}

fn quads_to_json(quads: &[(u32, u32, u32, u32)]) -> JsonValue {
    JsonValue::from(
        quads
            .iter()
            .map(|&(a, b, c, d)| {
                JsonValue::from(vec![
                    JsonValue::from(a),
                    JsonValue::from(b),
                    JsonValue::from(c),
                    JsonValue::from(d),
                ])
            })
            .collect::<Vec<_>>(),
    )
}

fn int_row(value: &JsonValue, arity: usize, what: &str) -> Result<Vec<u32>, CheckpointError> {
    let row = value.as_array().ok_or_else(|| CheckpointError::Malformed {
        detail: format!("`{what}` entry is not an array"),
    })?;
    if row.len() != arity {
        return Err(CheckpointError::Malformed {
            detail: format!("`{what}` entry has {} fields, expected {arity}", row.len()),
        });
    }
    row.iter()
        .map(|v| {
            v.as_int()
                .filter(|&i| i >= 0 && i <= i64::from(u32::MAX))
                .map(|i| i as u32)
                .ok_or_else(|| CheckpointError::Malformed {
                    detail: format!("`{what}` entry holds a non-u32 value"),
                })
        })
        .collect()
}

fn int_rows<T>(
    value: Option<&JsonValue>,
    what: &str,
    arity: usize,
    build: impl Fn(&[u32]) -> T,
) -> Result<Vec<T>, CheckpointError> {
    value
        .and_then(JsonValue::as_array)
        .ok_or_else(|| CheckpointError::Malformed {
            detail: format!("missing array `{what}`"),
        })?
        .iter()
        .map(|row| Ok(build(&int_row(row, arity, what)?)))
        .collect()
}

fn get_str<'a>(value: &'a JsonValue, field: &str) -> Result<&'a str, CheckpointError> {
    value
        .get(field)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| CheckpointError::Malformed {
            detail: format!("missing string `{field}`"),
        })
}

fn get_u32(value: &JsonValue, field: &str) -> Result<u32, CheckpointError> {
    value
        .get(field)
        .and_then(JsonValue::as_int)
        .filter(|&i| i >= 0 && i <= i64::from(u32::MAX))
        .map(|i| i as u32)
        .ok_or_else(|| CheckpointError::Malformed {
            detail: format!("missing u32 `{field}`"),
        })
}

impl Checkpoint {
    /// Deterministic JSON form.
    pub fn to_json(&self) -> JsonValue {
        let schedules: Vec<JsonValue> = self
            .schedules
            .iter()
            .map(|s| {
                JsonValue::object().with("stages", s.stages).with(
                    "stage_of",
                    s.stage_of
                        .iter()
                        .map(|&v| JsonValue::from(v))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let packing = self.packing.as_ref().map(|p| {
            JsonValue::object()
                .with("num_smbs", p.num_smbs)
                .with("lut_smb", pairs_to_json(&p.lut_smb))
                .with("lut_le", pairs_to_json(&p.lut_le))
                .with("stored_smb", pairs_to_json(&p.stored_smb))
                .with("ff_smb", pairs_to_json(&p.ff_smb))
                .with("lut_occupancy", quads_to_json(&p.lut_occupancy))
                .with("ff_occupancy", quads_to_json(&p.ff_occupancy))
        });
        let placement = self.placement.as_ref().map(|p| {
            JsonValue::object()
                .with("width", p.width)
                .with("height", p.height)
                .with(
                    "pos",
                    JsonValue::from(
                        p.pos
                            .iter()
                            .map(|&(x, y)| {
                                JsonValue::from(vec![JsonValue::from(x), JsonValue::from(y)])
                            })
                            .collect::<Vec<_>>(),
                    ),
                )
        });
        JsonValue::object()
            .with("schema", CHECKPOINT_SCHEMA)
            .with("circuit", self.circuit.as_str())
            .with("netlist_hash", hex64(self.netlist_hash))
            .with("objective", self.objective.as_str())
            .with(
                "arch",
                JsonValue::object()
                    .with("lut_inputs", self.lut_inputs)
                    .with("luts_per_le", self.luts_per_le)
                    .with("ffs_per_le", self.ffs_per_le)
                    .with("num_reconf", self.num_reconf),
            )
            .with("phase", self.phase.as_str())
            .with("candidate_rank", self.candidate_rank as u64)
            .with("folding_level", self.level)
            .with("stages", self.stages)
            .with(
                "sharing",
                match self.sharing {
                    PlaneSharing::Shared => "shared",
                    PlaneSharing::PerPlane => "per-plane",
                },
            )
            .with("remedy", self.remedy.as_str())
            .with("place_seed", hex64(self.place_seed))
            .with("route_seed", hex64(self.route_seed))
            .with("schedules", schedules)
            .with("recovery", self.recovery.to_json())
            .with("packing", packing)
            .with("placement", placement)
    }

    /// Parses a checkpoint from its JSON form.
    ///
    /// # Errors
    ///
    /// Rejects anything without the `nanomap-checkpoint-v1` schema tag,
    /// or with missing/ill-typed fields.
    pub fn from_json(value: &JsonValue) -> Result<Self, CheckpointError> {
        let schema = get_str(value, "schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(CheckpointError::Malformed {
                detail: format!("schema is `{schema}`, expected `{CHECKPOINT_SCHEMA}`"),
            });
        }
        let phase_name = get_str(value, "phase")?;
        let phase =
            CheckpointPhase::parse(phase_name).ok_or_else(|| CheckpointError::Malformed {
                detail: format!("unknown phase `{phase_name}`"),
            })?;
        let sharing = match get_str(value, "sharing")? {
            "shared" => PlaneSharing::Shared,
            "per-plane" => PlaneSharing::PerPlane,
            other => {
                return Err(CheckpointError::Malformed {
                    detail: format!("unknown sharing mode `{other}`"),
                })
            }
        };
        let remedy_name = get_str(value, "remedy")?;
        let remedy = Remedy::parse(remedy_name).ok_or_else(|| CheckpointError::Malformed {
            detail: format!("unknown remedy `{remedy_name}`"),
        })?;
        let arch = value
            .get("arch")
            .ok_or_else(|| CheckpointError::Malformed {
                detail: "missing object `arch`".into(),
            })?;
        let mut schedules = Vec::new();
        for s in value
            .get("schedules")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| CheckpointError::Malformed {
                detail: "missing array `schedules`".into(),
            })?
        {
            let stage_of = s
                .get("stage_of")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| CheckpointError::Malformed {
                    detail: "schedule missing array `stage_of`".into(),
                })?
                .iter()
                .map(|v| {
                    v.as_int()
                        .filter(|&i| i >= 0 && i <= i64::from(u32::MAX))
                        .map(|i| i as u32)
                        .ok_or_else(|| CheckpointError::Malformed {
                            detail: "`stage_of` holds a non-u32 value".into(),
                        })
                })
                .collect::<Result<Vec<u32>, _>>()?;
            let stages = get_u32(s, "stages")?;
            if let Some(&bad) = stage_of.iter().find(|&&st| st >= stages) {
                return Err(CheckpointError::Malformed {
                    detail: format!("schedule stage {bad} is outside 0..{stages}"),
                });
            }
            schedules.push(ScheduleSnapshot { stages, stage_of });
        }
        let recovery = value
            .get("recovery")
            .ok_or_else(|| CheckpointError::Malformed {
                detail: "missing object `recovery`".into(),
            })
            .and_then(|v| {
                RecoveryLog::from_json(v).map_err(|detail| CheckpointError::Malformed { detail })
            })?;
        let packing = match value.get("packing") {
            None | Some(JsonValue::Null) => None,
            Some(p) => Some(PackSnapshot {
                num_smbs: get_u32(p, "num_smbs")?,
                lut_smb: int_rows(p.get("lut_smb"), "lut_smb", 2, |r| (r[0], r[1]))?,
                lut_le: int_rows(p.get("lut_le"), "lut_le", 2, |r| (r[0], r[1]))?,
                stored_smb: int_rows(p.get("stored_smb"), "stored_smb", 2, |r| (r[0], r[1]))?,
                ff_smb: int_rows(p.get("ff_smb"), "ff_smb", 2, |r| (r[0], r[1]))?,
                lut_occupancy: int_rows(p.get("lut_occupancy"), "lut_occupancy", 4, |r| {
                    (r[0], r[1], r[2], r[3])
                })?,
                ff_occupancy: int_rows(p.get("ff_occupancy"), "ff_occupancy", 4, |r| {
                    (r[0], r[1], r[2], r[3])
                })?,
            }),
        };
        let placement = match value.get("placement") {
            None | Some(JsonValue::Null) => None,
            Some(p) => {
                let dim = |field: &str| -> Result<u16, CheckpointError> {
                    get_u32(p, field)?
                        .try_into()
                        .map_err(|_| CheckpointError::Malformed {
                            detail: format!("`{field}` exceeds u16"),
                        })
                };
                Some(PlaceSnapshot {
                    width: dim("width")?,
                    height: dim("height")?,
                    pos: int_rows(p.get("pos"), "pos", 2, |r| (r[0] as u16, r[1] as u16))?,
                })
            }
        };
        if phase >= CheckpointPhase::Pack && packing.is_none() {
            return Err(CheckpointError::Malformed {
                detail: format!("phase `{}` requires a packing snapshot", phase.as_str()),
            });
        }
        if phase >= CheckpointPhase::Place && placement.is_none() {
            return Err(CheckpointError::Malformed {
                detail: "phase `place` requires a placement snapshot".into(),
            });
        }
        Ok(Self {
            circuit: get_str(value, "circuit")?.to_string(),
            netlist_hash: parse_hex64(get_str(value, "netlist_hash")?, "netlist_hash")?,
            objective: get_str(value, "objective")?.to_string(),
            lut_inputs: get_u32(arch, "lut_inputs")?,
            luts_per_le: get_u32(arch, "luts_per_le")?,
            ffs_per_le: get_u32(arch, "ffs_per_le")?,
            num_reconf: get_u32(arch, "num_reconf")?,
            phase,
            candidate_rank: get_u32(value, "candidate_rank")? as usize,
            level: value
                .get("folding_level")
                .and_then(JsonValue::as_int)
                .map(|v| v as u32),
            stages: get_u32(value, "stages")?,
            sharing,
            remedy,
            place_seed: parse_hex64(get_str(value, "place_seed")?, "place_seed")?,
            route_seed: parse_hex64(get_str(value, "route_seed")?, "route_seed")?,
            schedules,
            recovery,
            packing,
            placement,
        })
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// I/O failures carry the path; parse failures describe the first
    /// structural mismatch.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        nanomap_observe::failpoint::inject_io("checkpoint.load").map_err(|e| {
            CheckpointError::Io {
                path: path.to_path_buf(),
                detail: e.to_string(),
            }
        })?;
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        let value = json::parse(&text).map_err(|e| CheckpointError::Malformed {
            detail: format!("{}: {e}", path.display()),
        })?;
        Self::from_json(&value)
    }

    /// Verifies that the checkpoint belongs to this run: same netlist
    /// (by fingerprint), same objective, same architecture scalars.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] naming the first field that
    /// disagrees.
    pub fn validate(
        &self,
        net: &LutNetwork,
        objective_key: &str,
        arch: &ArchParams,
    ) -> Result<(), CheckpointError> {
        let mismatch = |what: &'static str, expected: String, found: String| {
            Err(CheckpointError::Mismatch {
                what,
                expected,
                found,
            })
        };
        let hash = netlist_fingerprint(net);
        if self.netlist_hash != hash {
            return mismatch("netlist", hex64(hash), hex64(self.netlist_hash));
        }
        if self.objective != objective_key {
            return mismatch("objective", objective_key.into(), self.objective.clone());
        }
        for (what, expected, found) in [
            (
                "architecture (lut_inputs)",
                arch.lut_inputs,
                self.lut_inputs,
            ),
            (
                "architecture (luts_per_le)",
                arch.luts_per_le,
                self.luts_per_le,
            ),
            (
                "architecture (ffs_per_le)",
                arch.ffs_per_le,
                self.ffs_per_le,
            ),
            (
                "architecture (num_reconf)",
                arch.num_reconf,
                self.num_reconf,
            ),
        ] {
            if expected != found {
                return mismatch(what, expected.to_string(), found.to_string());
            }
        }
        Ok(())
    }

    /// The folding configuration the checkpoint pins.
    pub fn folding_config(&self) -> FoldingConfig {
        FoldingConfig {
            level: self.level,
            stages: self.stages,
            sharing: self.sharing,
        }
    }
}

/// The checkpoint file name for a circuit (`<circuit>.ckpt.json`, with
/// path-hostile characters mapped to `_`).
pub fn checkpoint_file_name(circuit: &str) -> String {
    let safe: String = circuit
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}.ckpt.json")
}

/// Incremental checkpoint writer owned by one physical-design attempt:
/// the flow calls [`CheckpointWriter::write_fds`] /
/// [`CheckpointWriter::write_pack`] / [`CheckpointWriter::write_place`]
/// as phases complete, each call atomically replacing the single
/// `<circuit>.ckpt.json` file with a snapshot of everything done so far.
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    checkpoint: Checkpoint,
}

impl CheckpointWriter {
    /// Creates a writer in `dir` (created if missing) for a fresh
    /// attempt description. Nothing is written until the first phase
    /// completes.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn new(dir: &Path, checkpoint: Checkpoint) -> Result<Self, CheckpointError> {
        std::fs::create_dir_all(dir).map_err(|e| CheckpointError::Io {
            path: dir.to_path_buf(),
            detail: e.to_string(),
        })?;
        let path = dir.join(checkpoint_file_name(&checkpoint.circuit));
        Ok(Self { path, checkpoint })
    }

    /// The checkpoint file this writer maintains.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn flush(&self) -> Result<(), CheckpointError> {
        nanomap_observe::failpoint::inject_io("checkpoint.write").map_err(|e| {
            CheckpointError::Io {
                path: self.path.clone(),
                detail: e.to_string(),
            }
        })?;
        atomic_write_text(&self.path, &self.checkpoint.to_json().to_pretty_string()).map_err(
            |e| CheckpointError::Io {
                path: self.path.clone(),
                detail: e.source.to_string(),
            },
        )?;
        if nanomap_observe::events_enabled() {
            nanomap_observe::publish(nanomap_observe::EventKind::Checkpoint {
                phase: self.checkpoint.phase.as_str().to_string(),
                path: self.path.display().to_string(),
            });
        }
        Ok(())
    }

    /// Records FDS completion (schedules are already in the attempt
    /// description).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_fds(&mut self) -> Result<(), CheckpointError> {
        self.checkpoint.phase = CheckpointPhase::Fds;
        self.checkpoint.packing = None;
        self.checkpoint.placement = None;
        self.flush()
    }

    /// Records clustering completion.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_pack(&mut self, packing: &Packing) -> Result<(), CheckpointError> {
        self.checkpoint.phase = CheckpointPhase::Pack;
        self.checkpoint.packing = Some(PackSnapshot::capture(packing));
        self.flush()
    }

    /// Records placement completion.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_place(&mut self, grid: Grid, pos_of: &[SmbPos]) -> Result<(), CheckpointError> {
        self.checkpoint.phase = CheckpointPhase::Place;
        self.checkpoint.placement = Some(PlaceSnapshot::capture(grid, pos_of));
        self.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::TruthTable;

    fn tiny_net(tag: bool) -> LutNetwork {
        let mut net = LutNetwork::new("tiny");
        let ff = net.add_ff(SignalRef::Const(false), Some("t".into()));
        let inv = net.add_lut(TruthTable::inverter(), vec![SignalRef::Ff(ff)]);
        net.set_ff_input(ff, inv);
        net.add_output("q", SignalRef::Ff(ff));
        if tag {
            // A structurally different second output.
            net.add_output("q2", SignalRef::Const(true));
        }
        net
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            circuit: "fig1".into(),
            netlist_hash: 0xDEAD_BEEF_0BAD_F00D,
            objective: "min-at".into(),
            lut_inputs: 4,
            luts_per_le: 1,
            ffs_per_le: 2,
            num_reconf: 16,
            phase: CheckpointPhase::Place,
            candidate_rank: 1,
            level: Some(2),
            stages: 6,
            sharing: PlaneSharing::Shared,
            remedy: Remedy::Reseed,
            place_seed: 0xFFFF_FFFF_FFFF_FFFF,
            route_seed: 1,
            schedules: vec![ScheduleSnapshot {
                stages: 6,
                stage_of: vec![0, 3, 5],
            }],
            recovery: RecoveryLog::default(),
            packing: Some(PackSnapshot {
                num_smbs: 2,
                lut_smb: vec![(0, 0), (1, 1)],
                lut_le: vec![(0, 3), (1, 0)],
                stored_smb: vec![(0, 1)],
                ff_smb: vec![(0, 0)],
                lut_occupancy: vec![(0, 0, 0, 2), (1, 0, 3, 1)],
                ff_occupancy: vec![(0, 0, 0, 1)],
            }),
            placement: Some(PlaceSnapshot {
                width: 2,
                height: 1,
                pos: vec![(0, 0), (1, 0)],
            }),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let ckpt = sample();
        let back = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(back, ckpt);
        // Serialization itself is deterministic.
        assert_eq!(
            ckpt.to_json().to_pretty_string(),
            back.to_json().to_pretty_string()
        );
    }

    #[test]
    fn pack_snapshot_round_trips_the_packing() {
        let packing = sample().packing.unwrap().restore();
        assert_eq!(PackSnapshot::capture(&packing), sample().packing.unwrap());
        assert_eq!(packing.lut_smb[&LutId(1)], 1);
        assert_eq!(packing.lut_occupancy[&(1, Slice { plane: 0, stage: 3 })], 1);
    }

    #[test]
    fn place_snapshot_validates_bounds() {
        let good = sample().placement.unwrap();
        let (grid, pos) = good.restore().unwrap();
        assert_eq!((grid.width, grid.height), (2, 1));
        assert_eq!(pos, vec![SmbPos::new(0, 0), SmbPos::new(1, 0)]);
        let bad = PlaceSnapshot {
            pos: vec![(5, 0)],
            ..good
        };
        assert!(matches!(
            bad.restore(),
            Err(CheckpointError::Malformed { .. })
        ));
    }

    #[test]
    fn fingerprint_distinguishes_netlists_and_is_stable() {
        let a = netlist_fingerprint(&tiny_net(false));
        let b = netlist_fingerprint(&tiny_net(false));
        let c = netlist_fingerprint(&tiny_net(true));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn validate_rejects_wrong_netlist_objective_and_arch() {
        let net = tiny_net(false);
        let arch = ArchParams::paper();
        let mut ckpt = sample();
        ckpt.netlist_hash = netlist_fingerprint(&net);
        ckpt.lut_inputs = arch.lut_inputs;
        ckpt.luts_per_le = arch.luts_per_le;
        ckpt.ffs_per_le = arch.ffs_per_le;
        ckpt.num_reconf = arch.num_reconf;
        assert!(ckpt.validate(&net, "min-at", &arch).is_ok());
        assert!(matches!(
            ckpt.validate(&tiny_net(true), "min-at", &arch),
            Err(CheckpointError::Mismatch {
                what: "netlist",
                ..
            })
        ));
        assert!(ckpt.validate(&net, "min-delay", &arch).is_err());
        let other_arch = ArchParams {
            ffs_per_le: arch.ffs_per_le + 1,
            ..arch
        };
        assert!(ckpt.validate(&net, "min-at", &other_arch).is_err());
    }

    #[test]
    fn malformed_checkpoints_are_rejected_with_detail() {
        // `JsonValue::set` appends rather than replaces, so swap the
        // schema tag in the serialized form.
        let text = sample()
            .to_json()
            .to_compact_string()
            .replace(CHECKPOINT_SCHEMA, "nanomap-checkpoint-v9");
        let doc = nanomap_observe::json::parse(&text).expect("valid JSON");
        let e = Checkpoint::from_json(&doc).unwrap_err();
        assert!(e.to_string().contains("nanomap-checkpoint-v9"), "{e}");
        // A pack-phase checkpoint without a packing snapshot is invalid.
        let mut truncated = sample();
        truncated.phase = CheckpointPhase::Pack;
        truncated.packing = None;
        truncated.placement = None;
        assert!(Checkpoint::from_json(&truncated.to_json()).is_err());
    }

    #[test]
    fn writer_advances_phases_atomically() {
        let dir = std::env::temp_dir().join(format!("nanomap-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ckpt = sample();
        ckpt.phase = CheckpointPhase::Fds;
        let packing = ckpt.packing.take().unwrap().restore();
        let (grid, pos) = ckpt.placement.take().unwrap().restore().unwrap();
        let mut writer = CheckpointWriter::new(&dir, ckpt).unwrap();
        writer.write_fds().unwrap();
        let fds = Checkpoint::load(writer.path()).unwrap();
        assert_eq!(fds.phase, CheckpointPhase::Fds);
        assert!(fds.packing.is_none());
        writer.write_pack(&packing).unwrap();
        writer.write_place(grid, &pos).unwrap();
        let placed = Checkpoint::load(writer.path()).unwrap();
        assert_eq!(placed.phase, CheckpointPhase::Place);
        assert_eq!(placed.packing, Some(PackSnapshot::capture(&packing)));
        assert_eq!(placed.placement, Some(PlaceSnapshot::capture(grid, &pos)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_name_is_sanitized() {
        assert_eq!(checkpoint_file_name("fig1"), "fig1.ckpt.json");
        assert_eq!(checkpoint_file_name("a/b c"), "a_b_c.ckpt.json");
    }
}
