//! The structured recovery ladder.
//!
//! When physical design fails — placement cannot find room, or PathFinder
//! cannot untangle congestion (both far more likely on a defective
//! fabric) — the flow does not give up, and no longer just skips to the
//! next folding configuration. It climbs an explicit, bounded ladder of
//! remedies, cheapest first:
//!
//! 1. **Baseline** — the user's options exactly as configured (this rung
//!    is what a defect-free run executes, unchanged);
//! 2. **Reseed** — re-run annealing and routing with derived seeds: a
//!    different random trajectory often sidesteps a local minimum;
//! 3. **Widen grid** — give placement more spare slots (grid slack
//!    ×1.35), spreading congestion and defect clusters apart;
//! 4. **Widen channels** — add interconnect tracks (segment and global
//!    channels ×1.5), the classic FPGA answer to unroutability;
//! 5. **Next folding configuration** — fall back to the next-best
//!    candidate and restart the ladder (the paper's step 2–15 loop).
//!
//! Remedies are *cumulative*: rung 3 keeps the reseed of rung 2, rung 4
//! keeps both. Every failed attempt is recorded in a [`RecoveryLog`]
//! carried on the final `MappingReport` (or inside the terminal
//! `FlowError::RecoveryExhausted`), so a failure is always accompanied by
//! the full history of what was tried and why each attempt failed.

use nanomap_arch::ChannelConfig;
use nanomap_observe::JsonValue;
use nanomap_place::PlaceOptions;
use nanomap_route::RouteOptions;

/// Hard cap on physical-design attempts across the whole ladder (all
/// rungs of all candidates). Keeps pathological inputs bounded.
pub const MAX_TOTAL_ATTEMPTS: u32 = 24;

/// The escalation rungs tried per folding candidate, in order.
pub const LADDER: [Remedy; 4] = [
    Remedy::Baseline,
    Remedy::Reseed,
    Remedy::WidenGrid,
    Remedy::WidenChannels,
];

/// One rung of the recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Remedy {
    /// The user's options, unchanged.
    Baseline,
    /// Derived placement/routing seeds.
    Reseed,
    /// Reseed + 35 % more grid slack.
    WidenGrid,
    /// Reseed + wider grid + 50 % more segment/global tracks.
    WidenChannels,
    /// The ladder moved on to the next folding configuration.
    NextCandidate,
    /// Exact SAT-based slot assignment: the complete final rung, run
    /// only when every heuristic rung of every candidate has failed
    /// (and only when `--exact-recovery` is enabled). Placement becomes
    /// a CNF instance over the *precise* per-cluster defect view; a
    /// model is adopted as a placement and re-validated by the normal
    /// route/timing path, UNSAT becomes a typed infeasibility.
    ExactAssign,
    /// The time budget expired and the flow (in anytime mode) accepted a
    /// degraded best-so-far mapping instead of climbing further. A
    /// terminal marker, never executed as a rung: [`Remedy::apply`]
    /// treats it as the baseline.
    AcceptDegraded,
}

impl Remedy {
    /// Stable lowercase name for logs and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Baseline => "baseline",
            Self::Reseed => "reseed",
            Self::WidenGrid => "widen-grid",
            Self::WidenChannels => "widen-channels",
            Self::NextCandidate => "next-candidate",
            Self::ExactAssign => "exact-assign",
            Self::AcceptDegraded => "accept-degraded",
        }
    }

    /// Inverse of [`Remedy::as_str`], for checkpoint deserialization.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "baseline" => Some(Self::Baseline),
            "reseed" => Some(Self::Reseed),
            "widen-grid" => Some(Self::WidenGrid),
            "widen-channels" => Some(Self::WidenChannels),
            "next-candidate" => Some(Self::NextCandidate),
            "exact-assign" => Some(Self::ExactAssign),
            "accept-degraded" => Some(Self::AcceptDegraded),
            _ => None,
        }
    }

    /// The physical-design options this rung runs with, derived from the
    /// flow's configured baseline. Remedies accumulate down the ladder.
    pub fn apply(
        self,
        place: PlaceOptions,
        route: RouteOptions,
        channels: ChannelConfig,
    ) -> PhysicalOverrides {
        let mut o = PhysicalOverrides {
            place,
            route,
            channels,
        };
        if self == Remedy::Baseline || self == Remedy::AcceptDegraded {
            return o;
        }
        // Reseed (rungs 2+): decorrelate, deterministically.
        o.place.seed = place.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        o.route.seed = route.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        if self == Remedy::Reseed {
            return o;
        }
        // Widen grid (rungs 3+).
        o.place.grid_slack = place.grid_slack * 1.35;
        if self == Remedy::WidenGrid {
            return o;
        }
        // Widen channels (rung 4, and the exact-assign terminal rung,
        // which re-routes a solver placement under the most generous
        // interconnect the ladder ever grants): half again as many
        // segment tracks and global lines. Direct links are fixed
        // point-to-point wiring.
        o.channels.length1 = (channels.length1 * 3).div_ceil(2);
        o.channels.length4 = (channels.length4 * 3).div_ceil(2);
        o.channels.global = (channels.global * 3).div_ceil(2);
        o
    }
}

/// The concrete options one ladder attempt runs with.
#[derive(Debug, Clone, Copy)]
pub struct PhysicalOverrides {
    /// Placement options (possibly reseeded / slackened).
    pub place: PlaceOptions,
    /// Routing options (possibly reseeded).
    pub route: RouteOptions,
    /// Channel widths (possibly widened).
    pub channels: ChannelConfig,
}

/// One failed physical-design attempt.
#[derive(Debug, Clone, Eq)]
pub struct RecoveryAttempt {
    /// Global attempt index (0-based, across all candidates).
    pub attempt: u32,
    /// Index of the folding candidate in preference order.
    pub candidate: usize,
    /// Folding level of that candidate (`None` = no folding).
    pub folding_level: Option<u32>,
    /// Folding stages of that candidate.
    pub stages: u32,
    /// The rung that was being tried.
    pub remedy: Remedy,
    /// The flow phase that failed (`place`, `route` or `exact-assign`).
    pub phase: &'static str,
    /// Display of the failure.
    pub error: String,
    /// Wall-clock time the attempt consumed, in microseconds.
    pub wall_us: u64,
}

/// Equality ignores [`RecoveryAttempt::wall_us`]: two runs of the same
/// seed take different wall-clock time but must compare as the *same*
/// recovery history, which is what the determinism tests (and
/// `qor-diff --exact`) assert.
impl PartialEq for RecoveryAttempt {
    fn eq(&self, other: &Self) -> bool {
        self.attempt == other.attempt
            && self.candidate == other.candidate
            && self.folding_level == other.folding_level
            && self.stages == other.stages
            && self.remedy == other.remedy
            && self.phase == other.phase
            && self.error == other.error
    }
}

/// The full history of the recovery ladder for one mapping run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryLog {
    /// Every failed attempt, in order.
    pub attempts: Vec<RecoveryAttempt>,
    /// Rung escalations performed (baseline attempts excluded).
    pub escalations: u32,
    /// Candidate fallbacks performed (`next-candidate` escalations).
    pub candidate_fallbacks: u32,
    /// The remedy that finally succeeded, when the mapping succeeded
    /// after at least one failure. `Baseline` with empty `attempts`
    /// means the flow succeeded first try.
    pub succeeded_with: Option<Remedy>,
}

impl RecoveryLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total physical-design attempts so far (failed ones; the in-flight
    /// attempt is not counted until it fails).
    pub fn total_attempts(&self) -> u32 {
        self.attempts.len() as u32
    }

    /// `true` when the mapping needed any remedy beyond the baseline.
    pub fn recovered(&self) -> bool {
        self.succeeded_with.is_some_and(|r| r != Remedy::Baseline)
            || (!self.attempts.is_empty() && self.succeeded_with.is_some())
    }

    /// Records a failed attempt and bumps the observe counters.
    pub fn record(&mut self, attempt: RecoveryAttempt) {
        nanomap_observe::incr("flow.recovery.attempts", 1);
        if attempt.remedy != Remedy::Baseline {
            self.escalations += 1;
        }
        let series = nanomap_observe::series("flow.recovery.ladder");
        series.record(
            u64::from(attempt.attempt),
            ladder_height(attempt.remedy) as f64,
        );
        if nanomap_observe::events_enabled() {
            nanomap_observe::publish(nanomap_observe::EventKind::Recovery {
                attempt: u64::from(attempt.attempt),
                candidate: attempt.candidate,
                remedy: attempt.remedy.as_str().to_string(),
                phase: attempt.phase.to_string(),
                error: attempt.error.clone(),
                wall_ms: attempt.wall_us as f64 / 1e3,
            });
        }
        self.attempts.push(attempt);
    }

    /// Records falling back to the next folding candidate.
    pub fn record_candidate_fallback(&mut self) {
        nanomap_observe::incr("flow.recovery.escalations", 1);
        self.candidate_fallbacks += 1;
    }

    /// Total wall-clock burned by failed attempts, in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.attempts.iter().map(|a| a.wall_us).sum::<u64>() as f64 / 1e3
    }

    /// One-line human summary (`3 failed attempt(s) in 12.0 ms, 2
    /// escalation(s), ..., recovered via widen-grid`).
    pub fn summary(&self) -> String {
        let outcome = match self.succeeded_with {
            Some(r) => format!("recovered via {}", r.as_str()),
            None => "exhausted".to_string(),
        };
        format!(
            "{} failed attempt(s) in {:.1} ms, {} escalation(s), {} candidate fallback(s), {}",
            self.attempts.len(),
            self.wall_ms(),
            self.escalations,
            self.candidate_fallbacks,
            outcome
        )
    }

    /// JSON object mirroring the log.
    pub fn to_json(&self) -> JsonValue {
        let attempts: Vec<JsonValue> = self
            .attempts
            .iter()
            .map(|a| {
                JsonValue::object()
                    .with("attempt", a.attempt)
                    .with("candidate", a.candidate as u64)
                    .with("folding_level", a.folding_level)
                    .with("stages", a.stages)
                    .with("remedy", a.remedy.as_str())
                    .with("phase", a.phase)
                    .with("error", a.error.as_str())
                    .with("wall_us", a.wall_us)
            })
            .collect();
        JsonValue::object()
            .with("attempts", attempts)
            .with("escalations", self.escalations)
            .with("candidate_fallbacks", self.candidate_fallbacks)
            .with("succeeded_with", self.succeeded_with.map(Remedy::as_str))
    }

    /// Inverse of [`RecoveryLog::to_json`], for checkpoint resume.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch (missing
    /// field, unknown remedy or phase name).
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let int = |v: &JsonValue, field: &str, what: &str| -> Result<i64, String> {
            v.get(field)
                .and_then(JsonValue::as_int)
                .ok_or_else(|| format!("{what} missing integer `{field}`"))
        };
        let mut attempts = Vec::new();
        for (i, a) in value
            .get("attempts")
            .and_then(JsonValue::as_array)
            .ok_or("recovery log missing `attempts` array")?
            .iter()
            .enumerate()
        {
            let what = format!("recovery attempt {i}");
            let remedy_name = a
                .get("remedy")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{what} missing string `remedy`"))?;
            let remedy = Remedy::parse(remedy_name)
                .ok_or_else(|| format!("{what}: unknown remedy `{remedy_name}`"))?;
            // `phase` is a &'static str on the in-memory struct; map the
            // serialized name back onto the interned literals.
            let phase = match a.get("phase").and_then(JsonValue::as_str) {
                Some("place") => "place",
                Some("route") => "route",
                Some("exact-assign") => "exact-assign",
                Some(other) => return Err(format!("{what}: unknown phase `{other}`")),
                None => return Err(format!("{what} missing string `phase`")),
            };
            attempts.push(RecoveryAttempt {
                attempt: int(a, "attempt", &what)? as u32,
                candidate: int(a, "candidate", &what)? as usize,
                folding_level: a
                    .get("folding_level")
                    .and_then(JsonValue::as_int)
                    .map(|v| v as u32),
                stages: int(a, "stages", &what)? as u32,
                remedy,
                phase,
                error: a
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                // Absent in pre-timing checkpoints; 0 is an honest
                // "unknown" and is excluded from equality anyway.
                wall_us: a
                    .get("wall_us")
                    .and_then(JsonValue::as_int)
                    .unwrap_or_default() as u64,
            });
        }
        let succeeded_with = match value.get("succeeded_with").and_then(JsonValue::as_str) {
            Some(name) => Some(
                Remedy::parse(name)
                    .ok_or_else(|| format!("recovery log: unknown remedy `{name}`"))?,
            ),
            None => None,
        };
        Ok(Self {
            attempts,
            escalations: int(value, "escalations", "recovery log")? as u32,
            candidate_fallbacks: int(value, "candidate_fallbacks", "recovery log")? as u32,
            succeeded_with,
        })
    }
}

/// Ladder height of a remedy (for the telemetry series).
fn ladder_height(remedy: Remedy) -> u32 {
    match remedy {
        Remedy::Baseline => 0,
        Remedy::Reseed => 1,
        Remedy::WidenGrid => 2,
        Remedy::WidenChannels => 3,
        Remedy::NextCandidate => 4,
        Remedy::ExactAssign => 5,
        Remedy::AcceptDegraded => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_rung_changes_nothing() {
        let place = PlaceOptions::default();
        let route = RouteOptions::default();
        let channels = ChannelConfig::nature();
        let o = Remedy::Baseline.apply(place, route, channels);
        assert_eq!(o.place.seed, place.seed);
        assert_eq!(o.place.grid_slack, place.grid_slack);
        assert_eq!(o.route.seed, route.seed);
        assert_eq!(o.channels, channels);
    }

    #[test]
    fn remedies_accumulate_down_the_ladder() {
        let place = PlaceOptions::default();
        let route = RouteOptions::default();
        let channels = ChannelConfig::nature();

        let reseed = Remedy::Reseed.apply(place, route, channels);
        assert_ne!(reseed.place.seed, place.seed);
        assert_ne!(reseed.route.seed, route.seed);
        assert_eq!(reseed.place.grid_slack, place.grid_slack);
        assert_eq!(reseed.channels, channels);

        let grid = Remedy::WidenGrid.apply(place, route, channels);
        assert_eq!(grid.place.seed, reseed.place.seed);
        assert!(grid.place.grid_slack > place.grid_slack);
        assert_eq!(grid.channels, channels);

        let wide = Remedy::WidenChannels.apply(place, route, channels);
        assert_eq!(wide.place.seed, reseed.place.seed);
        assert_eq!(wide.place.grid_slack, grid.place.grid_slack);
        assert!(wide.channels.length1 > channels.length1);
        assert!(wide.channels.length4 > channels.length4);
        assert!(wide.channels.global > channels.global);
        assert_eq!(wide.channels.direct, channels.direct);
    }

    #[test]
    fn ladder_is_deterministic() {
        let a = Remedy::WidenChannels.apply(
            PlaceOptions::default(),
            RouteOptions::default(),
            ChannelConfig::nature(),
        );
        let b = Remedy::WidenChannels.apply(
            PlaceOptions::default(),
            RouteOptions::default(),
            ChannelConfig::nature(),
        );
        assert_eq!(a.place.seed, b.place.seed);
        assert_eq!(a.channels, b.channels);
    }

    #[test]
    fn log_records_and_summarizes() {
        let mut log = RecoveryLog::new();
        assert!(!log.recovered());
        log.record(RecoveryAttempt {
            attempt: 0,
            candidate: 0,
            folding_level: Some(1),
            stages: 12,
            remedy: Remedy::Baseline,
            phase: "place",
            error: "too many defects".into(),
            wall_us: 1_250,
        });
        log.record(RecoveryAttempt {
            attempt: 1,
            candidate: 0,
            folding_level: Some(1),
            stages: 12,
            remedy: Remedy::Reseed,
            phase: "route",
            error: "congestion".into(),
            wall_us: 9_000,
        });
        log.succeeded_with = Some(Remedy::WidenGrid);
        assert_eq!(log.total_attempts(), 2);
        assert_eq!(log.escalations, 1);
        assert!(log.recovered());
        let s = log.summary();
        assert!(s.contains("2 failed attempt(s)"), "{s}");
        assert!(s.contains("widen-grid"), "{s}");
        let json = log.to_json().to_compact_string();
        assert!(json.contains("\"remedy\":\"reseed\""), "{json}");
        assert!(json.contains("congestion"), "{json}");
    }

    #[test]
    fn remedy_names_are_stable() {
        for (r, name) in [
            (Remedy::Baseline, "baseline"),
            (Remedy::Reseed, "reseed"),
            (Remedy::WidenGrid, "widen-grid"),
            (Remedy::WidenChannels, "widen-channels"),
            (Remedy::NextCandidate, "next-candidate"),
            (Remedy::AcceptDegraded, "accept-degraded"),
        ] {
            assert_eq!(r.as_str(), name);
            assert_eq!(Remedy::parse(name), Some(r));
        }
        assert_eq!(Remedy::parse("warp-drive"), None);
    }

    #[test]
    fn accept_degraded_rung_changes_nothing() {
        let place = PlaceOptions::default();
        let o =
            Remedy::AcceptDegraded.apply(place, RouteOptions::default(), ChannelConfig::nature());
        assert_eq!(o.place.seed, place.seed);
        assert_eq!(o.place.grid_slack, place.grid_slack);
    }

    #[test]
    fn log_round_trips_through_json() {
        let mut log = RecoveryLog::new();
        log.record(RecoveryAttempt {
            attempt: 0,
            candidate: 1,
            folding_level: None,
            stages: 3,
            remedy: Remedy::WidenChannels,
            phase: "route",
            error: "congestion".into(),
            wall_us: 777,
        });
        log.record_candidate_fallback();
        log.succeeded_with = Some(Remedy::AcceptDegraded);
        let back = RecoveryLog::from_json(&log.to_json()).unwrap();
        assert_eq!(back, log);

        let bad = nanomap_observe::json::parse(
            r#"{"attempts":[{"attempt":0,"candidate":0,"stages":1,"remedy":"teleport","phase":"place","error":""}],"escalations":0,"candidate_fallbacks":0}"#,
        )
        .unwrap();
        assert!(RecoveryLog::from_json(&bad)
            .unwrap_err()
            .contains("teleport"));
    }
}
