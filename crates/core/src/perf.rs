//! Performance snapshots and the perf regression gate.
//!
//! The QoR gate ([`crate::qor`]) protects *what* the flow produces; this
//! module protects *how fast* it produces it. A [`PerfReport`] records,
//! per circuit, the median and p95 of every phase's wall-clock over N
//! repeated runs plus peak memory, and a [`PerfDocument`] bundles them
//! under the `nanomap-perf-v1` schema tag. `crates/bench`'s `perf` bin
//! generates these; committed baselines live in `results/perf/` next to
//! the QoR baselines, with the latest trajectory point at the repo root
//! as `BENCH_perf.json`.
//!
//! Unlike QoR, perf numbers are noisy — they measure the machine as much
//! as the code — so the gate ([`diff_perf`]) is built differently:
//!
//! * **one-sided**: only slowdowns fail; speedups are informational,
//! * **double-banded**: a regression must exceed *both* a relative
//!   threshold (default [`DEFAULT_REL_TOLERANCE`]) *and* an absolute
//!   guard band (default [`DEFAULT_ABS_GUARD_MS`]), so microsecond
//!   phases cannot fail on scheduler jitter,
//! * **median-gated**: p95 and memory metrics are reported, never gated
//!   (tail latency and RSS are tracked for trend analysis, not CI).
//!
//! A circuit present in the baseline but absent from the new document is
//! informational here (the perf-smoke CI job measures one benchmark
//! against the full-suite baseline); the QoR gate already fails if a
//! circuit disappears from the flow itself.

use std::collections::BTreeMap;

use nanomap_observe::{json, JsonValue};

use crate::diff::{DiffEntry, DiffStatus};

/// Schema tag stamped on every perf document.
pub const PERF_SCHEMA: &str = crate::artifact::versions::PERF;

/// Default relative slowdown tolerance (100% — perf gates catch real
/// regressions, not machine noise; tighten per call site as data
/// accumulates).
pub const DEFAULT_REL_TOLERANCE: f64 = 1.0;

/// Default absolute guard band in milliseconds: deltas smaller than this
/// never fail, whatever the relative change.
pub const DEFAULT_ABS_GUARD_MS: f64 = 25.0;

/// Perf snapshot of one circuit: metric name → value. Metric names
/// follow `<phase>.median_ms` / `<phase>.p95_ms` plus `peak_rss_kb` and
/// `peak_live_bytes`; only `*.median_ms` entries gate.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Circuit name.
    pub circuit: String,
    /// Runs aggregated into this report.
    pub runs: u32,
    /// Metrics, name → value (sorted, deterministic).
    pub metrics: BTreeMap<String, f64>,
}

impl PerfReport {
    /// Aggregates repeated per-run samples into one report. `samples`
    /// maps a metric base name (e.g. `"pack_ms"`) to its per-run values;
    /// each becomes `<base>.median_ms`/`<base>.p95_ms` with the `_ms`
    /// suffix of the base stripped. Non-timing extras (e.g.
    /// `peak_rss_kb`) pass through [`Self::set`].
    pub fn from_samples(circuit: &str, runs: u32, samples: &BTreeMap<String, Vec<f64>>) -> Self {
        let mut metrics = BTreeMap::new();
        for (base, values) in samples {
            if values.is_empty() {
                continue;
            }
            let stem = base.strip_suffix("_ms").unwrap_or(base);
            metrics.insert(format!("{stem}.median_ms"), percentile(values, 0.50));
            metrics.insert(format!("{stem}.p95_ms"), percentile(values, 0.95));
        }
        Self {
            circuit: circuit.to_string(),
            runs,
            metrics,
        }
    }

    /// Sets a non-timing metric (peak RSS, live bytes, ...).
    pub fn set(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), value);
    }

    /// Deterministic JSON serialization (keys sorted by `BTreeMap`).
    pub fn to_json(&self) -> JsonValue {
        let mut metrics = JsonValue::object();
        for (name, &value) in &self.metrics {
            metrics.set(name, value);
        }
        JsonValue::object()
            .with("circuit", self.circuit.as_str())
            .with("runs", self.runs)
            .with("metrics", metrics)
    }

    /// Parses one report out of its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let circuit = value
            .get("circuit")
            .and_then(JsonValue::as_str)
            .ok_or("perf report missing string `circuit`")?
            .to_string();
        let runs = value
            .get("runs")
            .and_then(JsonValue::as_int)
            .ok_or("perf report missing integer `runs`")?;
        let JsonValue::Object(entries) = value
            .get("metrics")
            .ok_or("perf report missing `metrics`")?
        else {
            return Err("`metrics` is not an object".into());
        };
        let mut metrics = BTreeMap::new();
        for (key, v) in entries {
            let number = match v {
                JsonValue::Int(i) => *i as f64,
                JsonValue::Float(f) => *f,
                other => return Err(format!("`metrics.{key}` is not a number: {other:?}")),
            };
            metrics.entry(key.clone()).or_insert(number);
        }
        Ok(Self {
            circuit,
            runs: runs.clamp(0, i64::from(u32::MAX)) as u32,
            metrics,
        })
    }
}

/// Midpoint-interpolated percentile of an unsorted sample set (`q` in
/// 0..=1). Empty input yields 0.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A perf document: one report per circuit plus the schema tag.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfDocument {
    /// Per-circuit reports in insertion order.
    pub reports: Vec<PerfReport>,
}

impl PerfDocument {
    /// Bundles reports into a document.
    pub fn new(reports: Vec<PerfReport>) -> Self {
        Self { reports }
    }

    /// Looks up a circuit's report by name.
    pub fn circuit(&self, name: &str) -> Option<&PerfReport> {
        self.reports.iter().find(|r| r.circuit == name)
    }

    /// Deterministic JSON serialization with the schema tag.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object().with("schema", PERF_SCHEMA).with(
            "circuits",
            JsonValue::Array(self.reports.iter().map(PerfReport::to_json).collect()),
        )
    }

    /// Parses a document from JSON text.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, a wrong/missing schema tag, or malformed
    /// reports.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        match value.get("schema").and_then(JsonValue::as_str) {
            Some(PERF_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported perf schema `{other}`")),
            None => return Err("missing `schema` tag (not a perf document?)".into()),
        }
        let circuits = value
            .get("circuits")
            .and_then(JsonValue::as_array)
            .ok_or("missing `circuits` array")?;
        let reports = circuits
            .iter()
            .map(PerfReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { reports })
    }
}

/// Whether a perf metric gates (only run-time medians do; p95 and memory
/// are trend telemetry).
pub fn perf_metric_gates(metric: &str) -> bool {
    metric.ends_with(".median_ms")
}

/// Compares a new perf document against a baseline.
///
/// One-sided: a gated metric fails only when the slowdown exceeds *both*
/// `rel_tolerance` (relative to the baseline) *and* `abs_guard_ms`
/// (absolute). Everything else — speedups, p95s, memory, circuits absent
/// on either side — is informational. Reuses the QoR [`DiffEntry`] type
/// so both gates render through the same reporting path.
pub fn diff_perf(
    baseline: &PerfDocument,
    new: &PerfDocument,
    rel_tolerance: f64,
    abs_guard_ms: f64,
) -> Vec<DiffEntry> {
    let mut entries = Vec::new();
    for base in &baseline.reports {
        let Some(fresh) = new.circuit(&base.circuit) else {
            // Informational: perf-smoke measures a subset of circuits.
            entries.push(DiffEntry {
                circuit: base.circuit.clone(),
                metric: "<circuit>".into(),
                baseline: None,
                new: None,
                tolerance: None,
                status: DiffStatus::Info,
            });
            continue;
        };
        let names: std::collections::BTreeSet<&String> =
            base.metrics.keys().chain(fresh.metrics.keys()).collect();
        for name in names {
            let b = base.metrics.get(name).copied();
            let n = fresh.metrics.get(name).copied();
            let gates = perf_metric_gates(name);
            let status = match (b, n) {
                (Some(b), Some(n)) if gates => {
                    let slowdown = n - b;
                    if slowdown > rel_tolerance * b.abs() && slowdown > abs_guard_ms {
                        DiffStatus::Regression
                    } else {
                        DiffStatus::Ok
                    }
                }
                (Some(_), None) if gates => DiffStatus::MissingInNew,
                (None, Some(_), ..) => DiffStatus::MissingInBaseline,
                _ => DiffStatus::Info,
            };
            entries.push(DiffEntry {
                circuit: base.circuit.clone(),
                metric: name.clone(),
                baseline: b,
                new: n,
                tolerance: gates.then_some(rel_tolerance),
                status,
            });
        }
    }
    for fresh in &new.reports {
        if baseline.circuit(&fresh.circuit).is_none() {
            entries.push(DiffEntry {
                circuit: fresh.circuit.clone(),
                metric: "<circuit>".into(),
                baseline: None,
                new: None,
                tolerance: None,
                status: DiffStatus::MissingInBaseline,
            });
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::has_regression;

    fn report(circuit: &str, metrics: &[(&str, f64)]) -> PerfReport {
        PerfReport {
            circuit: circuit.into(),
            runs: 5,
            metrics: metrics.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        }
    }

    #[test]
    fn document_round_trips_through_json() {
        let doc = PerfDocument::new(vec![report(
            "ex1",
            &[
                ("pack.median_ms", 12.0),
                ("pack.p95_ms", 14.5),
                ("peak_rss_kb", 30_000.0),
            ],
        )]);
        let text = doc.to_json().to_pretty_string();
        let parsed = PerfDocument::parse(&text).expect("parses");
        assert_eq!(parsed, doc);
        assert_eq!(text, parsed.to_json().to_pretty_string());
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(PerfDocument::parse(r#"{"schema":"nanomap-qor-v1","circuits":[]}"#).is_err());
        assert!(PerfDocument::parse(r#"{"circuits":[]}"#).is_err());
        assert!(PerfDocument::parse("not json").is_err());
    }

    #[test]
    fn from_samples_computes_median_and_p95() {
        let samples: BTreeMap<String, Vec<f64>> =
            [("place_ms".to_string(), vec![10.0, 20.0, 30.0, 40.0, 50.0])].into();
        let r = PerfReport::from_samples("ex1", 5, &samples);
        assert_eq!(r.metrics["place.median_ms"], 30.0);
        assert!((r.metrics["place.p95_ms"] - 48.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[1.0, 3.0], 0.5), 2.0);
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 1.0), 5.0);
    }

    #[test]
    fn gate_is_one_sided_and_double_banded() {
        let base = PerfDocument::new(vec![report("ex1", &[("place.median_ms", 100.0)])]);
        // Big relative AND absolute slowdown: fails.
        let slow = PerfDocument::new(vec![report("ex1", &[("place.median_ms", 300.0)])]);
        assert!(has_regression(&diff_perf(&base, &slow, 0.5, 25.0)));
        // Large relative but tiny absolute delta: guarded.
        let tiny_base = PerfDocument::new(vec![report("ex1", &[("fast.median_ms", 1.0)])]);
        let tiny_slow = PerfDocument::new(vec![report("ex1", &[("fast.median_ms", 10.0)])]);
        assert!(!has_regression(&diff_perf(
            &tiny_base, &tiny_slow, 0.5, 25.0
        )));
        // Large absolute but small relative delta: tolerated.
        let wide = PerfDocument::new(vec![report("ex1", &[("place.median_ms", 130.0)])]);
        assert!(!has_regression(&diff_perf(&base, &wide, 0.5, 25.0)));
        // Speedups never fail, however large.
        let fast = PerfDocument::new(vec![report("ex1", &[("place.median_ms", 1.0)])]);
        assert!(!has_regression(&diff_perf(&base, &fast, 0.5, 25.0)));
    }

    #[test]
    fn p95_and_memory_are_informational() {
        let base = PerfDocument::new(vec![report(
            "ex1",
            &[("place.p95_ms", 10.0), ("peak_rss_kb", 10_000.0)],
        )]);
        let blown = PerfDocument::new(vec![report(
            "ex1",
            &[("place.p95_ms", 9_999.0), ("peak_rss_kb", 9e9)],
        )]);
        assert!(!has_regression(&diff_perf(&base, &blown, 0.1, 1.0)));
    }

    #[test]
    fn missing_circuit_in_new_is_informational() {
        // perf-smoke diffs one measured benchmark against the full-suite
        // baseline; absent circuits must not fail the gate.
        let base = PerfDocument::new(vec![
            report("ex1", &[("place.median_ms", 10.0)]),
            report("FIR", &[("place.median_ms", 20.0)]),
        ]);
        let partial = PerfDocument::new(vec![report("ex1", &[("place.median_ms", 10.0)])]);
        assert!(!has_regression(&diff_perf(&base, &partial, 0.5, 25.0)));
        // But a gated metric vanishing from a measured circuit still fails.
        let dropped = PerfDocument::new(vec![report("ex1", &[]), report("FIR", &[])]);
        assert!(has_regression(&diff_perf(&base, &dropped, 0.5, 25.0)));
    }
}
