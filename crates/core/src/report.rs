//! Mapping reports.

use nanomap_arch::{PowerEstimate, WireType};
use nanomap_observe::{Degradation, JsonValue, MemoryReport};
use nanomap_route::InterconnectUsage;

use crate::explain::ExplainReport;
use crate::folding::PlaneSharing;
use crate::recovery::RecoveryLog;

/// Everything NanoMap reports about a finished mapping (the Table 1 /
/// Table 2 columns plus physical-design detail).
#[derive(Debug, Clone)]
pub struct MappingReport {
    /// Circuit name.
    pub circuit: String,
    /// Number of planes (`#Planes` column).
    pub num_planes: u32,
    /// Maximum plane logic depth (`Max plane depth` column).
    pub depth_max: u32,
    /// Total LUTs (`#LUTs` column).
    pub num_luts: u32,
    /// Total flip-flops (`#Flip-flops` column).
    pub num_ffs: u32,
    /// Chosen folding level (`None` = no folding).
    pub folding_level: Option<u32>,
    /// Folding stages per plane.
    pub stages: u32,
    /// Plane resource sharing mode.
    pub sharing: SharingMode,
    /// NRAM configuration sets consumed.
    pub nram_sets_used: u32,
    /// Logic elements required (`#LEs` column, the paper's area proxy).
    pub num_les: u32,
    /// Analytical circuit delay in ns (`Delay` column).
    pub delay_ns: f64,
    /// Estimated silicon area in µm² (SMB-granular, NRAM overhead
    /// included — see `nanomap_arch::AreaModel`).
    pub area_um2: f64,
    /// Power estimate (logic, run-time reconfiguration, leakage).
    pub power: PowerEstimate,
    /// Physical-design results, when the flow ran place-and-route.
    pub physical: Option<PhysicalReport>,
    /// QoR attribution (critical paths, congestion, occupancy), when the
    /// flow was asked to explain its results.
    pub explain: Option<ExplainReport>,
    /// Recovery-ladder history: every failed physical-design attempt and
    /// the remedy that finally succeeded. Empty on a clean first-try run.
    pub recovery: RecoveryLog,
    /// `true` when the time budget expired mid-flow and one or more
    /// phases returned a best-so-far result (anytime mode).
    pub degraded: bool,
    /// Which phases degraded and how far they got. Empty on complete
    /// runs.
    pub degradations: Vec<Degradation>,
    /// Wall-clock time spent in each flow phase. Always populated — the
    /// flow measures these with plain `Instant`s, independent of whether
    /// the observability collector is enabled.
    pub phase_times: PhaseTimes,
    /// Heap/RSS telemetry, populated only when the driver turned on
    /// allocation tracking (`None` keeps untracked artifacts
    /// byte-identical to pre-telemetry baselines).
    pub memory: Option<MemoryReport>,
}

/// Wall-clock milliseconds per flow phase (zero when a phase did not run).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Candidate enumeration + FDS evaluation of every folding config.
    pub folding_select_ms: f64,
    /// Re-scheduling (FDS) of the winning candidate.
    pub fds_ms: f64,
    /// Temporal clustering.
    pub pack_ms: f64,
    /// Two-step simulated-annealing placement.
    pub place_ms: f64,
    /// PathFinder routing (excluding bitmap generation).
    pub route_ms: f64,
    /// Configuration-bitmap generation.
    pub bitmap_ms: f64,
    /// Folded-execution verification.
    pub verify_ms: f64,
    /// Explain-artifact generation (critical-path tracing, congestion
    /// and occupancy grids) — the observability layer observing itself.
    pub explain_ms: f64,
    /// End-to-end mapping time.
    pub total_ms: f64,
    /// Budget left when the flow finished, `None` when it ran without a
    /// time budget (keeps unbudgeted artifacts byte-identical).
    pub budget_ms_remaining: Option<f64>,
}

impl PhaseTimes {
    /// Sum of the per-phase wall-clock entries (everything except
    /// `total_ms` and the budget remainder).
    pub fn phase_sum_ms(self) -> f64 {
        self.folding_select_ms
            + self.fds_ms
            + self.pack_ms
            + self.place_ms
            + self.route_ms
            + self.bitmap_ms
            + self.verify_ms
            + self.explain_ms
    }

    /// Self-consistency check: the per-phase sum must not exceed the
    /// reported total by more than `tol_frac` of the total plus a flat
    /// `slack_ms` guard. One-sided on purpose — inter-phase work the
    /// breakdown does not itemize (planes extraction, report assembly)
    /// legitimately makes the sum *undershoot* the total, and recovery-
    /// ladder retries overwrite per-attempt entries, but the sum ever
    /// *overshooting* the total means a phase was double-counted.
    pub fn reconcile(self, tol_frac: f64, slack_ms: f64) -> Result<(), String> {
        let sum = self.phase_sum_ms();
        let bound = self.total_ms * (1.0 + tol_frac) + slack_ms;
        if sum > bound {
            return Err(format!(
                "phase_times inconsistent: per-phase sum {sum:.3} ms exceeds \
                 total {:.3} ms (bound {bound:.3} ms)",
                self.total_ms
            ));
        }
        Ok(())
    }

    /// JSON object with one entry per phase. `budget_ms_remaining` is
    /// emitted only for budgeted runs, so unbudgeted artifacts stay
    /// byte-identical to pre-budget baselines.
    pub fn to_json(self) -> JsonValue {
        let times = JsonValue::object()
            .with("folding_select_ms", self.folding_select_ms)
            .with("fds_ms", self.fds_ms)
            .with("pack_ms", self.pack_ms)
            .with("place_ms", self.place_ms)
            .with("route_ms", self.route_ms)
            .with("bitmap_ms", self.bitmap_ms)
            .with("verify_ms", self.verify_ms)
            .with("explain_ms", self.explain_ms)
            .with("total_ms", self.total_ms);
        match self.budget_ms_remaining {
            Some(remaining) => times.with("budget_ms_remaining", remaining),
            None => times,
        }
    }
}

/// Serializable mirror of [`PlaneSharing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// Planes time-share LEs.
    Shared,
    /// Each plane owns its LEs.
    PerPlane,
}

impl SharingMode {
    /// Stable lowercase name for serialization.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Shared => "shared",
            Self::PerPlane => "per-plane",
        }
    }
}

impl From<PlaneSharing> for SharingMode {
    fn from(s: PlaneSharing) -> Self {
        match s {
            PlaneSharing::Shared => Self::Shared,
            PlaneSharing::PerPlane => Self::PerPlane,
        }
    }
}

/// Results of clustering, placement and routing.
#[derive(Debug, Clone)]
pub struct PhysicalReport {
    /// SMBs used after temporal clustering.
    pub num_smbs: u32,
    /// Grid dimensions (width, height).
    pub grid: (u16, u16),
    /// Final placement wirelength cost.
    pub placement_cost: f64,
    /// RISA peak channel utilization.
    pub peak_utilization: f64,
    /// Post-route circuit delay in ns.
    pub routed_delay_ns: f64,
    /// Interconnect usage counters.
    pub usage: UsageReport,
    /// Total configuration bits emitted.
    pub bitmap_bits: u64,
    /// The packed bitstream (see `nanomap_arch::pack_bitstream`), when the
    /// flow was asked to emit it.
    pub bitstream: Option<Vec<u8>>,
}

/// Serializable interconnect usage.
#[derive(Debug, Clone, Copy)]
pub struct UsageReport {
    /// Direct-link nodes used.
    pub direct: u64,
    /// Length-1 nodes used.
    pub length1: u64,
    /// Length-4 nodes used.
    pub length4: u64,
    /// Global-line nodes used.
    pub global: u64,
}

impl From<InterconnectUsage> for UsageReport {
    fn from(u: InterconnectUsage) -> Self {
        Self {
            direct: u.direct,
            length1: u.length1,
            length4: u.length4,
            global: u.global,
        }
    }
}

impl UsageReport {
    /// Total wire nodes used.
    pub fn total(&self) -> u64 {
        self.direct + self.length1 + self.length4 + self.global
    }

    /// Fraction of total wire usage carried by one tier (0.0 for an
    /// unused interconnect) — the heatmap legend's per-tier shares.
    pub fn fraction(&self, tier: WireType) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let count = match tier {
            WireType::Direct => self.direct,
            WireType::Length1 => self.length1,
            WireType::Length4 => self.length4,
            WireType::Global => self.global,
        };
        count as f64 / total as f64
    }

    /// JSON object with per-tier counts.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("direct", self.direct)
            .with("length1", self.length1)
            .with("length4", self.length4)
            .with("global", self.global)
            .with("total", self.total())
    }
}

impl PhysicalReport {
    /// JSON object mirroring the struct (the bitstream is reported by
    /// length, not content).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("num_smbs", self.num_smbs)
            .with("grid_width", self.grid.0)
            .with("grid_height", self.grid.1)
            .with("placement_cost", self.placement_cost)
            .with("peak_utilization", self.peak_utilization)
            .with("routed_delay_ns", self.routed_delay_ns)
            .with("usage", self.usage.to_json())
            .with("bitmap_bits", self.bitmap_bits)
            .with(
                "bitstream_bytes",
                self.bitstream.as_ref().map(|b| b.len() as u64),
            )
    }
}

impl MappingReport {
    /// Area-delay product with the LE count as the area proxy.
    pub fn area_delay_product(&self) -> f64 {
        f64::from(self.num_les) * self.delay_ns
    }

    /// Serializes the full report as a JSON object (serde-free, via the
    /// observe crate's emitter).
    pub fn to_json(&self) -> JsonValue {
        let json = JsonValue::object()
            .with("circuit", self.circuit.as_str())
            .with("num_planes", self.num_planes)
            .with("depth_max", self.depth_max)
            .with("num_luts", self.num_luts)
            .with("num_ffs", self.num_ffs)
            .with("folding_level", self.folding_level)
            .with("stages", self.stages)
            .with("sharing", self.sharing.as_str())
            .with("nram_sets_used", self.nram_sets_used)
            .with("num_les", self.num_les)
            .with("delay_ns", self.delay_ns)
            .with("area_delay_product", self.area_delay_product())
            .with("area_um2", self.area_um2)
            .with(
                "power_mw",
                JsonValue::object()
                    .with("logic", self.power.logic_mw)
                    .with("reconfiguration", self.power.reconfiguration_mw)
                    .with("leakage", self.power.leakage_mw)
                    .with("total", self.power.total_mw()),
            )
            .with(
                "physical",
                self.physical.as_ref().map(PhysicalReport::to_json),
            )
            .with("explain", self.explain.as_ref().map(ExplainReport::to_json))
            .with("recovery", self.recovery.to_json())
            .with("degraded", self.degraded)
            .with(
                "degradations",
                self.degradations
                    .iter()
                    .map(Degradation::to_json)
                    .collect::<Vec<_>>(),
            )
            .with("phase_times", self.phase_times.to_json());
        // Memory telemetry is emitted only when tracking ran, so
        // untracked artifacts stay byte-identical (same contract as
        // `budget_ms_remaining`).
        match &self.memory {
            Some(memory) => json.with("memory", memory.to_json()),
            None => json,
        }
    }

    /// A one-line summary in the style of a Table 1 row.
    pub fn summary(&self) -> String {
        format!(
            "{}: planes={} depth={} luts={} ffs={} level={} les={} delay={:.2}ns",
            self.circuit,
            self.num_planes,
            self.depth_max,
            self.num_luts,
            self.num_ffs,
            self.folding_level
                .map_or("none".to_string(), |p| p.to_string()),
            self.num_les,
            self.delay_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MappingReport {
        MappingReport {
            circuit: "ex1".into(),
            num_planes: 1,
            depth_max: 24,
            num_luts: 644,
            num_ffs: 50,
            folding_level: Some(1),
            stages: 24,
            sharing: SharingMode::Shared,
            nram_sets_used: 24,
            num_les: 34,
            delay_ns: 17.02,
            area_um2: 50_000.0,
            power: PowerEstimate {
                logic_mw: 0.2,
                reconfiguration_mw: 1.0,
                leakage_mw: 0.03,
            },
            physical: None,
            explain: None,
            recovery: RecoveryLog::default(),
            degraded: false,
            degradations: Vec::new(),
            phase_times: PhaseTimes::default(),
            memory: None,
        }
    }

    #[test]
    fn memory_is_emitted_only_when_tracked() {
        let untracked = report().to_json().to_compact_string();
        assert!(!untracked.contains("\"memory\""), "{untracked}");
        let mut tracked = report();
        tracked.memory = Some(MemoryReport {
            alloc_count: 10,
            dealloc_count: 5,
            alloc_bytes: 2048,
            dealloc_bytes: 1024,
            live_bytes: 1024,
            peak_live_bytes: 2048,
            peak_rss_kb: Some(4096),
            by_phase: vec![("pack", 10, 2048)],
        });
        let text = tracked.to_json().to_compact_string();
        assert!(text.contains("\"memory\""), "{text}");
        assert!(text.contains("\"peak_live_bytes\":2048"), "{text}");
    }

    #[test]
    fn phase_sum_reconciles_within_tolerance() {
        let times = PhaseTimes {
            folding_select_ms: 10.0,
            fds_ms: 5.0,
            pack_ms: 20.0,
            place_ms: 30.0,
            route_ms: 25.0,
            bitmap_ms: 2.0,
            verify_ms: 3.0,
            explain_ms: 0.0,
            total_ms: 100.0,
            budget_ms_remaining: None,
        };
        assert!((times.phase_sum_ms() - 95.0).abs() < 1e-12);
        assert!(times.reconcile(0.10, 1.0).is_ok());
        // Undershoot is always fine (unitemized inter-phase work).
        let sparse = PhaseTimes {
            total_ms: 100.0,
            place_ms: 40.0,
            ..PhaseTimes::default()
        };
        assert!(sparse.reconcile(0.0, 0.0).is_ok());
    }

    #[test]
    fn phase_sum_overshoot_fails_reconcile() {
        let double_counted = PhaseTimes {
            place_ms: 80.0,
            route_ms: 80.0,
            total_ms: 100.0,
            ..PhaseTimes::default()
        };
        let err = double_counted
            .reconcile(0.10, 1.0)
            .expect_err("160 ms of phases in a 100 ms flow");
        assert!(err.contains("exceeds"), "{err}");
        // A generous slack absorbs it (the perf harness's guard band).
        assert!(double_counted.reconcile(0.10, 100.0).is_ok());
    }

    #[test]
    fn budget_remaining_is_emitted_only_when_budgeted() {
        let unbudgeted = PhaseTimes::default().to_json().to_compact_string();
        assert!(!unbudgeted.contains("budget_ms_remaining"), "{unbudgeted}");
        let budgeted = PhaseTimes {
            budget_ms_remaining: Some(12.5),
            ..PhaseTimes::default()
        }
        .to_json()
        .to_compact_string();
        assert!(
            budgeted.contains("\"budget_ms_remaining\":12.5"),
            "{budgeted}"
        );
    }

    #[test]
    fn at_product() {
        let r = report();
        assert!((r.area_delay_product() - 34.0 * 17.02).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = report().summary();
        assert!(s.contains("ex1"));
        assert!(s.contains("les=34"));
        assert!(s.contains("level=1"));
    }

    #[test]
    fn usage_total() {
        let u = UsageReport {
            direct: 1,
            length1: 2,
            length4: 3,
            global: 4,
        };
        assert_eq!(u.total(), 10);
    }

    #[test]
    fn usage_fractions_sum_to_one() {
        let u = UsageReport {
            direct: 1,
            length1: 2,
            length4: 3,
            global: 4,
        };
        let sum: f64 = WireType::ALL.iter().map(|&w| u.fraction(w)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((u.fraction(WireType::Global) - 0.4).abs() < 1e-12);
        let empty = UsageReport {
            direct: 0,
            length1: 0,
            length4: 0,
            global: 0,
        };
        assert_eq!(empty.fraction(WireType::Direct), 0.0);
    }
}
