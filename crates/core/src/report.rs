//! Mapping reports.

use nanomap_arch::PowerEstimate;
use nanomap_route::InterconnectUsage;
use serde::{Deserialize, Serialize};

use crate::folding::PlaneSharing;

/// Everything NanoMap reports about a finished mapping (the Table 1 /
/// Table 2 columns plus physical-design detail).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingReport {
    /// Circuit name.
    pub circuit: String,
    /// Number of planes (`#Planes` column).
    pub num_planes: u32,
    /// Maximum plane logic depth (`Max plane depth` column).
    pub depth_max: u32,
    /// Total LUTs (`#LUTs` column).
    pub num_luts: u32,
    /// Total flip-flops (`#Flip-flops` column).
    pub num_ffs: u32,
    /// Chosen folding level (`None` = no folding).
    pub folding_level: Option<u32>,
    /// Folding stages per plane.
    pub stages: u32,
    /// Plane resource sharing mode.
    pub sharing: SharingMode,
    /// NRAM configuration sets consumed.
    pub nram_sets_used: u32,
    /// Logic elements required (`#LEs` column, the paper's area proxy).
    pub num_les: u32,
    /// Analytical circuit delay in ns (`Delay` column).
    pub delay_ns: f64,
    /// Estimated silicon area in µm² (SMB-granular, NRAM overhead
    /// included — see `nanomap_arch::AreaModel`).
    pub area_um2: f64,
    /// Power estimate (logic, run-time reconfiguration, leakage).
    pub power: PowerEstimate,
    /// Physical-design results, when the flow ran place-and-route.
    pub physical: Option<PhysicalReport>,
}

/// Serializable mirror of [`PlaneSharing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharingMode {
    /// Planes time-share LEs.
    Shared,
    /// Each plane owns its LEs.
    PerPlane,
}

impl From<PlaneSharing> for SharingMode {
    fn from(s: PlaneSharing) -> Self {
        match s {
            PlaneSharing::Shared => Self::Shared,
            PlaneSharing::PerPlane => Self::PerPlane,
        }
    }
}

/// Results of clustering, placement and routing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhysicalReport {
    /// SMBs used after temporal clustering.
    pub num_smbs: u32,
    /// Grid dimensions (width, height).
    pub grid: (u16, u16),
    /// Final placement wirelength cost.
    pub placement_cost: f64,
    /// RISA peak channel utilization.
    pub peak_utilization: f64,
    /// Post-route circuit delay in ns.
    pub routed_delay_ns: f64,
    /// Interconnect usage counters.
    pub usage: UsageReport,
    /// Total configuration bits emitted.
    pub bitmap_bits: u64,
    /// The packed bitstream (see `nanomap_arch::pack_bitstream`), when the
    /// flow was asked to emit it.
    pub bitstream: Option<Vec<u8>>,
}

/// Serializable interconnect usage.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UsageReport {
    /// Direct-link nodes used.
    pub direct: u64,
    /// Length-1 nodes used.
    pub length1: u64,
    /// Length-4 nodes used.
    pub length4: u64,
    /// Global-line nodes used.
    pub global: u64,
}

impl From<InterconnectUsage> for UsageReport {
    fn from(u: InterconnectUsage) -> Self {
        Self {
            direct: u.direct,
            length1: u.length1,
            length4: u.length4,
            global: u.global,
        }
    }
}

impl UsageReport {
    /// Total wire nodes used.
    pub fn total(&self) -> u64 {
        self.direct + self.length1 + self.length4 + self.global
    }
}

impl MappingReport {
    /// Area-delay product with the LE count as the area proxy.
    pub fn area_delay_product(&self) -> f64 {
        f64::from(self.num_les) * self.delay_ns
    }

    /// A one-line summary in the style of a Table 1 row.
    pub fn summary(&self) -> String {
        format!(
            "{}: planes={} depth={} luts={} ffs={} level={} les={} delay={:.2}ns",
            self.circuit,
            self.num_planes,
            self.depth_max,
            self.num_luts,
            self.num_ffs,
            self.folding_level
                .map_or("none".to_string(), |p| p.to_string()),
            self.num_les,
            self.delay_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MappingReport {
        MappingReport {
            circuit: "ex1".into(),
            num_planes: 1,
            depth_max: 24,
            num_luts: 644,
            num_ffs: 50,
            folding_level: Some(1),
            stages: 24,
            sharing: SharingMode::Shared,
            nram_sets_used: 24,
            num_les: 34,
            delay_ns: 17.02,
            area_um2: 50_000.0,
            power: PowerEstimate {
                logic_mw: 0.2,
                reconfiguration_mw: 1.0,
                leakage_mw: 0.03,
            },
            physical: None,
        }
    }

    #[test]
    fn at_product() {
        let r = report();
        assert!((r.area_delay_product() - 34.0 * 17.02).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = report().summary();
        assert!(s.contains("ex1"));
        assert!(s.contains("les=34"));
        assert!(s.contains("level=1"));
    }

    #[test]
    fn usage_total() {
        let u = UsageReport {
            direct: 1,
            length1: 2,
            length4: 3,
            global: 4,
        };
        assert_eq!(u.total(), 10);
    }
}
