//! Shared machinery for JSON numeric-diff gates.
//!
//! The QoR gate ([`crate::qor`]) and the perf gate ([`crate::perf`])
//! both compare per-circuit maps of numbers against a committed
//! baseline and render the same fixed-width table. The comparison
//! verdict types, the numeric-map JSON reader and the table renderer
//! live here so the two gates (and the runs ledger) cannot drift apart.

use std::collections::BTreeMap;

use nanomap_observe::JsonValue;

/// Outcome of comparing one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within tolerance (or informational and present on both sides).
    Ok,
    /// Outside tolerance — fails the gate.
    Regression,
    /// Present in the baseline, absent in the new run — fails the gate.
    MissingInNew,
    /// New metric with no baseline — informational.
    MissingInBaseline,
    /// Report-only metric (no tolerance defined).
    Info,
}

impl DiffStatus {
    /// Whether this entry fails the gate.
    pub fn fails(self) -> bool {
        matches!(self, Self::Regression | Self::MissingInNew)
    }

    /// Status word for the diff table.
    pub fn label(self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Regression => "REGRESSION",
            Self::MissingInNew => "MISSING",
            Self::MissingInBaseline => "new metric",
            Self::Info => "info",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Circuit the metric belongs to.
    pub circuit: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value, when present.
    pub baseline: Option<f64>,
    /// New value, when present.
    pub new: Option<f64>,
    /// Relative tolerance applied (`None` = report-only).
    pub tolerance: Option<f64>,
    /// Verdict.
    pub status: DiffStatus,
}

impl DiffEntry {
    /// Relative change `new/baseline - 1` when both sides are present and
    /// the baseline is non-zero.
    pub fn relative_change(&self) -> Option<f64> {
        match (self.baseline, self.new) {
            (Some(b), Some(n)) if b.abs() > 1e-12 => Some(n / b - 1.0),
            _ => None,
        }
    }

    /// Human-readable delta for a failure line: the absolute change and,
    /// when the baseline is non-zero, the relative change too —
    /// `"Δ +0.0300 (+0.18%)"`. Missing sides are named explicitly.
    pub fn failure_detail(&self) -> String {
        match (self.baseline, self.new) {
            (Some(b), Some(n)) => {
                let abs = n - b;
                match self.relative_change() {
                    Some(rel) => format!("Δ {abs:+.6} ({:+.4}%)", rel * 100.0),
                    None => format!("Δ {abs:+.6}"),
                }
            }
            (Some(b), None) => format!("baseline {b} has no new value"),
            (None, Some(n)) => format!("new value {n} has no baseline"),
            (None, None) => "absent on both sides".to_string(),
        }
    }
}

/// Whether any entry fails the gate.
pub fn has_regression(entries: &[DiffEntry]) -> bool {
    entries.iter().any(|e| e.status.fails())
}

/// Reads a JSON object of numbers into a sorted map. Duplicate keys keep
/// the first occurrence (matching `JsonValue::get`).
pub(crate) fn number_map(
    value: Option<&JsonValue>,
    what: &str,
) -> Result<BTreeMap<String, f64>, String> {
    let JsonValue::Object(entries) = value.ok_or_else(|| format!("report missing `{what}`"))?
    else {
        return Err(format!("`{what}` is not an object"));
    };
    let mut map = BTreeMap::new();
    for (key, v) in entries {
        let number = match v {
            JsonValue::Int(i) => *i as f64,
            JsonValue::Float(f) => *f,
            other => return Err(format!("`{what}.{key}` is not a number: {other:?}")),
        };
        map.entry(key.clone()).or_insert(number);
    }
    Ok(map)
}

/// Renders the diff table shared by `nanomap qor-diff` and
/// `nanomap perf-diff`: a header line, one row per entry passing the
/// gate-specific `show` filter, failures annotated with
/// [`DiffEntry::failure_detail`] so the CI log alone says how far out
/// of tolerance the run landed. Returns the lines and the number of
/// failing entries.
pub fn render_diff_table<F: Fn(&DiffEntry) -> bool>(
    entries: &[DiffEntry],
    show: F,
) -> (Vec<String>, usize) {
    let mut lines = vec![format!(
        "{:<14} {:<28} {:>14} {:>14} {:>9}  status",
        "circuit", "metric", "baseline", "new", "change"
    )];
    let mut failures = 0usize;
    for e in entries {
        if !show(e) {
            continue;
        }
        if e.status.fails() {
            failures += 1;
        }
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.3}"));
        let change = e
            .relative_change()
            .map_or("-".to_string(), |c| format!("{:+.2}%", c * 100.0));
        let status = if e.status.fails() {
            format!("{} [{}]", e.status.label(), e.failure_detail())
        } else {
            e.status.label().to_string()
        };
        lines.push(format!(
            "{:<14} {:<28} {:>14} {:>14} {:>9}  {}",
            e.circuit,
            e.metric,
            fmt(e.baseline),
            fmt(e.new),
            change,
            status
        ));
    }
    (lines, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(status: DiffStatus, baseline: Option<f64>, new: Option<f64>) -> DiffEntry {
        DiffEntry {
            circuit: "c".into(),
            metric: "m".into(),
            baseline,
            new,
            tolerance: Some(0.01),
            status,
        }
    }

    #[test]
    fn failure_detail_spells_out_both_deltas() {
        let e = entry(DiffStatus::Regression, Some(100.0), Some(103.0));
        let detail = e.failure_detail();
        assert!(detail.contains("+3.0"), "{detail}");
        assert!(detail.contains("+3.0000%"), "{detail}");
        assert_eq!(
            entry(DiffStatus::MissingInNew, Some(2.0), None).failure_detail(),
            "baseline 2 has no new value"
        );
    }

    #[test]
    fn table_counts_failures_and_annotates_them() {
        let entries = vec![
            entry(DiffStatus::Ok, Some(1.0), Some(1.0)),
            entry(DiffStatus::Regression, Some(100.0), Some(120.0)),
        ];
        let (lines, failures) = render_diff_table(&entries, |_| true);
        assert_eq!(failures, 1);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("circuit"));
        assert!(lines[2].contains("REGRESSION [Δ +20"), "{}", lines[2]);
    }

    #[test]
    fn table_filter_hides_rows() {
        let entries = vec![entry(DiffStatus::Info, Some(1.0), Some(2.0))];
        let (lines, failures) = render_diff_table(&entries, |e| e.status.fails());
        assert_eq!((lines.len(), failures), (1, 0));
    }
}
