//! Interconnect usage statistics.
//!
//! Section 5 of the paper observes that level-1 folding cuts global
//! interconnect usage by more than 50 % versus no-folding; these counters
//! regenerate that experiment.

use std::collections::HashMap;

use nanomap_arch::{RrGraph, WireType};
use nanomap_pack::Slice;

use crate::pathfinder::RoutedNet;

/// Wire-node usage per interconnect tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterconnectUsage {
    /// Direct-link nodes used (summed over slices).
    pub direct: u64,
    /// Length-1 nodes used.
    pub length1: u64,
    /// Length-4 nodes used.
    pub length4: u64,
    /// Global-line nodes used.
    pub global: u64,
}

impl InterconnectUsage {
    /// Total wire nodes used.
    pub fn total(&self) -> u64 {
        self.direct + self.length1 + self.length4 + self.global
    }

    /// Fraction of wire usage on the global tier.
    pub fn global_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.global as f64 / self.total() as f64
        }
    }

    /// Per-slice average usage (total divided by slice count) — the
    /// hardware-level view: how much interconnect one configuration needs.
    pub fn per_slice_total(&self, slices: u32) -> f64 {
        self.total() as f64 / f64::from(slices.max(1))
    }
}

/// Tallies wire usage over all routed slices.
pub fn tally_usage(graph: &RrGraph, routes: &HashMap<Slice, Vec<RoutedNet>>) -> InterconnectUsage {
    let mut usage = InterconnectUsage::default();
    for nets in routes.values() {
        for net in nets {
            for &node in &net.nodes {
                match graph.node(node).wire {
                    Some(WireType::Direct) => usage.direct += 1,
                    Some(WireType::Length1) => usage.length1 += 1,
                    Some(WireType::Length4) => usage.length4 += 1,
                    Some(WireType::Global) => usage.global += 1,
                    None => {}
                }
            }
        }
    }
    usage
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_totals() {
        let u = InterconnectUsage {
            direct: 6,
            length1: 2,
            length4: 1,
            global: 1,
        };
        assert_eq!(u.total(), 10);
        assert!((u.global_fraction() - 0.1).abs() < 1e-12);
        assert!((u.per_slice_total(5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_usage_is_zero() {
        let u = InterconnectUsage::default();
        assert_eq!(u.total(), 0);
        assert_eq!(u.global_fraction(), 0.0);
    }
}
