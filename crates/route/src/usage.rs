//! Interconnect usage statistics.
//!
//! Section 5 of the paper observes that level-1 folding cuts global
//! interconnect usage by more than 50 % versus no-folding; these counters
//! regenerate that experiment.

use std::collections::{BTreeMap, HashMap};

use nanomap_arch::{RrGraph, WireType};
use nanomap_pack::Slice;

use crate::pathfinder::RoutedNet;

/// Wire-node usage per interconnect tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterconnectUsage {
    /// Direct-link nodes used (summed over slices).
    pub direct: u64,
    /// Length-1 nodes used.
    pub length1: u64,
    /// Length-4 nodes used.
    pub length4: u64,
    /// Global-line nodes used.
    pub global: u64,
}

impl InterconnectUsage {
    /// Total wire nodes used.
    pub fn total(&self) -> u64 {
        self.direct + self.length1 + self.length4 + self.global
    }

    /// Fraction of wire usage on the global tier.
    pub fn global_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.global as f64 / self.total() as f64
        }
    }

    /// Per-slice average usage (total divided by slice count) — the
    /// hardware-level view: how much interconnect one configuration needs.
    pub fn per_slice_total(&self, slices: u32) -> f64 {
        self.total() as f64 / f64::from(slices.max(1))
    }
}

/// Tallies wire usage over all routed slices.
pub fn tally_usage(graph: &RrGraph, routes: &HashMap<Slice, Vec<RoutedNet>>) -> InterconnectUsage {
    let mut usage = InterconnectUsage::default();
    for nets in routes.values() {
        for net in nets {
            for &node in &net.nodes {
                match graph.node(node).wire {
                    Some(WireType::Direct) => usage.direct += 1,
                    Some(WireType::Length1) => usage.length1 += 1,
                    Some(WireType::Length4) => usage.length4 += 1,
                    Some(WireType::Global) => usage.global += 1,
                    None => {}
                }
            }
        }
    }
    usage
}

/// Per-cell wire usage for one interconnect tier in one slice, row-major
/// over the placement grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierGrid {
    /// Direct-link nodes anchored at each cell.
    pub direct: Vec<u64>,
    /// Length-1 nodes anchored at each cell.
    pub length1: Vec<u64>,
    /// Length-4 nodes anchored at each cell.
    pub length4: Vec<u64>,
    /// Global-line nodes anchored at each cell.
    pub global: Vec<u64>,
}

impl TierGrid {
    fn zeroed(cells: usize) -> Self {
        Self {
            direct: vec![0; cells],
            length1: vec![0; cells],
            length4: vec![0; cells],
            global: vec![0; cells],
        }
    }

    /// All tiers summed for one cell.
    pub fn cell_total(&self, idx: usize) -> u64 {
        self.direct[idx] + self.length1[idx] + self.length4[idx] + self.global[idx]
    }

    /// Per-tier totals over every cell of this slice.
    pub fn usage(&self) -> InterconnectUsage {
        InterconnectUsage {
            direct: self.direct.iter().sum(),
            length1: self.length1.iter().sum(),
            length4: self.length4.iter().sum(),
            global: self.global.iter().sum(),
        }
    }
}

/// Per-cell, per-tier, per-slice congestion: how many wire nodes of each
/// tier each grid cell's channels carry in each folding cycle.
///
/// Every used wire node is attributed to exactly one cell (its
/// [`nanomap_arch::RrNodeKind::anchor`]), so [`CongestionGrid::totals`]
/// reconciles *exactly* with [`tally_usage`]'s counters — the heatmap and
/// the headline usage numbers cannot drift apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestionGrid {
    /// Grid width in SMBs.
    pub width: u16,
    /// Grid height in SMBs.
    pub height: u16,
    /// One tier grid per routed folding cycle, in slice order.
    pub per_slice: BTreeMap<Slice, TierGrid>,
}

impl CongestionGrid {
    /// Per-tier totals summed over all slices; equal to what
    /// [`tally_usage`] reports for the same routing.
    pub fn totals(&self) -> InterconnectUsage {
        let mut total = InterconnectUsage::default();
        for tier in self.per_slice.values() {
            let u = tier.usage();
            total.direct += u.direct;
            total.length1 += u.length1;
            total.length4 += u.length4;
            total.global += u.global;
        }
        total
    }

    /// Per-cell totals summed over all slices and tiers (the combined
    /// heatmap), row-major.
    pub fn combined_cells(&self) -> Vec<u64> {
        let cells = usize::from(self.width) * usize::from(self.height);
        let mut out = vec![0u64; cells];
        for tier in self.per_slice.values() {
            for (idx, slot) in out.iter_mut().enumerate() {
                *slot += tier.cell_total(idx);
            }
        }
        out
    }
}

/// Tallies per-cell wire usage over all routed slices. Each wire node is
/// counted once, at its anchor cell.
pub fn tally_congestion(
    graph: &RrGraph,
    routes: &HashMap<Slice, Vec<RoutedNet>>,
) -> CongestionGrid {
    let grid = graph.grid();
    let cells = grid.num_slots() as usize;
    let mut per_slice = BTreeMap::new();
    for (&slice, nets) in routes {
        let tier: &mut TierGrid = per_slice
            .entry(slice)
            .or_insert_with(|| TierGrid::zeroed(cells));
        for net in nets {
            for &node in &net.nodes {
                let n = graph.node(node);
                let Some(wire) = n.wire else { continue };
                let idx = grid.index(n.kind.anchor());
                match wire {
                    WireType::Direct => tier.direct[idx] += 1,
                    WireType::Length1 => tier.length1[idx] += 1,
                    WireType::Length4 => tier.length4[idx] += 1,
                    WireType::Global => tier.global[idx] += 1,
                }
            }
        }
    }
    CongestionGrid {
        width: grid.width,
        height: grid.height,
        per_slice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_arch::{ChannelConfig, Grid, SmbPos};
    use nanomap_pack::SliceNet;

    #[test]
    fn congestion_grid_reconciles_with_usage() {
        let grid = Grid::new(4, 2);
        let graph = RrGraph::build(grid, &ChannelConfig::nature());
        let pos = vec![SmbPos::new(0, 0), SmbPos::new(3, 1), SmbPos::new(1, 0)];
        let nets = vec![
            SliceNet {
                driver: 0,
                sinks: vec![1, 2],
                critical: true,
            },
            SliceNet {
                driver: 2,
                sinks: vec![1],
                critical: false,
            },
        ];
        let routed = crate::pathfinder::route_slice(
            &graph,
            &nets,
            &pos,
            crate::pathfinder::RouteOptions::default(),
        )
        .unwrap();
        let mut routes = HashMap::new();
        routes.insert(Slice { plane: 0, stage: 0 }, routed);
        let usage = tally_usage(&graph, &routes);
        let congestion = tally_congestion(&graph, &routes);
        assert!(usage.total() > 0, "multi-SMB nets must use wires");
        assert_eq!(congestion.totals(), usage);
        let combined: u64 = congestion.combined_cells().iter().sum();
        assert_eq!(combined, usage.total());
    }

    #[test]
    fn fractions_and_totals() {
        let u = InterconnectUsage {
            direct: 6,
            length1: 2,
            length4: 1,
            global: 1,
        };
        assert_eq!(u.total(), 10);
        assert!((u.global_fraction() - 0.1).abs() < 1e-12);
        assert!((u.per_slice_total(5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_usage_is_zero() {
        let u = InterconnectUsage::default();
        assert_eq!(u.total(), 0);
        assert_eq!(u.global_fraction(), 0.0);
    }
}
