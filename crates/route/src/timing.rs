//! Post-route timing analysis.
//!
//! Replaces the placement-time distance estimates with the actual routed
//! wire delays: each sink's net delay is the sum of the wire-tier delays
//! along its routed path. The slice critical path then follows the same
//! longest-path recurrence as the pre-route estimator.

use std::collections::HashMap;

use nanomap_arch::{ArchParams, RrGraph, TimingModel};
use nanomap_netlist::{LutId, SignalRef};
use nanomap_pack::{Packing, Slice, TemporalDesign};

use crate::pathfinder::RoutedNet;

/// Routed delay of every (slice, driver SMB, sink SMB) connection.
pub type NetDelays = HashMap<(Slice, u32, u32), f64>;

/// Computes routed net delays from the per-slice routing.
pub fn net_delays(
    graph: &RrGraph,
    timing: &TimingModel,
    routes: &HashMap<Slice, Vec<RoutedNet>>,
) -> NetDelays {
    let mut out = NetDelays::new();
    for (&slice, nets) in routes {
        for net in nets {
            for (sink_idx, &sink) in net.sinks.iter().enumerate() {
                let delay: f64 = net.sink_paths[sink_idx]
                    .iter()
                    .filter_map(|&n| graph.node(n).wire)
                    .map(|w| timing.wire_delay(w))
                    .sum();
                let key = (slice, net.driver, sink);
                let slot = out.entry(key).or_insert(0.0);
                *slot = slot.max(delay);
            }
        }
    }
    out
}

/// Post-route timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedTiming {
    /// Critical combinational path per slice.
    pub slice_paths: HashMap<Slice, f64>,
    /// Worst slice path.
    pub max_slice_path: f64,
    /// Folding-cycle period (worst slice + reconfiguration + clocking).
    pub cycle_period: f64,
    /// Circuit delay over all slices.
    pub circuit_delay: f64,
    /// The worst path, LUT by LUT (first element starts the path), with
    /// per-LUT arrival times. Empty for LUT-less designs.
    pub critical_path: Vec<CriticalPathNode>,
}

/// One hop of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathNode {
    /// The LUT on the path.
    pub lut: LutId,
    /// Diagnostic name, when the LUT has one.
    pub name: Option<String>,
    /// The temporal slice the LUT executes in.
    pub slice: Slice,
    /// Arrival time at the LUT's output (ns into its folding cycle).
    pub arrival_ns: f64,
}

/// Runs the longest-path analysis with routed delays. Same-SMB hops use
/// the intra-MB delay when producer and consumer LEs share a macroblock.
pub fn analyze(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    delays: &NetDelays,
    timing: &TimingModel,
    arch: &ArchParams,
) -> RoutedTiming {
    let net = design.net;
    let order = net.topo_order().expect("validated network");
    let mut arrival: HashMap<LutId, f64> = HashMap::new();
    let mut slice_paths: HashMap<Slice, f64> = HashMap::new();
    let hop = |slice: Slice, from: u32, to: u32| -> f64 {
        if from == to {
            timing.local_interconnect
        } else {
            delays
                .get(&(slice, from, to))
                .copied()
                .unwrap_or(timing.local_interconnect)
        }
    };
    for id in order {
        let lut = net.lut(id);
        let slice = design.slice_of(id);
        let my_smb = packing.lut_smb[&id];
        let mut input_arrival = 0.0f64;
        for input in &lut.inputs {
            let (src_smb, upstream) = match *input {
                SignalRef::Lut(u) => {
                    if design.slice_of(u) == slice {
                        // MB-aware local refinement for same-SMB chains.
                        let src_smb = packing.lut_smb[&u];
                        if src_smb == my_smb {
                            let mb = |l| packing.lut_le[l] / arch.les_per_mb;
                            let local = if mb(&u) == mb(&id) {
                                timing.local_intra_mb
                            } else {
                                timing.local_interconnect
                            };
                            input_arrival = input_arrival.max(arrival[&u] + local);
                            continue;
                        }
                        (src_smb, arrival[&u])
                    } else {
                        let store = packing
                            .stored_smb
                            .get(&u)
                            .or_else(|| packing.lut_smb.get(&u))
                            .copied()
                            .expect("packed");
                        (store, 0.0)
                    }
                }
                SignalRef::Ff(f) => (packing.ff_smb[&f], 0.0),
                SignalRef::Input(_) | SignalRef::Const(_) => continue,
            };
            input_arrival = input_arrival.max(upstream + hop(slice, src_smb, my_smb));
        }
        let t = input_arrival + timing.lut_delay;
        arrival.insert(id, t);
        let slot = slice_paths.entry(slice).or_insert(0.0);
        *slot = slot.max(t);
    }
    let max_slice_path = slice_paths.values().copied().fold(0.0, f64::max);
    let cycle_period = max_slice_path + timing.reconfiguration + timing.clocking;

    // Trace the worst path backwards from the LUT with the worst arrival.
    let mut critical_path = Vec::new();
    let mut cursor = arrival
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite arrivals"))
        .map(|(&l, _)| l);
    while let Some(id) = cursor {
        let slice = design.slice_of(id);
        critical_path.push(CriticalPathNode {
            lut: id,
            name: net.lut(id).name.clone(),
            slice,
            arrival_ns: arrival[&id],
        });
        // The predecessor on the path: the same-slice fanin whose
        // (arrival + hop) is maximal and consistent with this arrival.
        let my_smb = packing.lut_smb[&id];
        cursor = net
            .lut(id)
            .inputs
            .iter()
            .filter_map(|input| match *input {
                SignalRef::Lut(u) if design.slice_of(u) == slice => {
                    let contribution = arrival[&u] + hop(slice, packing.lut_smb[&u], my_smb);
                    Some((u, contribution))
                }
                _ => None,
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(u, _)| u);
    }
    critical_path.reverse();

    RoutedTiming {
        slice_paths,
        max_slice_path,
        cycle_period,
        circuit_delay: cycle_period * f64::from(design.num_slices()),
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_arch::{ChannelConfig, Grid, SmbPos};
    use nanomap_pack::SliceNet;

    #[test]
    fn routed_delay_sums_wire_tiers() {
        let grid = Grid::new(3, 1);
        let graph = RrGraph::build(grid, &ChannelConfig::nature());
        let pos = vec![SmbPos::new(0, 0), SmbPos::new(2, 0)];
        let nets = vec![SliceNet {
            driver: 0,
            sinks: vec![1],
            critical: false,
        }];
        let routed = crate::pathfinder::route_slice(
            &graph,
            &nets,
            &pos,
            crate::pathfinder::RouteOptions::default(),
        )
        .unwrap();
        let slice = Slice { plane: 0, stage: 0 };
        let mut routes = HashMap::new();
        routes.insert(slice, routed);
        let timing = TimingModel::nature_100nm();
        let delays = net_delays(&graph, &timing, &routes);
        let d = delays[&(slice, 0, 1)];
        // Distance-2 connection: at least one wire hop, bounded by global.
        assert!(d >= timing.wire_direct);
        assert!(d <= timing.wire_global + timing.wire_direct * 2.0 + 1e-9);
    }
}
