//! Post-route timing analysis.
//!
//! Replaces the placement-time distance estimates with the actual routed
//! wire delays: each sink's net delay is the sum of the wire-tier delays
//! along its routed path. The slice critical path then follows the same
//! longest-path recurrence as the pre-route estimator.
//!
//! The forward arrival pass lives in [`compute_arrivals`] and is shared
//! with the attribution layer (`explain`), so the K-worst-path tracer and
//! the headline `circuit_delay` can never disagree about an arrival time.

use std::collections::HashMap;

use nanomap_arch::{ArchParams, RrGraph, TimingModel};
use nanomap_netlist::{LutId, SignalRef};
use nanomap_pack::{Packing, Slice, TemporalDesign};

use crate::pathfinder::RoutedNet;

/// Routed delay of every (slice, driver SMB, sink SMB) connection.
pub type NetDelays = HashMap<(Slice, u32, u32), f64>;

/// Computes routed net delays from the per-slice routing.
pub fn net_delays(
    graph: &RrGraph,
    timing: &TimingModel,
    routes: &HashMap<Slice, Vec<RoutedNet>>,
) -> NetDelays {
    let mut out = NetDelays::new();
    for (&slice, nets) in routes {
        for net in nets {
            for (sink_idx, &sink) in net.sinks.iter().enumerate() {
                let delay: f64 = net.sink_paths[sink_idx]
                    .iter()
                    .filter_map(|&n| graph.node(n).wire)
                    .map(|w| timing.wire_delay(w))
                    .sum();
                let key = (slice, net.driver, sink);
                let slot = out.entry(key).or_insert(0.0);
                *slot = slot.max(delay);
            }
        }
    }
    out
}

/// Post-route timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedTiming {
    /// Critical combinational path per slice.
    pub slice_paths: HashMap<Slice, f64>,
    /// Worst slice path.
    pub max_slice_path: f64,
    /// Folding-cycle period (worst slice + reconfiguration + clocking).
    pub cycle_period: f64,
    /// Circuit delay over all slices.
    pub circuit_delay: f64,
    /// The worst path, LUT by LUT (first element starts the path), with
    /// per-LUT arrival times. Empty for LUT-less designs.
    pub critical_path: Vec<CriticalPathNode>,
}

/// One hop of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathNode {
    /// The LUT on the path.
    pub lut: LutId,
    /// Diagnostic name, when the LUT has one.
    pub name: Option<String>,
    /// The temporal slice the LUT executes in.
    pub slice: Slice,
    /// Arrival time at the LUT's output (ns into its folding cycle).
    pub arrival_ns: f64,
}

/// Where a LUT input edge comes from, for attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSource {
    /// Same-slice combinational fanin (carries an upstream arrival).
    Lut(LutId),
    /// Read of a value stored across folding cycles (producer LUT).
    Stored(LutId),
    /// Read of an architectural flip-flop.
    Ff(nanomap_netlist::FfId),
    /// Primary input or constant: no interconnect, no upstream arrival.
    Primary,
}

/// One timed input edge of a LUT: its source, the SMB the signal leaves,
/// the upstream arrival it carries and the interconnect hop delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputEdge {
    /// Signal source.
    pub source: EdgeSource,
    /// SMB the signal departs from (`None` for primaries/constants).
    pub src_smb: Option<u32>,
    /// Arrival time already accumulated at the source output.
    pub upstream_ns: f64,
    /// Interconnect delay of the hop into the consuming LUT.
    pub hop_ns: f64,
}

impl InputEdge {
    /// Contribution of this edge to the consumer's input arrival.
    pub fn contribution(&self) -> f64 {
        self.upstream_ns + self.hop_ns
    }
}

/// The routed hop delay between two SMBs in a slice. Same-SMB hops and
/// missing routed connections fall back to the local-crossbar delay.
fn smb_hop(timing: &TimingModel, delays: &NetDelays, slice: Slice, from: u32, to: u32) -> f64 {
    if from == to {
        timing.local_interconnect
    } else {
        delays
            .get(&(slice, from, to))
            .copied()
            .unwrap_or(timing.local_interconnect)
    }
}

/// The timed input edges of one LUT, given the arrivals computed so far.
/// This is the single source of truth for the longest-path recurrence:
/// both the forward pass and the path tracer consume it.
pub fn input_edges(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    delays: &NetDelays,
    timing: &TimingModel,
    arch: &ArchParams,
    arrival: &HashMap<LutId, f64>,
    id: LutId,
) -> Vec<InputEdge> {
    let net = design.net;
    let lut = net.lut(id);
    let slice = design.slice_of(id);
    let my_smb = packing.lut_smb[&id];
    let mut out = Vec::with_capacity(lut.inputs.len());
    for input in &lut.inputs {
        let edge = match *input {
            SignalRef::Lut(u) => {
                if design.slice_of(u) == slice {
                    let src_smb = packing.lut_smb[&u];
                    let hop_ns = if src_smb == my_smb {
                        // MB-aware local refinement for same-SMB chains.
                        let mb = |l| packing.lut_le[l] / arch.les_per_mb;
                        if mb(&u) == mb(&id) {
                            timing.local_intra_mb
                        } else {
                            timing.local_interconnect
                        }
                    } else {
                        smb_hop(timing, delays, slice, src_smb, my_smb)
                    };
                    InputEdge {
                        source: EdgeSource::Lut(u),
                        src_smb: Some(src_smb),
                        upstream_ns: arrival[&u],
                        hop_ns,
                    }
                } else {
                    let store = packing
                        .stored_smb
                        .get(&u)
                        .or_else(|| packing.lut_smb.get(&u))
                        .copied()
                        .expect("packed");
                    InputEdge {
                        source: EdgeSource::Stored(u),
                        src_smb: Some(store),
                        upstream_ns: 0.0,
                        hop_ns: smb_hop(timing, delays, slice, store, my_smb),
                    }
                }
            }
            SignalRef::Ff(f) => {
                let src = packing.ff_smb[&f];
                InputEdge {
                    source: EdgeSource::Ff(f),
                    src_smb: Some(src),
                    upstream_ns: 0.0,
                    hop_ns: smb_hop(timing, delays, slice, src, my_smb),
                }
            }
            SignalRef::Input(_) | SignalRef::Const(_) => InputEdge {
                source: EdgeSource::Primary,
                src_smb: None,
                upstream_ns: 0.0,
                hop_ns: 0.0,
            },
        };
        out.push(edge);
    }
    out
}

/// Runs the forward longest-path pass with routed delays and returns the
/// per-LUT arrival times plus the per-slice critical path lengths.
pub fn compute_arrivals(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    delays: &NetDelays,
    timing: &TimingModel,
    arch: &ArchParams,
) -> (HashMap<LutId, f64>, HashMap<Slice, f64>) {
    let net = design.net;
    let order = net.topo_order().expect("validated network");
    let mut arrival: HashMap<LutId, f64> = HashMap::new();
    let mut slice_paths: HashMap<Slice, f64> = HashMap::new();
    for id in order {
        let input_arrival = input_edges(design, packing, delays, timing, arch, &arrival, id)
            .iter()
            .map(InputEdge::contribution)
            .fold(0.0f64, f64::max);
        let t = input_arrival + timing.lut_delay;
        arrival.insert(id, t);
        let slot = slice_paths.entry(design.slice_of(id)).or_insert(0.0);
        *slot = slot.max(t);
    }
    (arrival, slice_paths)
}

/// Runs the longest-path analysis with routed delays. Same-SMB hops use
/// the intra-MB delay when producer and consumer LEs share a macroblock.
pub fn analyze(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    delays: &NetDelays,
    timing: &TimingModel,
    arch: &ArchParams,
) -> RoutedTiming {
    let net = design.net;
    let (arrival, slice_paths) = compute_arrivals(design, packing, delays, timing, arch);
    let max_slice_path = slice_paths.values().copied().fold(0.0, f64::max);
    let cycle_period = max_slice_path + timing.reconfiguration + timing.clocking;

    // Trace the worst path backwards from the LUT with the worst arrival.
    let mut critical_path = Vec::new();
    let mut cursor = arrival
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite arrivals"))
        .map(|(&l, _)| l);
    while let Some(id) = cursor {
        let slice = design.slice_of(id);
        critical_path.push(CriticalPathNode {
            lut: id,
            name: net.lut(id).name.clone(),
            slice,
            arrival_ns: arrival[&id],
        });
        // The predecessor on the path: the same-slice fanin whose
        // (arrival + hop) is maximal and consistent with this arrival.
        cursor = input_edges(design, packing, delays, timing, arch, &arrival, id)
            .into_iter()
            .filter_map(|e| match e.source {
                EdgeSource::Lut(u) => Some((u, e.contribution())),
                _ => None,
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(u, _)| u);
    }
    critical_path.reverse();

    RoutedTiming {
        slice_paths,
        max_slice_path,
        cycle_period,
        circuit_delay: cycle_period * f64::from(design.num_slices()),
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_arch::{ChannelConfig, Grid, SmbPos};
    use nanomap_pack::SliceNet;

    #[test]
    fn routed_delay_sums_wire_tiers() {
        let grid = Grid::new(3, 1);
        let graph = RrGraph::build(grid, &ChannelConfig::nature());
        let pos = vec![SmbPos::new(0, 0), SmbPos::new(2, 0)];
        let nets = vec![SliceNet {
            driver: 0,
            sinks: vec![1],
            critical: false,
        }];
        let routed = crate::pathfinder::route_slice(
            &graph,
            &nets,
            &pos,
            crate::pathfinder::RouteOptions::default(),
        )
        .unwrap();
        let slice = Slice { plane: 0, stage: 0 };
        let mut routes = HashMap::new();
        routes.insert(slice, routed);
        let timing = TimingModel::nature_100nm();
        let delays = net_delays(&graph, &timing, &routes);
        let d = delays[&(slice, 0, 1)];
        // Distance-2 connection: at least one wire hop, bounded by global.
        assert!(d >= timing.wire_direct);
        assert!(d <= timing.wire_global + timing.wire_direct * 2.0 + 1e-9);
    }
}
