//! Routing errors.

use std::error::Error;
use std::fmt;

/// Errors produced during routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// No path exists between a net's source and one of its sinks.
    Unreachable {
        /// Driving SMB index.
        driver: u32,
        /// Unreachable sink SMB index.
        sink: u32,
    },
    /// Congestion could not be resolved within the iteration limit.
    Unroutable {
        /// Number of nodes still over capacity after the final iteration.
        overused: usize,
        /// Iterations attempted.
        iterations: u32,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unreachable { driver, sink } => {
                write!(f, "no route from SMB {driver} to SMB {sink}")
            }
            Self::Unroutable {
                overused,
                iterations,
            } => write!(
                f,
                "congestion unresolved after {iterations} iterations ({overused} nodes overused)"
            ),
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RouteError::Unroutable {
            overused: 5,
            iterations: 30,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains("30"));
    }
}
