//! Routing errors.
//!
//! A [`RouteError`] names not just the failure mode but *where* it
//! happened: the temporal slice being routed and a human-readable
//! description of the offending net, so a flow-level recovery policy (or
//! a human) can act on it.

use std::error::Error;
use std::fmt;

use nanomap_pack::{Slice, SliceNet};

/// What went wrong during routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteErrorKind {
    /// No path exists between a net's source and one of its sinks.
    Unreachable {
        /// Driving SMB index.
        driver: u32,
        /// Unreachable sink SMB index.
        sink: u32,
    },
    /// Congestion could not be resolved within the iteration limit.
    Unroutable {
        /// Number of nodes still over capacity after the final iteration.
        overused: usize,
        /// Iterations attempted.
        iterations: u32,
    },
}

/// A routing failure with its context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteError {
    /// The failure mode.
    pub kind: RouteErrorKind,
    /// The temporal slice being routed when the failure occurred.
    pub slice: Option<Slice>,
    /// Description of the offending net (`smb3->smb5,smb7`). For
    /// congestion failures this is the net crossing the most overused
    /// nodes — the best single culprit PathFinder can name.
    pub net: Option<String>,
}

impl RouteError {
    /// A disconnection failure, context to be attached by the caller.
    pub fn unreachable(driver: u32, sink: u32) -> Self {
        Self {
            kind: RouteErrorKind::Unreachable { driver, sink },
            slice: None,
            net: None,
        }
    }

    /// A congestion failure, context to be attached by the caller.
    pub fn unroutable(overused: usize, iterations: u32) -> Self {
        Self {
            kind: RouteErrorKind::Unroutable {
                overused,
                iterations,
            },
            slice: None,
            net: None,
        }
    }

    /// Attaches the offending net's description.
    pub fn with_net(mut self, net: String) -> Self {
        self.net = Some(net);
        self
    }

    /// Attaches the slice being routed.
    pub fn in_slice(mut self, slice: Slice) -> Self {
        self.slice = Some(slice);
        self
    }
}

/// Human-readable description of a slice net: `smb3->smb5,smb7` (long
/// sink lists are elided).
pub fn describe_net(net: &SliceNet) -> String {
    let mut out = format!("smb{}->", net.driver);
    for (i, sink) in net.sinks.iter().enumerate() {
        if i == 4 {
            out.push_str(&format!("+{} more", net.sinks.len() - i));
            break;
        }
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("smb{sink}"));
    }
    if net.sinks.is_empty() {
        out.push_str("(no sinks)");
    }
    out
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(slice) = &self.slice {
            write!(f, "slice plane {} stage {}: ", slice.plane, slice.stage)?;
        }
        if let Some(net) = &self.net {
            write!(f, "net {net}: ")?;
        }
        match &self.kind {
            RouteErrorKind::Unreachable { driver, sink } => {
                write!(f, "no route from SMB {driver} to SMB {sink}")
            }
            RouteErrorKind::Unroutable {
                overused,
                iterations,
            } => write!(
                f,
                "congestion unresolved after {iterations} iterations ({overused} nodes overused)"
            ),
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RouteError::unroutable(5, 30);
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn display_includes_slice_and_net_context() {
        let e = RouteError::unreachable(3, 9)
            .with_net("smb3->smb9".into())
            .in_slice(Slice { plane: 1, stage: 2 });
        let s = e.to_string();
        assert!(s.contains("plane 1"), "{s}");
        assert!(s.contains("stage 2"), "{s}");
        assert!(s.contains("smb3->smb9"), "{s}");
        assert!(s.contains("SMB 3"), "{s}");
    }

    #[test]
    fn net_descriptions_elide_long_sink_lists() {
        let net = SliceNet {
            driver: 0,
            sinks: (1..=9).collect(),
            critical: false,
        };
        let s = describe_net(&net);
        assert!(s.starts_with("smb0->smb1,"), "{s}");
        assert!(s.contains("+5 more"), "{s}");
        let empty = SliceNet {
            driver: 2,
            sinks: vec![],
            critical: false,
        };
        assert!(describe_net(&empty).contains("no sinks"));
    }
}
