//! PathFinder negotiated-congestion routing.
//!
//! Each folding cycle routes independently (the interconnect is
//! reconfigured every cycle), so the router runs once per temporal slice
//! over the shared routing-resource graph. Within a slice the classic
//! PathFinder loop applies: route every net by Dijkstra over congestion-
//! aware node costs, then raise present/history penalties on overused
//! nodes and rip-up-and-reroute until no node exceeds its capacity.
//!
//! The NATURE hierarchy (direct → length-1 → length-4 → global) is
//! honoured through the tiers' base costs: cheap local resources win
//! unless congestion pushes a net upward.

use std::collections::BinaryHeap;

use nanomap_arch::{RrGraph, RrNodeId, SmbPos};
use nanomap_observe::rng::XorShift64Star;
use nanomap_observe::{Anytime, CancelToken, Degradation};
use nanomap_pack::SliceNet;

use crate::error::{describe_net, RouteError};

/// PathFinder parameters.
#[derive(Debug, Clone, Copy)]
pub struct RouteOptions {
    /// Maximum rip-up-and-reroute iterations per slice.
    pub max_iterations: u32,
    /// Initial present-congestion factor.
    pub pres_fac: f64,
    /// Present-factor multiplier per iteration.
    pub pres_mult: f64,
    /// History-cost increment per overused iteration.
    pub hist_fac: f64,
    /// Route timing-critical nets first, giving them first pick of the
    /// fast tiers.
    pub timing_driven: bool,
    /// Seed for the net-order tiebreak shuffle (routing is deterministic
    /// given the seed).
    pub seed: u64,
}

impl Default for RouteOptions {
    fn default() -> Self {
        Self {
            max_iterations: 30,
            pres_fac: 0.5,
            pres_mult: 1.8,
            hist_fac: 0.4,
            timing_driven: true,
            seed: 0x5EED_0001,
        }
    }
}

/// One routed net: the tree of RR nodes carrying the signal.
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// Driving SMB.
    pub driver: u32,
    /// Sink SMBs.
    pub sinks: Vec<u32>,
    /// All RR nodes of the routing tree (including source and sinks).
    pub nodes: Vec<RrNodeId>,
    /// Per-sink paths as node sequences from source to that sink.
    pub sink_paths: Vec<Vec<RrNodeId>>,
}

/// Routes the nets of one slice.
///
/// `pos_of` maps SMB index to its placed grid position.
///
/// # Errors
///
/// Returns [`RouteError::Unroutable`] when congestion cannot be resolved,
/// or [`RouteError::Unreachable`] for a disconnected fabric.
pub fn route_slice(
    graph: &RrGraph,
    nets: &[SliceNet],
    pos_of: &[SmbPos],
    options: RouteOptions,
) -> Result<Vec<RoutedNet>, RouteError> {
    route_slice_budgeted(graph, nets, pos_of, options, &CancelToken::unlimited())
        .map(Anytime::into_value)
}

/// Budget-aware [`route_slice`]: polls `token` after each full
/// rip-up-and-reroute iteration, so even a zero budget completes one
/// pass and every net has a routing tree. On expiry the current routes
/// are returned as [`Anytime::Degraded`] — they may overuse nodes; the
/// overused-node count is the QoR estimate. With an unlimited token this
/// is byte-identical to [`route_slice`].
///
/// # Errors
///
/// Same as [`route_slice`]; an expired budget is never reported as
/// [`RouteError::Unroutable`].
pub fn route_slice_budgeted(
    graph: &RrGraph,
    nets: &[SliceNet],
    pos_of: &[SmbPos],
    options: RouteOptions,
    token: &CancelToken,
) -> Result<Anytime<Vec<RoutedNet>>, RouteError> {
    let n = graph.num_nodes();
    let mut history = vec![0.0f64; n];
    let mut occupancy = vec![0u32; n];
    let mut routes: Vec<Option<RoutedNet>> = vec![None; nets.len()];
    let mut pres_fac = options.pres_fac;

    // Net order: a seeded shuffle breaks index ties, then critical nets
    // move to the front when timing-driven (stable sort keeps the shuffled
    // order within each criticality class).
    let mut rng = XorShift64Star::new(options.seed);
    let mut order: Vec<usize> = (0..nets.len()).collect();
    rng.shuffle(&mut order);
    if options.timing_driven {
        order.sort_by_key(|&i| !nets[i].critical);
    }

    let iter_ctr = nanomap_observe::counter("route.iterations");
    let ripup_ctr = nanomap_observe::counter("route.ripups");
    let overflow_hist = nanomap_observe::histogram("route.overused_nodes");
    let overuse_series = nanomap_observe::series("route.overuse");
    let pres_series = nanomap_observe::series("route.present_cost");

    for iteration in 0..options.max_iterations {
        let mut ripups = 0u64;
        for &i in &order {
            let net = &nets[i];
            // Rip up.
            if let Some(old) = routes[i].take() {
                ripups += 1;
                for node in &old.nodes {
                    occupancy[node.index()] = occupancy[node.index()].saturating_sub(1);
                }
            }
            let routed = route_net(graph, net, pos_of, &history, &mut occupancy, pres_fac)?;
            routes[i] = Some(routed);
        }
        iter_ctr.incr();
        ripup_ctr.add(ripups);
        // Congestion check.
        let mut overused = 0usize;
        for (idx, &occ) in occupancy.iter().enumerate() {
            let cap = graph.node(RrNodeId(idx as u32)).capacity;
            if occ > cap {
                overused += 1;
                history[idx] += options.hist_fac;
            }
        }
        overflow_hist.record(overused as u64);
        // Negotiation trajectory: one sample per rip-up iteration.
        overuse_series.record(u64::from(iteration), overused as f64);
        pres_series.record(u64::from(iteration), pres_fac);
        nanomap_observe::events::progress(
            "route",
            u64::from(iteration) + 1,
            Some(u64::from(options.max_iterations)),
            None,
            overused as f64,
        );
        if overused == 0 {
            return Ok(Anytime::Complete(routes.into_iter().flatten().collect()));
        }
        // Poll after a full pass: every net has a tree (possibly sharing
        // overused nodes), which is the best-so-far we can hand back.
        if token.expired() {
            return Ok(Anytime::Degraded(
                routes.into_iter().flatten().collect(),
                Degradation {
                    phase: "route".into(),
                    reason: format!(
                        "time budget expired with {overused} overused nodes after {} of {} iterations",
                        iteration + 1,
                        options.max_iterations
                    ),
                    completed_iterations: u64::from(iteration) + 1,
                    qor_estimate: overused as f64,
                },
            ));
        }
        if iteration + 1 == options.max_iterations {
            let mut err = RouteError::unroutable(overused, options.max_iterations);
            // Name the best single culprit: the net crossing the most
            // overused nodes.
            let overused_node = |id: &RrNodeId| occupancy[id.index()] > graph.node(*id).capacity;
            let culprit = routes
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    let r = r.as_ref()?;
                    let hits = r.nodes.iter().filter(|id| overused_node(id)).count();
                    (hits > 0).then_some((hits, i))
                })
                .max_by_key(|&(hits, _)| hits);
            if let Some((_, i)) = culprit {
                err = err.with_net(describe_net(&nets[i]));
            }
            return Err(err);
        }
        pres_fac *= options.pres_mult;
    }
    // max_iterations == 0: vacuous success only without nets.
    if nets.is_empty() {
        return Ok(Anytime::Complete(Vec::new()));
    }
    Err(RouteError::unroutable(0, 0))
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: RrNodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Routes one net as a Steiner-ish tree: Dijkstra from the growing tree to
/// the nearest unreached sink, repeated.
fn route_net(
    graph: &RrGraph,
    net: &SliceNet,
    pos_of: &[SmbPos],
    history: &[f64],
    occupancy: &mut [u32],
    pres_fac: f64,
) -> Result<RoutedNet, RouteError> {
    let node_cost = |id: RrNodeId, occupancy: &[u32]| -> f64 {
        let node = graph.node(id);
        let over = (occupancy[id.index()] + 1).saturating_sub(node.capacity);
        let pres = 1.0 + f64::from(over) * pres_fac;
        (node.base_cost + history[id.index()] + 0.05) * pres
    };

    let source = graph.source(pos_of[net.driver as usize]);
    let mut tree: Vec<RrNodeId> = vec![source];
    let mut sink_paths = Vec::with_capacity(net.sinks.len());

    for &sink_smb in &net.sinks {
        let target = graph.sink(pos_of[sink_smb as usize]);
        // Dijkstra from every tree node.
        let n = graph.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<RrNodeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        for &t in &tree {
            dist[t.index()] = 0.0;
            heap.push(HeapEntry { cost: 0.0, node: t });
        }
        let mut found = false;
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if cost > dist[node.index()] {
                continue;
            }
            if node == target {
                found = true;
                break;
            }
            for &next in graph.neighbors(node) {
                let c = cost + node_cost(next, occupancy);
                if c < dist[next.index()] {
                    dist[next.index()] = c;
                    prev[next.index()] = Some(node);
                    heap.push(HeapEntry {
                        cost: c,
                        node: next,
                    });
                }
            }
        }
        if !found {
            return Err(RouteError::unreachable(net.driver, sink_smb).with_net(describe_net(net)));
        }
        // Walk back to the tree, occupying new nodes.
        let mut path = vec![target];
        let mut cursor = target;
        while let Some(p) = prev[cursor.index()] {
            path.push(p);
            cursor = p;
        }
        path.reverse();
        for &node in &path {
            if !tree.contains(&node) {
                tree.push(node);
                occupancy[node.index()] += 1;
            }
        }
        sink_paths.push(path);
    }
    // The source itself is occupied once per net.
    occupancy[source.index()] += 1;
    Ok(RoutedNet {
        driver: net.driver,
        sinks: net.sinks.clone(),
        nodes: tree,
        sink_paths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_arch::{ChannelConfig, Grid, RrNodeKind, WireType};

    fn graph4() -> RrGraph {
        RrGraph::build(Grid::new(4, 4), &ChannelConfig::nature())
    }

    fn positions() -> Vec<SmbPos> {
        Grid::new(4, 4).iter().collect()
    }

    #[test]
    fn routes_adjacent_net_on_direct_link() {
        let g = graph4();
        let pos = positions();
        let nets = vec![SliceNet {
            driver: 0,
            sinks: vec![1],
            critical: false,
        }];
        let routed = route_slice(&g, &nets, &pos, RouteOptions::default()).unwrap();
        assert_eq!(routed.len(), 1);
        // The cheapest path uses a direct link.
        let uses_direct = routed[0]
            .nodes
            .iter()
            .any(|&n| matches!(g.node(n).kind, RrNodeKind::Direct { .. }));
        assert!(uses_direct);
        assert!(!routed[0]
            .nodes
            .iter()
            .any(|&n| g.node(n).wire == Some(WireType::Global)));
    }

    #[test]
    fn multi_sink_net_forms_tree() {
        let g = graph4();
        let pos = positions();
        let nets = vec![SliceNet {
            driver: 5,
            sinks: vec![0, 15, 3],
            critical: false,
        }];
        let routed = route_slice(&g, &nets, &pos, RouteOptions::default()).unwrap();
        assert_eq!(routed[0].sink_paths.len(), 3);
        for path in &routed[0].sink_paths {
            assert!(path.len() >= 2);
        }
    }

    #[test]
    fn congestion_forces_divergent_paths() {
        let g = graph4();
        let pos = positions();
        // Many parallel nets between the same pair exhaust direct tracks
        // (8) and must fan out to segments.
        let nets: Vec<SliceNet> = (0..16)
            .map(|_| SliceNet {
                driver: 0,
                sinks: vec![1],
                critical: false,
            })
            .collect();
        let routed = route_slice(&g, &nets, &pos, RouteOptions::default()).unwrap();
        // No wire node is used twice.
        let mut used = std::collections::HashMap::new();
        for r in &routed {
            for &n in &r.nodes {
                if g.node(n).wire.is_some() {
                    *used.entry(n).or_insert(0) += 1;
                }
            }
        }
        for (&node, &count) in &used {
            assert!(
                count <= g.node(node).capacity,
                "node {node:?} used {count} times"
            );
        }
    }

    #[test]
    fn impossible_congestion_reports_unroutable() {
        let g = RrGraph::build(
            Grid::new(2, 1),
            &ChannelConfig {
                direct: 1,
                length1: 1,
                length4: 0,
                global: 0,
            },
        );
        let pos = vec![SmbPos::new(0, 0), SmbPos::new(1, 0)];
        let nets: Vec<SliceNet> = (0..40)
            .map(|_| SliceNet {
                driver: 0,
                sinks: vec![1],
                critical: false,
            })
            .collect();
        let err = route_slice(&g, &nets, &pos, RouteOptions::default()).unwrap_err();
        assert!(matches!(
            err.kind,
            crate::error::RouteErrorKind::Unroutable { .. }
        ));
        // Congestion failures name a culprit net.
        assert_eq!(err.net.as_deref(), Some("smb0->smb1"));
    }

    #[test]
    fn zero_budget_still_routes_every_net_once() {
        let g = graph4();
        let pos = positions();
        let nets: Vec<SliceNet> = (0..16)
            .map(|_| SliceNet {
                driver: 0,
                sinks: vec![1],
                critical: false,
            })
            .collect();
        let token = CancelToken::with_budget_ms(Some(0));
        let result =
            route_slice_budgeted(&g, &nets, &pos, RouteOptions::default(), &token).unwrap();
        // Zero budget still completes one full pass: every net has a tree
        // (possibly congested) or the slice happened to finish clean.
        let routed = result.value();
        assert_eq!(routed.len(), nets.len());
        for r in routed {
            assert!(!r.nodes.is_empty());
            assert_eq!(r.sink_paths.len(), 1);
        }
    }

    #[test]
    fn budget_turns_unroutable_into_degraded() {
        // The impossible-congestion fixture from above: with a budget it
        // must degrade (overuse reported) instead of erroring.
        let g = RrGraph::build(
            Grid::new(2, 1),
            &ChannelConfig {
                direct: 1,
                length1: 1,
                length4: 0,
                global: 0,
            },
        );
        let pos = vec![SmbPos::new(0, 0), SmbPos::new(1, 0)];
        let nets: Vec<SliceNet> = (0..40)
            .map(|_| SliceNet {
                driver: 0,
                sinks: vec![1],
                critical: false,
            })
            .collect();
        let token = CancelToken::with_budget_ms(Some(0));
        let result =
            route_slice_budgeted(&g, &nets, &pos, RouteOptions::default(), &token).unwrap();
        let Anytime::Degraded(routed, degradation) = result else {
            panic!("hopeless congestion under a zero budget must degrade");
        };
        assert_eq!(routed.len(), nets.len());
        assert_eq!(degradation.phase, "route");
        assert_eq!(degradation.completed_iterations, 1);
        assert!(degradation.qor_estimate > 0.0, "overuse must be reported");
    }

    #[test]
    fn unlimited_token_identical_to_plain_route() {
        let g = graph4();
        let pos = positions();
        let nets: Vec<SliceNet> = (0..16)
            .map(|_| SliceNet {
                driver: 0,
                sinks: vec![1],
                critical: false,
            })
            .collect();
        let plain = route_slice(&g, &nets, &pos, RouteOptions::default()).unwrap();
        let budgeted = route_slice_budgeted(
            &g,
            &nets,
            &pos,
            RouteOptions::default(),
            &CancelToken::unlimited(),
        )
        .unwrap();
        let Anytime::Complete(routed) = budgeted else {
            panic!("unlimited token must complete");
        };
        assert_eq!(plain.len(), routed.len());
        for (a, b) in plain.iter().zip(&routed) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.sink_paths, b.sink_paths);
        }
    }

    #[test]
    fn empty_slice_routes_trivially() {
        let g = graph4();
        let routed = route_slice(&g, &[], &positions(), RouteOptions::default()).unwrap();
        assert!(routed.is_empty());
    }
}
