//! Configuration-bitmap generation (Section 4, step 15).
//!
//! After routing, the layout of every folding stage is known; this module
//! emits the per-cycle [`ConfigBitmap`] the NRAM counter walks at run
//! time: LUT truth tables and flip-flop control per LE, and the set of
//! switched-on routing resources per net.

use std::collections::HashMap;

use nanomap_arch::{ConfigBitmap, CycleConfig, LeConfig, RoutingConfig, SmbConfig, SmbPos};
use nanomap_netlist::SignalRef;
use nanomap_pack::{Packing, Slice, TemporalDesign};

use crate::pathfinder::RoutedNet;

/// Builds the configuration bitmap of a routed design.
///
/// Cycles are emitted in slice execution order (`plane`-major). LE input
/// selects encode the driving LE slot for intra-SMB sources and a
/// sentinel (`0x8000 | pin`) for signals entering through the switch
/// matrix.
pub fn generate_bitmap(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    pos_of: &[SmbPos],
    routes: &HashMap<Slice, Vec<RoutedNet>>,
    les_per_smb: u32,
) -> ConfigBitmap {
    let net = design.net;
    let mut cycles = Vec::new();
    for slice in design.slices() {
        // Group this slice's LUTs by SMB.
        let mut smb_luts: HashMap<u32, Vec<nanomap_netlist::LutId>> = HashMap::new();
        for lut in design.luts_in(slice) {
            smb_luts.entry(packing.lut_smb[&lut]).or_default().push(lut);
        }
        let mut smbs: Vec<SmbConfig> = Vec::new();
        let mut smb_ids: Vec<u32> = smb_luts.keys().copied().collect();
        smb_ids.sort_unstable();
        for smb in smb_ids {
            let mut les: Vec<Option<LeConfig>> = vec![None; les_per_smb as usize];
            for &lut_id in &smb_luts[&smb] {
                let lut = net.lut(lut_id);
                let slot = packing.lut_le[&lut_id] as usize;
                let input_select: Vec<u16> = lut
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(pin, &sig)| match sig {
                        SignalRef::Lut(u)
                            if packing.lut_smb.get(&u) == Some(&smb)
                                && design.slice_of(u) == slice =>
                        {
                            packing.lut_le[&u] as u16
                        }
                        _ => 0x8000 | pin as u16,
                    })
                    .collect();
                // The LUT output is captured into a flip-flop when its
                // value crosses folding cycles or feeds an architectural
                // register.
                let stores = packing.stored_smb.contains_key(&lut_id);
                let feeds_ff = net.ffs().any(|(_, ff)| ff.d == SignalRef::Lut(lut_id));
                if slot < les.len() {
                    les[slot] = Some(LeConfig {
                        truth_bits: lut.truth.bits(),
                        input_select,
                        ff_capture: u8::from(stores) | (u8::from(feeds_ff) << 1),
                        registered: stores || feeds_ff,
                    });
                }
            }
            smbs.push(SmbConfig {
                pos: pos_of[smb as usize],
                les,
            });
        }
        let routing = RoutingConfig {
            nets: routes
                .get(&slice)
                .map(|nets| {
                    nets.iter()
                        .map(|n| n.nodes.iter().map(|id| id.0).collect())
                        .collect()
                })
                .unwrap_or_default(),
        };
        cycles.push(CycleConfig { smbs, routing });
    }
    ConfigBitmap { cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_arch::ArchParams;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_netlist::PlaneSet;
    use nanomap_pack::{pack, PackOptions, TemporalDesign};
    use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};
    use nanomap_techmap::{expand, ExpandOptions};

    #[test]
    fn bitmap_has_one_cycle_per_slice() {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 4 });
        b.connect(a, 0, add, 0).unwrap();
        b.connect(c, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        let y = b.output("y", 4);
        b.connect(add, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane0 = planes.planes()[0].clone();
        let graph = ItemGraph::build(&net, &plane0, 2).unwrap();
        let schedule = schedule_fds(&net, &graph, 2, FdsOptions::default()).unwrap();
        let design = TemporalDesign::new(&net, &planes, vec![graph], vec![schedule]).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let pos: Vec<SmbPos> = (0..packing.num_smbs)
            .map(|i| SmbPos::new(i as u16, 0))
            .collect();
        let bitmap = generate_bitmap(&design, &packing, &pos, &HashMap::new(), 16);
        assert_eq!(bitmap.num_cycles(), 2);
        // Every cycle configures at least one LE and total LEs = LUTs.
        let total_les: usize = bitmap
            .cycles
            .iter()
            .flat_map(|c| &c.smbs)
            .map(|s| s.les.iter().flatten().count())
            .sum();
        assert_eq!(total_les, net.num_luts());
        assert!(bitmap.total_bits(&arch) > 0);
    }
}
