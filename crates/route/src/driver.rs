//! Whole-design routing driver: every folding cycle, then timing, usage
//! statistics and the configuration bitmap.

use std::collections::HashMap;

use nanomap_arch::{ArchParams, ChannelConfig, ConfigBitmap, DefectMap, RrGraph, TimingModel};
use nanomap_observe::span;
use nanomap_observe::{Anytime, CancelToken, Degradation};
use nanomap_pack::{Packing, Slice, SliceNets, TemporalDesign};
use nanomap_place::Placement;

use crate::bitmap::generate_bitmap;
use crate::error::RouteError;
use crate::pathfinder::{route_slice_budgeted, RouteOptions, RoutedNet};
use crate::timing::{analyze, net_delays, RoutedTiming};
use crate::usage::{tally_usage, InterconnectUsage};

/// A fully routed design.
#[derive(Debug)]
pub struct RoutedDesign {
    /// The routing-resource graph the routes refer into (kept so that
    /// downstream attribution — segment breakdowns, congestion grids —
    /// can resolve node ids without rebuilding it).
    pub graph: RrGraph,
    /// Per-slice routing trees.
    pub routes: HashMap<Slice, Vec<RoutedNet>>,
    /// Interconnect usage counters.
    pub usage: InterconnectUsage,
    /// Post-route timing.
    pub timing: RoutedTiming,
    /// The generated configuration bitmap.
    pub bitmap: ConfigBitmap,
    /// Wall-clock milliseconds spent generating the bitmap (the flow
    /// reports it as its own phase).
    pub bitmap_ms: f64,
}

/// Routes a placed design cycle by cycle and assembles the bitmap.
///
/// # Errors
///
/// Returns the first slice's routing failure (congestion or
/// disconnection), naming the failing slice and net.
#[allow(clippy::too_many_arguments)] // the flow's full context is the point
pub fn route_design(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    nets: &SliceNets,
    placement: &Placement,
    channels: &ChannelConfig,
    timing_model: &TimingModel,
    arch: &ArchParams,
    options: RouteOptions,
) -> Result<RoutedDesign, RouteError> {
    route_design_with_defects(
        design,
        packing,
        nets,
        placement,
        channels,
        timing_model,
        arch,
        options,
        &DefectMap::none(),
    )
}

/// Routes a placed design over a defective fabric: the routing-resource
/// graph is built with broken wires and stuck-open switches pruned, so
/// PathFinder negotiates around them (or fails with the failing slice and
/// net named). With [`DefectMap::none`] this is identical to
/// [`route_design`].
///
/// # Errors
///
/// Returns the first slice's routing failure, with slice and net context
/// attached.
#[allow(clippy::too_many_arguments)] // the flow's full context is the point
pub fn route_design_with_defects(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    nets: &SliceNets,
    placement: &Placement,
    channels: &ChannelConfig,
    timing_model: &TimingModel,
    arch: &ArchParams,
    options: RouteOptions,
    defects: &DefectMap,
) -> Result<RoutedDesign, RouteError> {
    route_design_budgeted(
        design,
        packing,
        nets,
        placement,
        channels,
        timing_model,
        arch,
        options,
        defects,
        &CancelToken::unlimited(),
    )
    .map(Anytime::into_value)
}

/// Budget-aware [`route_design_with_defects`]: each slice's PathFinder
/// run polls `token` between rip-up iterations. Degraded slices keep
/// their best-so-far (possibly congested) routes; the merged
/// [`Degradation`] sums completed iterations and overused nodes across
/// degraded slices. With an unlimited token this is byte-identical to
/// [`route_design_with_defects`].
///
/// # Errors
///
/// Same as [`route_design_with_defects`]; an expired budget never
/// surfaces as a routing error.
#[allow(clippy::too_many_arguments)] // the flow's full context is the point
pub fn route_design_budgeted(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    nets: &SliceNets,
    placement: &Placement,
    channels: &ChannelConfig,
    timing_model: &TimingModel,
    arch: &ArchParams,
    options: RouteOptions,
    defects: &DefectMap,
    token: &CancelToken,
) -> Result<Anytime<RoutedDesign>, RouteError> {
    let graph = RrGraph::build_with_defects(placement.grid, channels, defects);
    let mut routes: HashMap<Slice, Vec<RoutedNet>> = HashMap::new();
    let mut degraded_slices = 0u32;
    let mut degraded_iterations = 0u64;
    let mut degraded_overuse = 0.0f64;
    let num_slices = design.slices().len();
    for slice in design.slices() {
        let slice_nets = nets.of(slice);
        let mut slice_span = span!("route-slice", seed = options.seed);
        slice_span.attr("nets", slice_nets.len() as u64);
        let routed = route_slice_budgeted(&graph, slice_nets, &placement.pos_of, options, token)
            .map_err(|e| e.in_slice(slice))?;
        let (routed, degradation) = routed.into_parts();
        if let Some(d) = degradation {
            slice_span.attr("degraded", 1u64);
            degraded_slices += 1;
            degraded_iterations += d.completed_iterations;
            degraded_overuse += d.qor_estimate;
        }
        routes.insert(slice, routed);
    }
    let usage = tally_usage(&graph, &routes);
    let delays = net_delays(&graph, timing_model, &routes);
    let timing = analyze(design, packing, &delays, timing_model, arch);
    let bitmap_start = std::time::Instant::now();
    let bitmap = {
        let _span = span!("bitmap", slices = design.num_slices());
        generate_bitmap(
            design,
            packing,
            &placement.pos_of,
            &routes,
            arch.les_per_smb(),
        )
    };
    let bitmap_ms = bitmap_start.elapsed().as_secs_f64() * 1e3;
    let routed = RoutedDesign {
        graph,
        routes,
        usage,
        timing,
        bitmap,
        bitmap_ms,
    };
    Ok(if degraded_slices > 0 {
        Anytime::Degraded(
            routed,
            Degradation {
                phase: "route".into(),
                reason: format!(
                    "time budget expired: {degraded_slices} of {num_slices} slices kept \
                     best-so-far routes ({degraded_overuse:.0} overused nodes)"
                ),
                completed_iterations: degraded_iterations,
                qor_estimate: degraded_overuse,
            },
        )
    } else {
        Anytime::Complete(routed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_netlist::PlaneSet;
    use nanomap_pack::{extract_nets, pack, PackOptions};
    use nanomap_place::{place, PlaceOptions};
    use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};
    use nanomap_techmap::{expand, ExpandOptions};

    #[test]
    fn routes_end_to_end() {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 6);
        let c = b.input("b", 6);
        let mul = b.comb("mul", CombOp::Mul { width: 6 });
        b.connect(a, 0, mul, 0).unwrap();
        b.connect(c, 0, mul, 1).unwrap();
        let r = b.register("r", 12);
        b.connect(mul, 0, r, 0).unwrap();
        let y = b.output("y", 12);
        b.connect(r, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane0 = planes.planes()[0].clone();
        let p = 4;
        let stages = plane0.depth.div_ceil(p);
        let graph = ItemGraph::build(&net, &plane0, p).unwrap();
        let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default()).unwrap();
        let design = TemporalDesign::new(&net, &planes, vec![graph], vec![schedule]).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let nets = extract_nets(&design, &packing);
        let channels = ChannelConfig::nature();
        let timing = TimingModel::nature_100nm();
        let placement = place(
            &design,
            &packing,
            &nets,
            &channels,
            &timing,
            PlaceOptions::default(),
        )
        .unwrap();
        let routed = route_design(
            &design,
            &packing,
            &nets,
            &placement,
            &channels,
            &timing,
            &arch,
            RouteOptions::default(),
        )
        .unwrap();
        // Every slice routed.
        assert_eq!(routed.routes.len(), design.slices().len());
        // Bitmap covers every slice.
        assert_eq!(routed.bitmap.num_cycles() as u32, design.num_slices());
        // Routed timing is at least the logical lower bound.
        assert!(routed.timing.cycle_period >= timing.folding_cycle(1));
        // Routed delay should not be wildly above the pre-route estimate.
        assert!(routed.timing.circuit_delay <= placement.delay.circuit_delay * 5.0 + 10.0);
        // Some interconnect is used (multi-SMB design).
        if packing.num_smbs > 1 {
            assert!(routed.usage.total() > 0);
        }
        // Critical path: non-empty, single-slice, monotone arrivals ending
        // at the worst slice path.
        let path = &routed.timing.critical_path;
        assert!(!path.is_empty());
        let slice = path[0].slice;
        let mut last = 0.0;
        for node in path {
            assert_eq!(node.slice, slice, "critical path stays in one slice");
            assert!(node.arrival_ns >= last);
            last = node.arrival_ns;
        }
        assert!((last - routed.timing.max_slice_path).abs() < 1e-9);
    }
}
