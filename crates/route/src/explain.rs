//! QoR attribution: per-net segment breakdowns and K-worst path tracing.
//!
//! The headline `circuit_delay` is one number; this module explains it.
//! Every routed connection gets a per-tier delay breakdown (how many
//! direct / length-1 / length-4 / global hops, and how much each tier
//! contributes), and each folding cycle gets its K worst post-route paths
//! traced LUT by LUT with per-hop interconnect and logic delays.
//!
//! The tracer consumes the same [`input_edges`] recurrence the timing
//! analyzer uses, and builds per-hop delays as telescoping arrival
//! differences, so the hops of a traced path sum *exactly* (modulo f64
//! rounding) to the arrival of its endpoint — and the top-1 path sums to
//! `max_slice_path`, which ties it to `routed_delay_ns` through the
//! identity `(path + reconfiguration + clocking) * num_slices`.

use std::collections::HashMap;

use nanomap_arch::{ArchParams, RrGraph, TimingModel, WireType};
use nanomap_netlist::{FfId, LutId};
use nanomap_pack::{Packing, Slice, TemporalDesign};

use crate::pathfinder::RoutedNet;
use crate::timing::{compute_arrivals, input_edges, EdgeSource, InputEdge, NetDelays};

/// Per-tier decomposition of one routed connection's delay.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SegmentBreakdown {
    /// Direct-link hops on the path.
    pub direct_hops: u32,
    /// Delay contributed by direct links (ns).
    pub direct_ns: f64,
    /// Length-1 segment hops.
    pub length1_hops: u32,
    /// Delay contributed by length-1 segments (ns).
    pub length1_ns: f64,
    /// Length-4 segment hops.
    pub length4_hops: u32,
    /// Delay contributed by length-4 segments (ns).
    pub length4_ns: f64,
    /// Global-line hops.
    pub global_hops: u32,
    /// Delay contributed by global lines (ns).
    pub global_ns: f64,
    /// Programmable switch crossings (wire-to-wire transitions).
    pub switch_hops: u32,
}

impl SegmentBreakdown {
    /// Total wire hops across all tiers.
    pub fn total_hops(&self) -> u32 {
        self.direct_hops + self.length1_hops + self.length4_hops + self.global_hops
    }

    /// Total wire delay across all tiers (ns).
    pub fn total_ns(&self) -> f64 {
        self.direct_ns + self.length1_ns + self.length4_ns + self.global_ns
    }

    /// Hop count and delay for one tier, in a stable order for reports.
    pub fn tier(&self, wire: WireType) -> (u32, f64) {
        match wire {
            WireType::Direct => (self.direct_hops, self.direct_ns),
            WireType::Length1 => (self.length1_hops, self.length1_ns),
            WireType::Length4 => (self.length4_hops, self.length4_ns),
            WireType::Global => (self.global_hops, self.global_ns),
        }
    }

    fn add(&mut self, wire: WireType, delay: f64) {
        match wire {
            WireType::Direct => {
                self.direct_hops += 1;
                self.direct_ns += delay;
            }
            WireType::Length1 => {
                self.length1_hops += 1;
                self.length1_ns += delay;
            }
            WireType::Length4 => {
                self.length4_hops += 1;
                self.length4_ns += delay;
            }
            WireType::Global => {
                self.global_hops += 1;
                self.global_ns += delay;
            }
        }
    }

    /// Deterministic tie-break key (hop counts per tier, switches).
    fn key(&self) -> (u32, u32, u32, u32, u32) {
        (
            self.direct_hops,
            self.length1_hops,
            self.length4_hops,
            self.global_hops,
            self.switch_hops,
        )
    }
}

/// Segment breakdown of every (slice, driver SMB, sink SMB) connection.
///
/// Mirrors [`crate::net_delays`]: when several routed paths serve the same
/// connection, the breakdown of the slowest one is kept (ties broken
/// deterministically by hop-count key), so `total_ns` matches the delay
/// the timing analyzer charges for that hop.
pub type SegmentBreakdowns = HashMap<(Slice, u32, u32), SegmentBreakdown>;

/// Computes per-connection segment breakdowns from the per-slice routing.
pub fn segment_breakdowns(
    graph: &RrGraph,
    timing: &TimingModel,
    routes: &HashMap<Slice, Vec<RoutedNet>>,
) -> SegmentBreakdowns {
    let mut out = SegmentBreakdowns::new();
    for (&slice, nets) in routes {
        for net in nets {
            for (sink_idx, &sink) in net.sinks.iter().enumerate() {
                let mut b = SegmentBreakdown::default();
                let mut prev_was_wire = false;
                for &n in &net.sink_paths[sink_idx] {
                    match graph.node(n).wire {
                        Some(w) => {
                            b.add(w, timing.wire_delay(w));
                            if prev_was_wire {
                                b.switch_hops += 1;
                            }
                            prev_was_wire = true;
                        }
                        None => prev_was_wire = false,
                    }
                }
                let slot = out.entry((slice, net.driver, sink)).or_default();
                let better = b.total_ns() > slot.total_ns()
                    || (b.total_ns() == slot.total_ns() && b.key() < slot.key());
                if better {
                    *slot = b;
                }
            }
        }
    }
    out
}

/// What fed a path hop's LUT input on the traced path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopSource {
    /// Primary input or constant: the path starts here with no
    /// interconnect charge.
    Primary,
    /// Same-slice combinational fanin (the previous hop of the path).
    Lut {
        /// Producing LUT.
        lut: LutId,
        /// SMB the signal leaves.
        smb: u32,
    },
    /// Read of a value stored in NRAM across folding cycles.
    Stored {
        /// LUT that produced the stored value (in an earlier slice).
        producer: LutId,
        /// SMB the stored value is read from.
        smb: u32,
    },
    /// Read of an architectural flip-flop.
    Ff {
        /// The flip-flop.
        ff: FfId,
        /// SMB the flip-flop lives in.
        smb: u32,
    },
}

/// One hop of a traced path: an interconnect edge into a LUT plus the
/// LUT's own logic delay.
#[derive(Debug, Clone, PartialEq)]
pub struct PathHop {
    /// The LUT computed at this hop.
    pub lut: LutId,
    /// Diagnostic name, when the LUT has one.
    pub name: Option<String>,
    /// SMB the LUT is packed into.
    pub smb: u32,
    /// What drove the critical input of this LUT.
    pub source: HopSource,
    /// Interconnect delay of the edge into this LUT (ns; 0 for primaries).
    pub interconnect_ns: f64,
    /// Logic delay of the LUT itself (ns).
    pub lut_ns: f64,
    /// Cumulative arrival at the LUT output (ns into the folding cycle).
    pub arrival_ns: f64,
    /// Wire-tier decomposition of the interconnect hop, when it crossed
    /// SMBs over routed wires (`None` for local/primary hops).
    pub wires: Option<SegmentBreakdown>,
}

/// One traced post-route path, worst-first within its slice.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedPath {
    /// Folding cycle the path executes in.
    pub slice: Slice,
    /// Rank within the slice (0 = worst).
    pub rank: u32,
    /// Hops from path start to endpoint.
    pub hops: Vec<PathHop>,
    /// Total path delay: sum of every hop's interconnect + logic delay,
    /// equal to the endpoint's arrival time.
    pub path_delay_ns: f64,
    /// Slack against the folding-cycle budget (`max_slice_path`): the
    /// design-wide worst path has slack 0; everything else is positive.
    pub slack_ns: f64,
}

impl TracedPath {
    /// The endpoint LUT (last hop).
    pub fn endpoint(&self) -> &PathHop {
        self.hops
            .last()
            .expect("traced paths have at least one hop")
    }
}

/// K worst post-route paths per folding cycle, with the identity that
/// ties them to the headline delay.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathReport {
    /// Traced paths, sorted worst-first across the whole design
    /// (ties broken by slice, then rank).
    pub paths: Vec<TracedPath>,
    /// Worst combinational path over all slices (ns).
    pub max_slice_path_ns: f64,
    /// Fixed per-cycle overhead: reconfiguration + clock skew (ns).
    pub overhead_ns: f64,
    /// Folding-cycle period: `max_slice_path_ns + overhead_ns`.
    pub cycle_period_ns: f64,
    /// Number of folding cycles.
    pub num_slices: u32,
    /// Headline circuit delay: `cycle_period_ns * num_slices`.
    pub routed_delay_ns: f64,
}

/// Traces the K worst post-route paths of every folding cycle.
///
/// Endpoints are the K LUTs with the latest arrivals in each slice; each
/// is traced backwards along its critical input edge (the argmax of
/// `upstream + hop` over all inputs, matching the forward recurrence
/// exactly), stopping at a primary input, a stored-value read or a
/// flip-flop read. Per-hop delays telescope: they sum to the endpoint
/// arrival with no residual.
pub fn trace_critical_paths(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    delays: &NetDelays,
    breakdowns: &SegmentBreakdowns,
    timing: &TimingModel,
    arch: &ArchParams,
    k: usize,
) -> CriticalPathReport {
    let net = design.net;
    let (arrival, slice_paths) = compute_arrivals(design, packing, delays, timing, arch);
    let max_slice_path = slice_paths.values().copied().fold(0.0, f64::max);
    let overhead = timing.reconfiguration + timing.clocking;
    let cycle_period = max_slice_path + overhead;

    let mut paths = Vec::new();
    for slice in design.slices() {
        // K latest-arrival endpoints, deterministically ordered.
        let mut luts: Vec<LutId> = design.luts_in(slice);
        luts.sort_by(|a, b| {
            arrival[b]
                .partial_cmp(&arrival[a])
                .expect("finite arrivals")
                .then(a.cmp(b))
        });
        for (rank, &endpoint) in luts.iter().take(k).enumerate() {
            let mut hops = Vec::new();
            let mut cursor = Some(endpoint);
            while let Some(id) = cursor {
                let my_smb = packing.lut_smb[&id];
                let edges = input_edges(design, packing, delays, timing, arch, &arrival, id);
                // The critical input: argmax contribution, ties broken by
                // input position (stable: later inputs win, matching the
                // forward fold's `max` behavior is unnecessary since the
                // contribution value is what telescopes).
                let critical = edges
                    .iter()
                    .enumerate()
                    .max_by(|(ai, a), (bi, b)| {
                        a.contribution()
                            .partial_cmp(&b.contribution())
                            .expect("finite")
                            .then(bi.cmp(ai))
                    })
                    .map(|(_, e)| *e)
                    .unwrap_or(InputEdge {
                        source: EdgeSource::Primary,
                        src_smb: None,
                        upstream_ns: 0.0,
                        hop_ns: 0.0,
                    });
                let (source, next) = match critical.source {
                    EdgeSource::Lut(u) => (
                        HopSource::Lut {
                            lut: u,
                            smb: critical.src_smb.expect("lut edge has a source SMB"),
                        },
                        Some(u),
                    ),
                    EdgeSource::Stored(p) => (
                        HopSource::Stored {
                            producer: p,
                            smb: critical.src_smb.expect("stored edge has a source SMB"),
                        },
                        None,
                    ),
                    EdgeSource::Ff(f) => (
                        HopSource::Ff {
                            ff: f,
                            smb: critical.src_smb.expect("ff edge has a source SMB"),
                        },
                        None,
                    ),
                    EdgeSource::Primary => (HopSource::Primary, None),
                };
                let wires = critical
                    .src_smb
                    .filter(|&s| s != my_smb)
                    .and_then(|s| breakdowns.get(&(design.slice_of(id), s, my_smb)))
                    .copied();
                hops.push(PathHop {
                    lut: id,
                    name: net.lut(id).name.clone(),
                    smb: my_smb,
                    source,
                    interconnect_ns: critical.hop_ns,
                    lut_ns: timing.lut_delay,
                    arrival_ns: arrival[&id],
                    wires,
                });
                cursor = next;
            }
            hops.reverse();
            let path_delay = arrival[&endpoint];
            paths.push(TracedPath {
                slice,
                rank: rank as u32,
                hops,
                path_delay_ns: path_delay,
                slack_ns: max_slice_path - path_delay,
            });
        }
    }

    // Worst-first across the design; deterministic tie-break.
    paths.sort_by(|a, b| {
        b.path_delay_ns
            .partial_cmp(&a.path_delay_ns)
            .expect("finite path delays")
            .then(a.slice.cmp(&b.slice))
            .then(a.rank.cmp(&b.rank))
    });

    CriticalPathReport {
        paths,
        max_slice_path_ns: max_slice_path,
        overhead_ns: overhead,
        cycle_period_ns: cycle_period,
        num_slices: design.num_slices(),
        routed_delay_ns: cycle_period * f64::from(design.num_slices()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_tier_accessor_is_consistent() {
        let mut b = SegmentBreakdown::default();
        b.add(WireType::Direct, 0.25);
        b.add(WireType::Direct, 0.25);
        b.add(WireType::Global, 1.1);
        assert_eq!(b.tier(WireType::Direct), (2, 0.5));
        assert_eq!(b.tier(WireType::Global), (1, 1.1));
        assert_eq!(b.total_hops(), 3);
        assert!((b.total_ns() - 1.6).abs() < 1e-12);
    }
}
