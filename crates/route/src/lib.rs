//! Routing for NATURE: PathFinder over the hierarchical interconnect,
//! post-route timing, interconnect usage statistics and configuration
//! bitmap generation (Section 4, step 15).
//!
//! Routing "is conducted in a hierarchical fashion, first using direct
//! links, then length-1 and length-4 wire segments and finally global
//! interconnects" — realized here through tier base costs inside a
//! negotiated-congestion (PathFinder) router that runs once per folding
//! cycle, since NATURE reconfigures its switches every cycle.

#![warn(missing_docs)]

mod bitmap;
mod driver;
mod error;
mod explain;
mod pathfinder;
mod timing;
mod usage;

pub use bitmap::generate_bitmap;
pub use driver::{route_design, route_design_budgeted, route_design_with_defects, RoutedDesign};
pub use error::{describe_net, RouteError, RouteErrorKind};
pub use explain::{
    segment_breakdowns, trace_critical_paths, CriticalPathReport, HopSource, PathHop,
    SegmentBreakdown, SegmentBreakdowns, TracedPath,
};
pub use pathfinder::{route_slice, route_slice_budgeted, RouteOptions, RoutedNet};
pub use timing::{
    analyze, compute_arrivals, input_edges, net_delays, CriticalPathNode, EdgeSource, InputEdge,
    NetDelays, RoutedTiming,
};
pub use usage::{tally_congestion, tally_usage, CongestionGrid, InterconnectUsage, TierGrid};
