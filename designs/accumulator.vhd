-- 8-bit accumulator: a small but complete sequential design for driving
-- the `nanomap` CLI end to end, e.g.
--
--   nanomap designs/accumulator.vhd --verify --metrics out.json
--
entity accumulator is
  port ( step : in std_logic_vector(7 downto 0);
         q    : out std_logic_vector(7 downto 0) );
end accumulator;
architecture rtl of accumulator is
  signal state : std_logic_vector(7 downto 0);
  signal nxt   : std_logic_vector(7 downto 0);
  signal c     : std_logic;
begin
  u_add: add generic map (width => 8)
         port map (a => state, b => step, cin => '0', sum => nxt, cout => c);
  u_reg: reg generic map (width => 8) port map (d => nxt, q => state);
  q <= state;
end rtl;
