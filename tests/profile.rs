//! Integration tests for the performance-observability layer: the
//! span-stack sampling profiler, allocation/RSS telemetry, and their
//! contract with the flow's own `phase_times`.
//!
//! The sampler and the memory counters are process-global, so every
//! test that touches them serializes on [`obs_lock`].

use std::sync::Mutex;
use std::time::Duration;

use nanomap::{NanoMap, Objective, PhaseTimes};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::{ex1, paper_benchmarks};
use nanomap_observe as observe;
use nanomap_techmap::{expand, ExpandOptions};

/// The allocation counters only see heap traffic when the counting
/// wrapper is this binary's global allocator — same install as the
/// `nanomap` CLI and the bench `perf` bin.
#[global_allocator]
static ALLOC: observe::CountingAllocator = observe::CountingAllocator::system();

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Puts the global observability state back the way tier-1 tests expect
/// it (collector counters are intentionally left alone — other tests own
/// their own epochs via `reset`).
fn teardown() {
    observe::set_memory_tracking(false);
    while observe::stop_sampler().is_some() {}
}

/// The acceptance-criteria test: a profiled flow emits a valid
/// `nanomap-profile-v1` artifact whose per-phase inclusive times
/// reconcile with the flow's independently measured `phase_times`.
#[test]
fn profiled_flow_reconciles_with_phase_times() {
    let _guard = obs_lock();
    observe::reset();
    observe::set_enabled(true);
    // Sample well above the default: the optimized test profile runs the
    // paper's FIR filter in a couple hundred milliseconds, and the
    // reconciliation below wants >= ~100 samples per checked phase.
    assert!(observe::start_sampler(10_000), "sampler starts");

    let net = paper_benchmarks()
        .into_iter()
        .find(|b| b.name == "FIR")
        .expect("FIR is a paper benchmark")
        .network;
    let flow = NanoMap::new(ArchParams::paper());
    let report = flow
        .map(&net, Objective::MinAreaDelayProduct)
        .expect("FIR maps");
    let profile = observe::stop_sampler().expect("profile comes back");
    teardown();

    // The artifact is schema-tagged, parseable, and deterministic in
    // shape (re-emitting the parsed JSON reproduces the text).
    let text = profile.to_json().to_pretty_string();
    let parsed = observe::json::parse(&text).expect("profile JSON parses");
    assert_eq!(
        parsed.get("schema").and_then(observe::JsonValue::as_str),
        Some(observe::PROFILE_SCHEMA)
    );
    assert_eq!(text, parsed.to_pretty_string());

    // Sampler health: the overhead bar is < 5% of wall-clock; torn
    // reads are possible but must be rare against a single-threaded flow.
    assert!(
        profile.overhead_fraction() < 0.05,
        "overhead {:.4}",
        profile.overhead_fraction()
    );
    assert!(profile.torn_samples <= profile.ticks / 10);

    let t = report.phase_times;
    t.reconcile(0.10, 5.0).expect("phase_times self-consistent");

    // Sampling is statistical: only phases long enough to accumulate a
    // meaningful sample count are held to the reconciliation bar, and
    // the tolerance accounts for +-1-sample quantization on top of the
    // 10% artifact bar.
    let us_per_sample = profile.us_per_sample();
    assert!(us_per_sample > 0.0, "no samples at all");
    let min_ms = (us_per_sample / 1e3) * 100.0; // >= ~100 samples
    let phases = [
        ("folding-select", t.folding_select_ms),
        ("fds", t.fds_ms),
        ("pack", t.pack_ms),
        ("place", t.place_ms),
        ("route", t.route_ms),
        ("verify", t.verify_ms),
    ];
    let mut checked = 0;
    for (phase, wall_ms) in phases {
        if wall_ms < min_ms {
            continue;
        }
        let sampled_ms = profile.inclusive_ms(&format!("flow;{phase}"));
        let err = (sampled_ms - wall_ms).abs() / wall_ms;
        assert!(
            err < 0.25,
            "{phase}: sampled {sampled_ms:.1} ms vs wall {wall_ms:.1} ms ({:.0}% off)",
            err * 100.0
        );
        checked += 1;
    }
    // The flow root must always reconcile — in debug builds ex1 runs
    // long enough for thousands of samples.
    let flow_sampled = profile.inclusive_ms("flow");
    if t.total_ms >= min_ms {
        let err = (flow_sampled - t.total_ms).abs() / t.total_ms;
        assert!(
            err < 0.15,
            "flow: sampled {flow_sampled:.1} ms vs wall {:.1} ms",
            t.total_ms
        );
        checked += 1;
    }
    assert!(checked > 0, "flow too fast to validate any phase");

    // Collapsed stacks render every exclusive path.
    let collapsed = profile.collapsed();
    assert!(collapsed.lines().count() > 0);
    for line in collapsed.lines() {
        let (path, count) = line.rsplit_once(' ').expect("`path count` shape");
        assert!(!path.is_empty());
        assert!(count.parse::<u64>().expect("count parses") > 0);
    }
}

/// Deterministic ground-truth check: synthetic spans with known sleeps
/// must come back with proportionate inclusive times.
#[test]
fn sampler_tracks_synthetic_span_durations() {
    let _guard = obs_lock();
    observe::set_enabled(true);
    assert!(observe::start_sampler(4000));
    {
        let _outer = observe::span!("it-outer");
        {
            let _a = observe::span!("it-long");
            std::thread::sleep(Duration::from_millis(120));
        }
        {
            let _b = observe::span!("it-short");
            std::thread::sleep(Duration::from_millis(40));
        }
    }
    let profile = observe::stop_sampler().expect("profile comes back");
    teardown();
    let long_ms = profile.inclusive_ms("it-outer;it-long");
    let short_ms = profile.inclusive_ms("it-outer;it-short");
    let outer_ms = profile.inclusive_ms("it-outer");
    assert!(
        (long_ms - 120.0).abs() < 60.0,
        "long {long_ms:.1} ms (expected ~120)"
    );
    assert!(
        (short_ms - 40.0).abs() < 30.0,
        "short {short_ms:.1} ms (expected ~40)"
    );
    assert!(outer_ms >= long_ms + short_ms - 1.0);
    // The longer span dominates the top-K ranking.
    let top = profile.top_paths(2);
    assert_eq!(
        top.first().map(|h| h.key.as_str()),
        Some("it-outer;it-long")
    );
}

/// Memory telemetry: with the counting allocator installed and tracking
/// on, the report carries allocation counts attributed to phases; with
/// tracking off it carries nothing at all.
#[test]
fn memory_telemetry_rides_the_report_only_when_tracked() {
    let _guard = obs_lock();
    let net = expand(&ex1(4), ExpandOptions::default()).expect("expands");
    let flow = NanoMap::new(ArchParams::paper());

    // Phase attribution rides on spans, which record only while the
    // collector is enabled (exactly how the CLI's --profile sets up).
    observe::reset();
    observe::set_enabled(true);

    // Untracked: the field is absent from struct and JSON alike.
    observe::set_memory_tracking(false);
    let plain = flow
        .map(&net, Objective::MinAreaDelayProduct)
        .expect("ex1 maps");
    assert!(plain.memory.is_none());
    assert!(!plain.to_json().to_compact_string().contains("\"memory\""));

    // Tracked: counters are live and phase-attributed.
    observe::reset_memory();
    observe::set_memory_tracking(true);
    let tracked = flow
        .map(&net, Objective::MinAreaDelayProduct)
        .expect("ex1 maps");
    teardown();
    let memory = tracked.memory.clone().expect("memory report present");
    assert!(memory.alloc_count > 0, "flow allocates");
    assert!(memory.peak_live_bytes > 0);
    assert!(memory.alloc_bytes >= memory.peak_live_bytes);
    let phases: Vec<&str> = memory.by_phase.iter().map(|&(p, _, _)| p).collect();
    assert!(
        phases.iter().any(|p| *p != "other"),
        "no phase attribution: {phases:?}"
    );
    if cfg!(target_os = "linux") {
        // The flow samples RSS at least once at finalize time.
        assert!(memory.peak_rss_kb.expect("rss on linux") > 100);
    }
    // QoR artifacts remain identical either way: the tracked run's QoR
    // metrics contain no memory entries (info lives in the report only).
    let snap = observe::snapshot();
    let qor = nanomap::QorReport::from_mapping(&tracked, &flow.channels, &snap);
    assert!(
        qor.metrics.keys().all(|k| !k.contains("mem")),
        "memory must not leak into gated QoR metrics"
    );
}

/// The reconciliation helper itself, on a freshly measured flow (unit
/// tests cover synthetic numbers; this pins the real flow's contract).
#[test]
fn real_flow_phase_times_never_overshoot_total() {
    let net = expand(&ex1(4), ExpandOptions::default()).expect("expands");
    let report = NanoMap::new(ArchParams::paper())
        .map(&net, Objective::MinAreaDelayProduct)
        .expect("ex1 maps");
    let t = report.phase_times;
    assert!(t.total_ms > 0.0);
    assert!(t.phase_sum_ms() > 0.0);
    t.reconcile(0.10, 5.0).expect("self-consistent");
    // The serialized phase map carries exactly the documented keys.
    let json = t.to_json().to_compact_string();
    for key in [
        "folding_select_ms",
        "fds_ms",
        "pack_ms",
        "place_ms",
        "route_ms",
        "bitmap_ms",
        "verify_ms",
        "explain_ms",
        "total_ms",
    ] {
        assert!(json.contains(key), "{key} missing from {json}");
    }
    let _ = PhaseTimes::default();
}
