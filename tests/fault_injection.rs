//! Fault-injection harness: the flow on defective fabrics.
//!
//! Low defect rates must still map (possibly climbing the recovery
//! ladder); hopeless ones must fail *cleanly* — a structured
//! `FlowError::RecoveryExhausted` carrying the full attempt history,
//! never a panic. Every mapping here runs inside `catch_unwind` so a
//! panic anywhere on the defective path is a test failure, not an abort.

use std::panic::catch_unwind;

use nanomap::recovery::MAX_TOTAL_ATTEMPTS;
use nanomap::{FlowError, MappingReport, NanoMap, Objective};
use nanomap_arch::{ArchParams, DefectMap};
use nanomap_bench::circuits::ex1;
use nanomap_netlist::LutNetwork;
use nanomap_techmap::{expand, ExpandOptions};

fn network() -> LutNetwork {
    expand(&ex1(6), ExpandOptions::default()).expect("fig1 expands")
}

/// Maps the Fig. 1 circuit on a fabric with the given uniform defect
/// rate, trapping panics.
fn map_at(rate: f64, seed: u64) -> Result<MappingReport, FlowError> {
    let net = network();
    catch_unwind(move || {
        let mut flow = NanoMap::new(ArchParams::paper_unbounded());
        if rate > 0.0 {
            flow = flow.with_defects(DefectMap::uniform(rate, seed));
        }
        flow.map(&net, Objective::MinAreaDelayProduct)
    })
    .expect("the flow must never panic on a defective fabric")
}

/// Low defect rates map successfully; the recovery log tells a coherent
/// story either way (clean first try, or a recorded climb).
#[test]
fn low_defect_rates_still_map() {
    for rate in [0.01, 0.05] {
        let report = map_at(rate, 42).unwrap_or_else(|e| panic!("rate {rate} fails: {e}"));
        let physical = report.physical.expect("physical design runs");
        assert!(physical.routed_delay_ns > 0.0);
        let log = &report.recovery;
        assert!(log.succeeded_with.is_some(), "winner recorded");
        if log.attempts.is_empty() {
            assert!(!log.recovered(), "no failures means no recovery");
        } else {
            assert!(log.recovered(), "failures followed by success = recovery");
        }
    }
}

/// Same circuit, same rate, same seed: identical outcome. The defect
/// model must not inject nondeterminism into the flow.
#[test]
fn defect_injection_is_deterministic() {
    let a = map_at(0.05, 7).expect("maps");
    let b = map_at(0.05, 7).expect("maps");
    assert_eq!(a.folding_level, b.folding_level);
    assert_eq!(a.num_les, b.num_les);
    assert_eq!(a.recovery, b.recovery);
    let (pa, pb) = (a.physical.unwrap(), b.physical.unwrap());
    assert_eq!(pa.placement_cost, pb.placement_cost);
    assert_eq!(pa.routed_delay_ns, pb.routed_delay_ns);
}

/// A fully dead fabric exhausts the ladder and reports the whole
/// history: every attempt names its remedy, phase and error, the attempt
/// count respects the global cap, and the display is informative.
#[test]
fn dead_fabric_fails_cleanly_with_history() {
    let err = map_at(1.0, 3).expect_err("nothing maps on a dead fabric");
    let FlowError::RecoveryExhausted { ref log } = err else {
        panic!("expected RecoveryExhausted, got: {err}");
    };
    assert!(!log.attempts.is_empty());
    assert!(log.total_attempts() <= MAX_TOTAL_ATTEMPTS);
    assert!(log.succeeded_with.is_none());
    assert!(log.escalations > 0, "the ladder climbed before giving up");
    for attempt in &log.attempts {
        assert!(matches!(attempt.phase, "place" | "route"));
        assert!(!attempt.error.is_empty());
    }
    let display = err.to_string();
    assert!(display.contains("failed attempt"), "{display}");
    assert!(display.contains("last failure"), "{display}");
}

/// No defect rate anywhere on the scale panics — each run either maps or
/// returns a structured error.
#[test]
fn every_defect_rate_fails_cleanly_or_maps() {
    for rate in [0.0, 0.2, 0.5, 0.8, 1.0] {
        match map_at(rate, 11) {
            Ok(report) => assert!(report.physical.is_some()),
            Err(e) => assert!(
                e.recovery_log().is_some(),
                "rate {rate}: structured error expected, got: {e}"
            ),
        }
    }
}

/// An explicit defect map (the text format) drives the flow the same way
/// a generated one does.
#[test]
fn explicit_defect_map_round_trips_into_the_flow() {
    let text = "# one dead slot, one degraded slot\nslot 0 0\nnram 1 0 0\n";
    let map = DefectMap::parse(text).expect("parses");
    let net = network();
    let report = NanoMap::new(ArchParams::paper_unbounded())
        .with_defects(map)
        .map(&net, Objective::MinAreaDelayProduct)
        .expect("two defects cannot kill the fabric");
    assert!(report.physical.is_some());
}
