//! Paper-scale integration tests. These run the real Table 1 benchmarks
//! through the flow and are slower than the default suite, so they are
//! `#[ignore]`d; run them with:
//!
//! ```sh
//! cargo test --release --test paper_scale -- --ignored
//! ```

use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::paper_benchmarks;

/// Table 1's headline: on every benchmark, AT optimization folds deeply
/// and cuts the LE count by at least 4x against no-folding.
#[test]
#[ignore = "paper-scale: minutes in debug builds"]
fn at_optimization_beats_no_folding_everywhere() {
    let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
    for bench in paper_benchmarks() {
        let nofold = flow
            .map(&bench.network, Objective::MinDelay { max_les: None })
            .expect("no-folding maps");
        let at = flow
            .map(&bench.network, Objective::MinAreaDelayProduct)
            .expect("AT maps");
        assert!(at.folding_level.is_some(), "{}: AT must fold", bench.name);
        assert!(
            nofold.num_les >= at.num_les * 4,
            "{}: {} -> {} LEs is under 4x",
            bench.name,
            nofold.num_les,
            at.num_les
        );
        assert!(
            at.area_delay_product() < nofold.area_delay_product(),
            "{}: AT product must improve",
            bench.name
        );
    }
}

/// The k = 16 NRAM budget is honoured on every benchmark and pushes the
/// folding level to at least the paper's choice.
#[test]
#[ignore = "paper-scale: minutes in debug builds"]
fn k16_budget_honoured_everywhere() {
    let flow = NanoMap::new(ArchParams::paper()).without_physical();
    for bench in paper_benchmarks() {
        let report = flow
            .map(&bench.network, Objective::MinAreaDelayProduct)
            .expect("maps");
        assert!(
            report.nram_sets_used <= 16,
            "{}: {} sets",
            bench.name,
            report.nram_sets_used
        );
    }
}

/// Folded execution matches the reference simulator on a real benchmark's
/// chosen mapping (the full verification path at scale).
#[test]
#[ignore = "paper-scale: minutes in debug builds"]
fn folded_execution_verified_on_fir() {
    let benches = paper_benchmarks();
    let fir = benches.iter().find(|b| b.name == "FIR").expect("exists");
    let flow = NanoMap::new(ArchParams::paper_unbounded())
        .without_physical()
        .with_verification();
    flow.map(&fir.network, Objective::MinAreaDelayProduct)
        .expect("verification must pass");
}

/// Full physical design (clustering, placement, routing, bitmap) on the
/// ex1 benchmark at its AT mapping.
#[test]
#[ignore = "paper-scale: minutes in debug builds"]
fn full_physical_flow_on_ex1() {
    let benches = paper_benchmarks();
    let ex1 = benches.iter().find(|b| b.name == "ex1").expect("exists");
    let flow = NanoMap::new(ArchParams::paper_unbounded()).with_bitstream();
    let report = flow
        .map(&ex1.network, Objective::MinAreaDelayProduct)
        .expect("maps");
    let physical = report.physical.expect("physical ran");
    assert!(physical.bitmap_bits > 0);
    let bitstream = physical.bitstream.expect("bitstream emitted");
    let (parsed, lut_inputs) = nanomap_arch::unpack_bitstream(&bitstream).expect("round-trips");
    assert_eq!(lut_inputs, 4);
    assert_eq!(parsed.num_cycles() as u32, report.nram_sets_used);
}
