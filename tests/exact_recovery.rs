//! Flow-level tests for the exact SAT-based recovery rung.
//!
//! The exact rung is the *complete* final rung of the recovery ladder:
//! when every heuristic attempt has failed, a CDCL solver either finds
//! a defect-legal slot assignment (which then rides the normal
//! place/route/timing path) or proves none exists, in which case the
//! flow fails with the typed [`FlowError::ExactAssignUnsat`] naming the
//! dominant defect class — never with a vague `RecoveryExhausted`.

use std::panic::catch_unwind;

use nanomap::{FlowError, MappingReport, NanoMap, Objective, Remedy};
use nanomap_arch::{ArchParams, DefectMap};
use nanomap_bench::circuits::paper_benchmarks;
use nanomap_netlist::LutNetwork;

/// Maps `net` on a uniformly defective fabric, trapping panics.
fn map_exact(net: &LutNetwork, rate: f64, seed: u64) -> Result<MappingReport, FlowError> {
    let net = net.clone();
    catch_unwind(move || {
        NanoMap::new(ArchParams::paper_unbounded())
            .with_defects(DefectMap::uniform(rate, seed))
            .with_exact_recovery()
            .map(&net, Objective::MinAreaDelayProduct)
    })
    .expect("the flow must never panic with exact recovery enabled")
}

fn bench_net(name: &str) -> LutNetwork {
    paper_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("no benchmark named {name}"))
        .network
}

/// A fully dead fabric must fail with the *typed* infeasibility proof,
/// not `RecoveryExhausted`: the exact rung's structural precheck sees
/// every cluster's domain empty and says so, naming the defect class.
#[test]
fn dead_fabric_yields_typed_unsat_with_defect_class() {
    let net = bench_net("ex1");
    let err = map_exact(&net, 1.0, 3).expect_err("nothing maps on a dead fabric");
    let FlowError::ExactAssignUnsat {
        ref log,
        ref summary,
    } = err
    else {
        panic!("expected ExactAssignUnsat, got: {err}");
    };
    // The census accounts for the whole grid and blames a class.
    assert_eq!(summary.open_slots, 0, "a dead fabric has no open slots");
    assert!(summary.dead_slots + summary.nram_blocked_slots > 0);
    assert!(!summary.dominant_class.is_empty());
    // The heuristic history is preserved alongside the proof, and the
    // exact rung's own attempts are in it.
    assert!(!log.attempts.is_empty());
    assert!(log.attempts.iter().any(|a| a.remedy == Remedy::ExactAssign));
    let display = err.to_string();
    assert!(display.contains("infeasible"), "{display}");
    assert!(
        display.contains("dead slots") || display.contains("NRAM"),
        "the proof must name the dominant defect class: {display}"
    );
}

/// Every failed attempt carries its wall-clock cost, and the log can
/// aggregate it.
#[test]
fn failed_attempts_record_wall_clock() {
    let net = bench_net("ex1");
    let err = map_exact(&net, 1.0, 5).expect_err("dead fabric");
    let log = err.recovery_log().expect("typed errors carry the log");
    assert!(
        log.attempts.iter().any(|a| a.wall_us > 0),
        "at least one attempt must have measurable cost"
    );
    assert!(log.wall_ms() > 0.0);
    assert!(log.summary().contains("ms"), "{}", log.summary());
}

/// A tiny time budget bounds the exact rung: the flow returns a typed
/// outcome promptly instead of solving to completion.
#[test]
fn exact_rung_honors_the_time_budget() {
    let net = bench_net("ex1");
    let result = catch_unwind(|| {
        let net = net.clone();
        NanoMap::new(ArchParams::paper_unbounded())
            .with_defects(DefectMap::uniform(0.6, 9))
            .with_exact_recovery()
            .with_budget_ms(1)
            .map(&net, Objective::MinAreaDelayProduct)
    })
    .expect("budgeted exact recovery must not panic");
    if let Err(e) = result {
        assert!(
            matches!(
                e,
                FlowError::BudgetExhausted { .. }
                    | FlowError::ExactAssignUnsat { .. }
                    | FlowError::RecoveryExhausted { .. }
            ),
            "unexpected error under a 1 ms budget: {e}"
        );
    }
}

/// Scans (circuit, rate, seed) triples for fabrics where the heuristic
/// ladder gives up but the exact rung finds an assignment. Configure
/// with `PROBE_CIRCUITS` (comma list), `PROBE_RATES` (comma list) and
/// `PROBE_SEED_LO`/`PROBE_SEED_HI`, then run
/// `cargo test -p nanomap-bench --test exact_recovery probe -- --ignored --nocapture`
/// to (re)discover fixtures for the rescue tests.
#[test]
#[ignore = "fixture discovery helper, not a regression test"]
fn probe_rescue_triples() {
    let env = |key: &str, default: &str| std::env::var(key).unwrap_or_else(|_| default.into());
    let circuits = env("PROBE_CIRCUITS", "ex1,ex2,Biquad");
    let rates: Vec<f64> = env("PROBE_RATES", "0.20")
        .split(',')
        .map(|r| r.trim().parse().expect("PROBE_RATES"))
        .collect();
    let lo: u64 = env("PROBE_SEED_LO", "1").parse().expect("PROBE_SEED_LO");
    let hi: u64 = env("PROBE_SEED_HI", "40").parse().expect("PROBE_SEED_HI");
    // A run that ends with succeeded_with == ExactAssign implies the
    // heuristic rungs all failed first, so one exact-enabled run per
    // triple suffices for discovery.
    for bench in paper_benchmarks()
        .into_iter()
        .filter(|b| circuits.split(',').any(|c| c.trim() == b.name))
    {
        for &rate in &rates {
            for seed in lo..=hi {
                let tag = match map_exact(&bench.network, rate, seed) {
                    Ok(r) if r.recovery.succeeded_with == Some(Remedy::ExactAssign) => "RESCUE",
                    Ok(_) => "heur-ok",
                    Err(FlowError::ExactAssignUnsat { .. }) => "unsat",
                    Err(_) => "residual",
                };
                println!("{tag} {} rate={rate} seed={seed}", bench.name);
            }
        }
    }
    println!("probe complete");
}
