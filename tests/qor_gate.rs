//! End-to-end checks of the observability sinks and the QoR gate through
//! the `nanomap` binary: Chrome-trace export, metrics-on-stdout, QoR
//! document emission, and `qor-diff` exit codes.

use std::path::PathBuf;
use std::process::Command;

use nanomap_observe::json::{parse, JsonValue};

fn design() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../designs/accumulator.vhd")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nanomap-qor-gate-{}-{name}", std::process::id()))
}

fn nanomap(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nanomap"))
        .args(args)
        .output()
        .expect("spawns")
}

/// The acceptance scenario: one CLI run produces a Perfetto-loadable trace
/// with X events for all seven phases and counter tracks for the
/// convergence series, plus metrics and a QoR document.
#[test]
fn cli_emits_trace_metrics_and_qor() {
    let trace_path = tmp("trace.json");
    let metrics_path = tmp("metrics.json");
    let qor_path = tmp("qor.json");
    let design = design();
    let out = nanomap(&[
        design.to_str().unwrap(),
        "--chrome-trace",
        trace_path.to_str().unwrap(),
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--qor",
        qor_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --- Chrome trace: structure, phase spans, counter tracks. ---
    let trace = parse(&std::fs::read_to_string(&trace_path).unwrap()).expect("trace is JSON");
    let events = trace
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents");
    let of_phase = |ph: &str| -> Vec<&JsonValue> {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some(ph))
            .collect()
    };
    let span_names: Vec<&str> = of_phase("X")
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    for phase in [
        "folding-select",
        "fds",
        "pack",
        "place",
        "route",
        "bitmap",
        "verify",
    ] {
        assert!(span_names.contains(&phase), "missing X event for {phase}");
    }
    let counter_names: Vec<&str> = of_phase("C")
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    for series in ["place.cost", "route.overuse"] {
        assert!(
            counter_names.contains(&series),
            "missing counter track {series} (got {counter_names:?})"
        );
    }
    // Every X event has the fields Perfetto requires.
    for e in of_phase("X") {
        for field in ["pid", "tid", "ts", "dur"] {
            assert!(e.get(field).is_some(), "X event missing {field}");
        }
    }

    // --- Metrics JSON carries the series next to spans/counters. ---
    let metrics = parse(&std::fs::read_to_string(&metrics_path).unwrap()).expect("metrics JSON");
    assert!(metrics
        .get("metrics")
        .and_then(|m| m.get("series"))
        .and_then(|s| s.get("place.cost"))
        .is_some());

    // --- QoR document parses under the schema and covers the basics. ---
    let qor_text = std::fs::read_to_string(&qor_path).unwrap();
    let doc = nanomap::QorDocument::parse(&qor_text).expect("QoR schema");
    let report = doc.circuit("accumulator").expect("accumulator report");
    for metric in [
        "num_luts",
        "num_les",
        "num_smbs",
        "delay_ns",
        "channel_width",
    ] {
        assert!(report.metrics.contains_key(metric), "missing {metric}");
    }
    assert!(report.metrics.keys().any(|k| k.starts_with("peak.")));

    for p in [trace_path, metrics_path, qor_path] {
        let _ = std::fs::remove_file(p);
    }
}

/// `--metrics -` writes machine-readable JSON to stdout and moves the
/// human report to stderr; two sinks claiming stdout is an error naming
/// both flags.
#[test]
fn metrics_on_stdout_and_conflicting_sinks() {
    let design = design();
    let out = nanomap(&[design.to_str().unwrap(), "--metrics", "-"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let doc = parse(&stdout).expect("stdout is exactly one JSON document");
    assert!(doc.get("report").is_some() && doc.get("metrics").is_some());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("accumulator"),
        "human report should move to stderr"
    );

    // --trace combines with --metrics -: echo goes to stderr, stdout stays
    // a single JSON document.
    let out = nanomap(&[design.to_str().unwrap(), "--metrics", "-", "--trace"]);
    assert!(out.status.success());
    parse(&String::from_utf8(out.stdout).unwrap()).expect("stdout still pure JSON");

    let out = nanomap(&[
        design.to_str().unwrap(),
        "--metrics",
        "-",
        "--chrome-trace",
        "-",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--metrics") && stderr.contains("--chrome-trace"),
        "conflict error must name both flags: {stderr}"
    );
}

/// `qor-diff` exits zero on identical documents and non-zero once a gated
/// metric moves outside tolerance.
#[test]
fn qor_diff_gates_on_regression() {
    let qor_path = tmp("diff-base.json");
    let design = design();
    let out = nanomap(&[
        design.to_str().unwrap(),
        "--qor",
        qor_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let base = qor_path.to_str().unwrap();
    let out = nanomap(&["qor-diff", base, base]);
    assert!(out.status.success(), "identical documents must pass");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("QoR gate: PASS"));

    // Mutate one exactly-gated metric and expect failure.
    let text = std::fs::read_to_string(&qor_path).unwrap();
    let mut doc = nanomap::QorDocument::parse(&text).unwrap();
    *doc.reports[0].metrics.get_mut("num_les").unwrap() += 1.0;
    let bad_path = tmp("diff-bad.json");
    std::fs::write(&bad_path, doc.to_json().to_pretty_string()).unwrap();

    let out = nanomap(&["qor-diff", base, bad_path.to_str().unwrap()]);
    assert!(
        !out.status.success(),
        "a moved exact metric must fail the gate"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION") && stdout.contains("num_les"));

    // A missing circuit also fails.
    std::fs::write(
        &bad_path,
        nanomap::QorDocument::new(vec![])
            .to_json()
            .to_pretty_string(),
    )
    .unwrap();
    let out = nanomap(&["qor-diff", base, bad_path.to_str().unwrap()]);
    assert!(
        !out.status.success(),
        "a vanished circuit must fail the gate"
    );

    for p in [qor_path, bad_path] {
        let _ = std::fs::remove_file(p);
    }
}

/// The committed baselines stay parseable under the current schema — a
/// guard against silently rotting `results/qor/`.
#[test]
fn committed_baselines_parse() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/qor");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("results/qor exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = nanomap::QorDocument::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!doc.reports.is_empty(), "{} is empty", path.display());
        seen += 1;
    }
    assert!(
        seen >= 2,
        "expected bench + accumulator baselines, saw {seen}"
    );
}
