//! Property-style tests over the core invariants, driven by a seeded PRNG
//! (the same deterministic case set runs every time):
//!
//! * FlowMap preserves Boolean function for arbitrary gate networks;
//! * RTL expansion preserves cycle-accurate behaviour for arbitrary
//!   datapaths;
//! * FDS always emits precedence-valid, capacity-accounted schedules;
//! * temporal folding preserves circuit behaviour at every folding level
//!   (the folded executor equals the reference simulator).

use nanomap::check_folded_execution;
use nanomap_netlist::gate::{GateKind, GateNetwork, GateSignal};
use nanomap_netlist::rtl::{CombOp, RtlBuilder};
use nanomap_netlist::{LutSimulator, PlaneSet};
use nanomap_observe::rng::XorShift64Star;
use nanomap_pack::TemporalDesign;
use nanomap_sched::{schedule_fds, schedule_list, FdsOptions, ItemGraph};
use nanomap_techmap::{expand, map_network, verify_equivalence, ExpandOptions, FlowMapOptions};

// ---------- random gate networks ----------

#[derive(Debug, Clone)]
struct GateSpec {
    kind: GateKind,
    inputs: Vec<usize>, // indices into previously available signals
}

const GATE_KINDS: &[GateKind] = &[
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Not,
    GateKind::Buf,
];

fn random_gate_specs(
    rng: &mut XorShift64Star,
    num_inputs: usize,
    max_gates: usize,
) -> Vec<GateSpec> {
    let n = 1 + rng.index(max_gates);
    (0..n)
        .map(|position| {
            let kind = GATE_KINDS[rng.index(GATE_KINDS.len())];
            let available = num_inputs + position;
            let arity = if kind.is_unary() { 1 } else { 1 + rng.index(4) };
            let inputs: Vec<usize> = (0..arity).map(|_| rng.index(available)).collect();
            GateSpec { kind, inputs }
        })
        .collect()
}

fn build_gate_network(num_inputs: usize, specs: &[GateSpec]) -> GateNetwork {
    let mut net = GateNetwork::new("prop");
    let mut signals: Vec<GateSignal> = (0..num_inputs)
        .map(|i| net.add_input(format!("i{i}")))
        .collect();
    for spec in specs {
        let inputs: Vec<GateSignal> = spec.inputs.iter().map(|&i| signals[i]).collect();
        let out = net.add_gate(spec.kind, inputs);
        signals.push(out);
    }
    // Expose the last few signals as outputs.
    for (n, &sig) in signals.iter().rev().take(3).enumerate() {
        net.add_output(format!("y{n}"), sig);
    }
    net
}

/// FlowMap output is functionally identical to the gate network.
#[test]
fn flowmap_preserves_function() {
    let mut rng = XorShift64Star::new(0x9A7E_0001);
    for case in 0..48 {
        let specs = random_gate_specs(&mut rng, 6, 24);
        let gates = build_gate_network(6, &specs);
        if gates.validate().is_err() {
            continue;
        }
        let mapped = map_network(&gates, FlowMapOptions::default()).expect("maps");
        let mut sim = LutSimulator::new(&mapped.network).expect("simulates");
        for row in 0u64..64 {
            let inputs: Vec<bool> = (0..6).map(|b| (row >> b) & 1 == 1).collect();
            sim.set_inputs(&inputs);
            sim.eval_comb();
            assert_eq!(sim.outputs(), gates.eval(&inputs), "case {case} row {row}");
        }
        // Depth optimality vs the trivial one-LUT-per-gate bound.
        assert!(mapped.depth <= gates.depth(), "case {case}");
    }
}

// ---------- random RTL datapaths ----------

#[derive(Debug, Clone, Copy)]
enum OpSpec {
    Add,
    Sub,
    Mul,
    Xor,
    Mux,
    Lt,
}

const OPS: &[OpSpec] = &[
    OpSpec::Add,
    OpSpec::Sub,
    OpSpec::Mul,
    OpSpec::Xor,
    OpSpec::Mux,
    OpSpec::Lt,
];

fn random_rtl(rng: &mut XorShift64Star) -> (u32, Vec<OpSpec>) {
    let width = 2 + rng.below(5) as u32; // 2..=6
    let n = 1 + rng.index(5); // 1..=5 ops
    let ops = (0..n).map(|_| OPS[rng.index(OPS.len())]).collect();
    (width, ops)
}

fn build_rtl(width: u32, ops: &[OpSpec]) -> nanomap_netlist::rtl::RtlCircuit {
    let mut b = RtlBuilder::new("prop");
    let a = b.input("a", width);
    let c = b.input("b", width);
    let state = b.register("state", width);
    let mut sources = vec![a, c, state];
    let mut source_port = vec![0u32, 0, 0];
    for (i, op) in ops.iter().enumerate() {
        let pick = |k: usize| (sources[k % sources.len()], source_port[k % sources.len()]);
        let (x, xp) = pick(i);
        let (y, yp) = pick(i + 1);
        let node = match op {
            OpSpec::Add => {
                let gnd = b.constant(&format!("g{i}"), 1, 0);
                let n = b.comb(&format!("op{i}"), CombOp::Add { width });
                b.connect(x, xp, n, 0).unwrap();
                b.connect(y, yp, n, 1).unwrap();
                b.connect(gnd, 0, n, 2).unwrap();
                n
            }
            OpSpec::Sub => {
                let n = b.comb(&format!("op{i}"), CombOp::Sub { width });
                b.connect(x, xp, n, 0).unwrap();
                b.connect(y, yp, n, 1).unwrap();
                n
            }
            OpSpec::Mul => {
                let m = b.comb(&format!("mul{i}"), CombOp::Mul { width });
                b.connect(x, xp, m, 0).unwrap();
                b.connect(y, yp, m, 1).unwrap();
                let n = b.comb(
                    &format!("op{i}"),
                    CombOp::Slice {
                        width: 2 * width,
                        lo: 0,
                        out_width: width,
                    },
                );
                b.connect(m, 0, n, 0).unwrap();
                n
            }
            OpSpec::Xor => {
                let n = b.comb(&format!("op{i}"), CombOp::Xor { width });
                b.connect(x, xp, n, 0).unwrap();
                b.connect(y, yp, n, 1).unwrap();
                n
            }
            OpSpec::Mux => {
                let sel = b.comb(
                    &format!("sel{i}"),
                    CombOp::Slice {
                        width,
                        lo: 0,
                        out_width: 1,
                    },
                );
                b.connect(x, xp, sel, 0).unwrap();
                let n = b.comb(&format!("op{i}"), CombOp::Mux2 { width });
                b.connect(x, xp, n, 0).unwrap();
                b.connect(y, yp, n, 1).unwrap();
                b.connect(sel, 0, n, 2).unwrap();
                n
            }
            OpSpec::Lt => {
                let lt = b.comb(&format!("lt{i}"), CombOp::Lt { width });
                b.connect(x, xp, lt, 0).unwrap();
                b.connect(y, yp, lt, 1).unwrap();
                let n = b.comb(&format!("op{i}"), CombOp::Mux2 { width });
                b.connect(x, xp, n, 0).unwrap();
                b.connect(y, yp, n, 1).unwrap();
                b.connect(lt, 0, n, 2).unwrap();
                n
            }
        };
        sources.push(node);
        source_port.push(0);
    }
    let last = *sources.last().expect("non-empty");
    b.connect(last, 0, state, 0).unwrap();
    let y = b.output("y", width);
    b.connect(state, 0, y, 0).unwrap();
    b.finish().expect("generated circuits are well-formed")
}

/// RTL expansion is cycle-accurate for arbitrary datapaths.
#[test]
fn expansion_preserves_behaviour() {
    let mut rng = XorShift64Star::new(0x97_0001);
    for case in 0..32 {
        let (width, ops) = random_rtl(&mut rng);
        let circuit = build_rtl(width, &ops);
        let net = expand(&circuit, ExpandOptions::default()).expect("expands");
        let report = verify_equivalence(&circuit, &net, 64, 0xABCD).expect("runs");
        assert!(report.is_equivalent(), "case {case}: {:?}", report.mismatch);
    }
}

/// Temporal folding preserves behaviour at every feasible folding level:
/// the folded executor equals the reference simulation.
#[test]
fn folding_preserves_behaviour() {
    let mut rng = XorShift64Star::new(0x97_0002);
    for case in 0..32 {
        let (width, ops) = random_rtl(&mut rng);
        let level = 1 + rng.below(6) as u32;
        let circuit = build_rtl(width, &ops);
        let net = expand(&circuit, ExpandOptions::default()).expect("expands");
        if net.num_luts() == 0 {
            continue;
        }
        let planes = PlaneSet::extract(&net).expect("extracts");
        let stages = planes.depth_max().max(1).div_ceil(level);
        let mut graphs = Vec::new();
        let mut schedules = Vec::new();
        for plane in planes.planes() {
            let graph = ItemGraph::build(&net, plane, level).expect("builds");
            let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default())
                .expect("level<=depth is feasible");
            graphs.push(graph);
            schedules.push(schedule);
        }
        let design = TemporalDesign::new(&net, &planes, graphs, schedules).expect("valid");
        let check = check_folded_execution(&design, 24, 0x5EED);
        assert!(check.passed(), "case {case}: {:?}", check.failure);
    }
}

/// FDS and list schedules are always precedence-valid, schedule every
/// item exactly once, and FDS's peak never exceeds the trivial bound.
#[test]
fn schedulers_emit_valid_schedules() {
    let mut rng = XorShift64Star::new(0x97_0003);
    for case in 0..32 {
        let (width, ops) = random_rtl(&mut rng);
        let level = 1 + rng.below(4) as u32;
        let circuit = build_rtl(width, &ops);
        let net = expand(&circuit, ExpandOptions::default()).expect("expands");
        if net.num_luts() == 0 {
            continue;
        }
        let planes = PlaneSet::extract(&net).expect("extracts");
        for plane in planes.planes() {
            let stages = planes.depth_max().max(1).div_ceil(level);
            let graph = ItemGraph::build(&net, plane, level).expect("builds");
            let fds = schedule_fds(&net, &graph, stages, FdsOptions::default()).expect("feasible");
            assert!(fds.validate(&graph), "case {case}");
            assert_eq!(fds.stage_of.len(), graph.len(), "case {case}");
            let list = schedule_list(&graph, stages).expect("feasible");
            assert!(list.validate(&graph), "case {case}");
            let peak = fds.lut_counts(&graph).into_iter().max().unwrap_or(0);
            assert!(peak <= graph.total_weight(), "case {case}");
        }
    }
}

// ---------- plane, packing, routing and optimizer invariants ----------

/// Plane extraction is a partition: every LUT in exactly one plane,
/// per-plane depths positive and bounded by the plane's depth, and
/// depth_max equals the deepest plane.
#[test]
fn plane_extraction_is_a_partition() {
    let mut rng = XorShift64Star::new(0x97_0004);
    for case in 0..24 {
        let (width, ops) = random_rtl(&mut rng);
        let circuit = build_rtl(width, &ops);
        let net = expand(&circuit, ExpandOptions::default()).expect("expands");
        if net.num_luts() == 0 {
            continue;
        }
        let planes = PlaneSet::extract(&net).expect("extracts");
        let mut seen = vec![false; net.num_luts()];
        for plane in planes.planes() {
            assert_eq!(plane.luts.len(), plane.lut_depths.len(), "case {case}");
            for (&lut, &depth) in plane.luts.iter().zip(&plane.lut_depths) {
                assert!(!seen[lut.index()], "case {case}: lut in two planes");
                seen[lut.index()] = true;
                assert!(depth >= 1 && depth <= plane.depth, "case {case}");
                assert_eq!(planes.plane_of(lut), plane.id, "case {case}");
            }
        }
        assert!(seen.into_iter().all(|s| s), "case {case}: unassigned lut");
        assert_eq!(
            planes.depth_max(),
            planes.planes().iter().map(|p| p.depth).max().unwrap_or(0),
            "case {case}"
        );
    }
}

/// ALAP plane depths strictly increase along combinational edges inside a
/// plane (the property the cluster windows rely on).
#[test]
fn plane_depths_increase_along_edges() {
    use nanomap_netlist::SignalRef;
    let mut rng = XorShift64Star::new(0x97_0005);
    for case in 0..24 {
        let (width, ops) = random_rtl(&mut rng);
        let circuit = build_rtl(width, &ops);
        let net = expand(&circuit, ExpandOptions::default()).expect("expands");
        if net.num_luts() == 0 {
            continue;
        }
        let planes = PlaneSet::extract(&net).expect("extracts");
        for plane in planes.planes() {
            for (pos, &lut) in plane.luts.iter().enumerate() {
                for input in &net.lut(lut).inputs {
                    if let SignalRef::Lut(src) = input {
                        if planes.plane_of(*src) == plane.id {
                            let src_depth = plane.depth_of(*src);
                            assert!(
                                src_depth < plane.lut_depths[pos],
                                "case {case}: depth must increase along edges"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The optimizer preserves sequential behaviour on arbitrary circuits.
#[test]
fn optimizer_preserves_behaviour() {
    let mut rng = XorShift64Star::new(0x97_0006);
    for case in 0..24 {
        let (width, ops) = random_rtl(&mut rng);
        let circuit = build_rtl(width, &ops);
        let net = expand(&circuit, ExpandOptions::default()).expect("expands");
        let (opt, stats) = nanomap_techmap::optimize(&net);
        assert!(opt.num_luts() <= net.num_luts(), "case {case}");
        assert_eq!(stats.luts_after, opt.num_luts(), "case {case}");
        let mut sa = LutSimulator::new(&net).expect("simulates");
        let mut sb = LutSimulator::new(&opt).expect("simulates");
        let mut input_rng = XorShift64Star::new(0xC0FFEE);
        for cycle in 0..32 {
            let inputs: Vec<bool> = (0..net.num_inputs())
                .map(|_| input_rng.next_bool())
                .collect();
            sa.set_inputs(&inputs);
            sb.set_inputs(&inputs);
            sa.eval_comb();
            sb.eval_comb();
            assert_eq!(sa.outputs(), sb.outputs(), "case {case} cycle {cycle}");
            sa.step();
            sb.step();
        }
    }
}

/// Temporal clustering never overfills an SMB and assigns every LUT.
#[test]
fn packing_respects_capacity() {
    use nanomap_arch::ArchParams;
    use nanomap_pack::{pack, PackOptions};
    let mut rng = XorShift64Star::new(0x97_0007);
    for case in 0..24 {
        let (width, ops) = random_rtl(&mut rng);
        let level = 1 + rng.below(4) as u32;
        let circuit = build_rtl(width, &ops);
        let net = expand(&circuit, ExpandOptions::default()).expect("expands");
        if net.num_luts() == 0 {
            continue;
        }
        let planes = PlaneSet::extract(&net).expect("extracts");
        let stages = planes.depth_max().max(1).div_ceil(level);
        let mut graphs = Vec::new();
        let mut schedules = Vec::new();
        for plane in planes.planes() {
            let graph = ItemGraph::build(&net, plane, level).expect("builds");
            let schedule =
                schedule_fds(&net, &graph, stages, FdsOptions::default()).expect("feasible");
            graphs.push(graph);
            schedules.push(schedule);
        }
        let design = TemporalDesign::new(&net, &planes, graphs, schedules).expect("valid");
        let arch = ArchParams::paper_unbounded();
        let packing = pack(&design, &arch, PackOptions::default()).expect("packs");
        assert_eq!(packing.lut_smb.len(), net.num_luts(), "case {case}");
        for (&(smb, _), &occ) in &packing.lut_occupancy {
            assert!(smb < packing.num_smbs, "case {case}");
            assert!(occ <= arch.luts_per_smb(), "case {case}");
        }
        for (&(smb, _), &occ) in &packing.ff_occupancy {
            assert!(smb < packing.num_smbs, "case {case}");
            assert!(occ <= arch.ffs_per_smb(), "case {case}");
        }
    }
}

/// PathFinder routes random net sets within node capacities, and every
/// sink path starts at the net's source and ends at its sink.
#[test]
fn router_respects_capacities() {
    use nanomap_arch::{ChannelConfig, Grid, RrGraph, RrNodeKind};
    use nanomap_pack::SliceNet;
    use nanomap_route::{route_slice, RouteOptions};
    let grid = Grid::new(4, 4);
    let graph = RrGraph::build(grid, &ChannelConfig::nature());
    let pos: Vec<_> = grid.iter().collect();
    let mut rng = XorShift64Star::new(0x97_0008);
    for case in 0..12 {
        let num_nets = 1 + rng.index(23);
        let nets: Vec<SliceNet> = (0..num_nets)
            .map(|_| {
                let driver = rng.below(16) as u32;
                let mut sinks: Vec<u32> = (0..(1 + rng.below(3)))
                    .map(|_| rng.below(16) as u32)
                    .filter(|&s| s != driver)
                    .collect();
                sinks.dedup();
                SliceNet {
                    driver,
                    sinks,
                    critical: false,
                }
            })
            .filter(|n| !n.sinks.is_empty())
            .collect();
        if nets.is_empty() {
            continue;
        }
        let routed = route_slice(&graph, &nets, &pos, RouteOptions::default())
            .expect("4x4 nature fabric routes two dozen nets");
        // Capacity check over wire nodes.
        let mut used = std::collections::HashMap::new();
        for r in &routed {
            for &n in &r.nodes {
                if graph.node(n).wire.is_some() {
                    *used.entry(n).or_insert(0u32) += 1;
                }
            }
            for (path, &sink) in r.sink_paths.iter().zip(&r.sinks) {
                let first = *path.first().expect("non-empty path");
                let last = *path.last().expect("non-empty path");
                // Paths start somewhere on the net's tree (source or an
                // earlier branch) and end at the sink's SMB.
                assert!(r.nodes.contains(&first), "case {case}");
                match graph.node(last).kind {
                    RrNodeKind::Sink(p) => assert_eq!(p, pos[sink as usize], "case {case}"),
                    ref other => panic!("case {case}: path ends at {other:?}"),
                }
            }
        }
        for (&node, &count) in &used {
            assert!(count <= graph.node(node).capacity, "case {case}");
        }
    }
}
