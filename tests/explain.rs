//! Cross-crate checks for the QoR attribution artifact: the explain
//! report's numbers must reconcile exactly with the headline QoR it
//! explains, and the serialized artifact must be deterministic.

use nanomap::{check_artifact, MappingReport, NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::{ex1, fir, paper_benchmarks};
use nanomap_netlist::LutNetwork;
use nanomap_observe::json;
use nanomap_techmap::{expand, ExpandOptions};

fn lut4(circuit: &nanomap_netlist::rtl::RtlCircuit) -> LutNetwork {
    let opts = ExpandOptions {
        lut_inputs: 4,
        ..ExpandOptions::default()
    };
    expand(circuit, opts).expect("benchmark expands")
}

fn map_with_explain(net: &LutNetwork) -> MappingReport {
    NanoMap::new(ArchParams::paper())
        .with_explain()
        .map(net, Objective::MinAreaDelayProduct)
        .expect("flow maps")
}

/// The worst traced path's per-hop delays telescope to the headline
/// routed delay through the identity
/// `(worst_path + overhead) * num_slices = routed_delay_ns`.
#[test]
fn critical_path_hops_sum_to_routed_delay() {
    for net in [lut4(&ex1(16)), lut4(&fir())] {
        let report = map_with_explain(&net);
        let physical = report.physical.as_ref().expect("physical ran");
        let explain = report.explain.as_ref().expect("explain ran");
        explain.validate().expect("artifact invariants hold");

        let paths = &explain.paths;
        let worst = paths.paths.first().expect("at least one traced path");
        let hop_sum: f64 = worst
            .hops
            .iter()
            .map(|h| h.interconnect_ns + h.lut_ns)
            .sum();
        assert!(
            (hop_sum - worst.path_delay_ns).abs() < 1e-9,
            "hops sum {hop_sum} != path delay {}",
            worst.path_delay_ns
        );
        assert!(worst.slack_ns.abs() < 1e-9, "worst path has slack");
        let rebuilt = (paths.max_slice_path_ns + paths.overhead_ns) * f64::from(paths.num_slices);
        assert!(
            (rebuilt - physical.routed_delay_ns).abs() < 1e-9,
            "identity rebuilt {rebuilt} != routed {}",
            physical.routed_delay_ns
        );
        // Every traced path fits inside the slice budget.
        for path in &paths.paths {
            assert!(path.path_delay_ns <= paths.max_slice_path_ns + 1e-9);
            assert!(path.slack_ns >= -1e-9);
        }
    }
}

/// The per-cell congestion grid attributes every routed wire node to
/// exactly one cell: its totals equal the interconnect usage counters.
#[test]
fn congestion_grid_reconciles_with_usage_counters() {
    let report = map_with_explain(&lut4(&ex1(16)));
    let physical = report.physical.as_ref().expect("physical ran");
    let explain = report.explain.as_ref().expect("explain ran");
    let totals = explain.congestion.totals();
    assert_eq!(totals.direct, physical.usage.direct);
    assert_eq!(totals.length1, physical.usage.length1);
    assert_eq!(totals.length4, physical.usage.length4);
    assert_eq!(totals.global, physical.usage.global);
    let combined: u64 = explain.congestion.combined_cells().iter().sum();
    assert_eq!(combined, totals.total());
}

/// Same seed, same bytes: the serialized artifact carries no wall-clock
/// or iteration-order noise, and the emitted JSON survives its own
/// round-trip through the parser and validator.
#[test]
fn artifact_is_deterministic_and_self_checking() {
    let net = lut4(&ex1(16));
    let first = map_with_explain(&net);
    let second = map_with_explain(&net);
    let a = first.explain.as_ref().unwrap().to_json().to_pretty_string();
    let b = second
        .explain
        .as_ref()
        .unwrap()
        .to_json()
        .to_pretty_string();
    assert_eq!(a, b, "explain artifact differs between same-seed runs");

    let doc = json::parse(&a).expect("artifact is valid JSON");
    check_artifact(&doc).expect("parsed artifact passes validation");
}

/// Explain holds across the full paper benchmark set (the same sweep the
/// QoR snapshot generator runs with `--explain-dir`).
#[test]
#[ignore = "slow: full benchmark sweep; run with --ignored"]
fn explain_validates_on_every_paper_benchmark() {
    let flow = NanoMap::new(ArchParams::paper()).with_explain();
    for bench in paper_benchmarks() {
        let report = flow
            .map(&bench.network, Objective::MinAreaDelayProduct)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let explain = report.explain.as_ref().expect("explain ran");
        explain
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    }
}
