//! Cross-crate integration tests: the complete NanoMap flow from RTL to
//! configuration bitmap, with folded-execution verification.

use nanomap::{FlowError, NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::{ex1, fir};
use nanomap_netlist::PlaneSet;
use nanomap_techmap::{expand, verify_equivalence, ExpandOptions};

/// The full physical flow — logic mapping, FDS, clustering, placement,
/// routing, bitmap — on the Fig. 1 circuit, with verification on.
#[test]
fn fig1_full_flow_with_verification() {
    let circuit = ex1(4);
    let flow = NanoMap::new(ArchParams::paper_unbounded()).with_verification();
    let report = flow
        .map_rtl(&circuit, Objective::MinAreaDelayProduct)
        .expect("fig1 maps");
    assert!(report.folding_level.is_some(), "AT optimization folds");
    let physical = report.physical.expect("physical design runs");
    assert!(physical.num_smbs >= 1);
    assert!(physical.bitmap_bits > 0);
    assert!(physical.routed_delay_ns > 0.0);
    // Area proxy sanity: folding beats one LE per LUT.
    assert!(report.num_les < report.num_luts);
}

/// Every objective produces a mapping that satisfies its own constraints.
#[test]
fn objectives_satisfy_their_constraints() {
    let circuit = ex1(8);
    let net = expand(&circuit, ExpandOptions::default()).expect("expands");
    let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();

    let fastest = flow
        .map(&net, Objective::MinDelay { max_les: None })
        .expect("maps");
    let smallest = flow
        .map(&net, Objective::MinArea { max_delay_ns: None })
        .expect("maps");
    assert!(fastest.delay_ns <= smallest.delay_ns + 1e-9);
    assert!(smallest.num_les <= fastest.num_les);

    // A midpoint area budget is honoured.
    let budget = (fastest.num_les + smallest.num_les) / 2;
    let constrained = flow
        .map(
            &net,
            Objective::MinDelay {
                max_les: Some(budget),
            },
        )
        .expect("maps");
    assert!(constrained.num_les <= budget);
    assert!(constrained.delay_ns >= fastest.delay_ns - 1e-9);

    // A midpoint delay budget is honoured.
    let delay_budget = (fastest.delay_ns + smallest.delay_ns) / 2.0;
    let constrained = flow
        .map(
            &net,
            Objective::MinArea {
                max_delay_ns: Some(delay_budget),
            },
        )
        .expect("maps");
    assert!(constrained.delay_ns <= delay_budget + 1e-9);
    assert!(constrained.num_les >= smallest.num_les);
}

/// The NRAM set budget k is never exceeded by the chosen folding.
#[test]
fn nram_budget_respected_across_k() {
    let circuit = ex1(8);
    let net = expand(&circuit, ExpandOptions::default()).expect("expands");
    for k in [2u32, 4, 8, 16, 64] {
        let arch = ArchParams {
            num_reconf: k,
            ..ArchParams::paper()
        };
        let flow = NanoMap::new(arch).without_physical();
        let report = flow
            .map(&net, Objective::MinAreaDelayProduct)
            .expect("maps");
        assert!(
            report.nram_sets_used <= k,
            "k={k}: used {} sets",
            report.nram_sets_used
        );
    }
}

/// Folding level down => area down, delay up (the Section 2.2 tradeoff),
/// verified through the flow's own reports.
#[test]
fn folding_tradeoff_monotone_at_extremes() {
    let circuit = fir();
    let net = expand(&circuit, ExpandOptions::default()).expect("expands");
    let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
    let fastest = flow
        .map(&net, Objective::MinDelay { max_les: None })
        .expect("maps");
    let smallest = flow
        .map(&net, Objective::MinArea { max_delay_ns: None })
        .expect("maps");
    // No-folding at one extreme, deep folding at the other. (Level 2 can
    // tie level 1 in LEs when the flip-flop floor dominates; the tie goes
    // to the faster mapping.)
    assert_eq!(fastest.folding_level, None);
    assert!(smallest.folding_level.unwrap_or(u32::MAX) <= 2);
    assert!(smallest.num_les * 3 < fastest.num_les);
}

/// Expansion preserves RTL behaviour on a sequential datapath (the
/// techmap equivalence harness over many random cycles).
#[test]
fn rtl_to_lut_equivalence() {
    let circuit = ex1(6);
    let net = expand(&circuit, ExpandOptions::default()).expect("expands");
    let report = verify_equivalence(&circuit, &net, 300, 0xBEEF).expect("simulates");
    assert!(report.is_equivalent(), "{:?}", report.mismatch);
}

/// Impossible budgets fail with NoFeasibleFolding, not a panic.
#[test]
fn impossible_budgets_error_cleanly() {
    let circuit = ex1(4);
    let net = expand(&circuit, ExpandOptions::default()).expect("expands");
    let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
    let err = flow
        .map(&net, Objective::MinDelay { max_les: Some(2) })
        .unwrap_err();
    assert!(matches!(err, FlowError::NoFeasibleFolding { .. }));
    let err = flow
        .map(
            &net,
            Objective::MinArea {
                max_delay_ns: Some(0.001),
            },
        )
        .unwrap_err();
    assert!(matches!(err, FlowError::NoFeasibleFolding { .. }));
}

/// The plane decomposition is stable and matches the report.
#[test]
fn report_reflects_plane_structure() {
    let circuit = ex1(8);
    let net = expand(&circuit, ExpandOptions::default()).expect("expands");
    let planes = PlaneSet::extract(&net).expect("extracts");
    let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
    let report = flow
        .map(&net, Objective::MinAreaDelayProduct)
        .expect("maps");
    assert_eq!(report.num_planes as usize, planes.num_planes());
    assert_eq!(report.depth_max, planes.depth_max());
    assert_eq!(report.num_luts as usize, net.num_luts());
    assert_eq!(report.num_ffs as usize, net.num_ffs());
}

/// The whole flow is deterministic: identical inputs give identical
/// reports, including the physical design.
#[test]
fn flow_is_deterministic() {
    let circuit = ex1(6);
    let run = || {
        let flow = NanoMap::new(ArchParams::paper_unbounded());
        flow.map_rtl(&circuit, Objective::MinAreaDelayProduct)
            .expect("maps")
    };
    let a = run();
    let b = run();
    assert_eq!(a.folding_level, b.folding_level);
    assert_eq!(a.num_les, b.num_les);
    assert_eq!(a.delay_ns, b.delay_ns);
    let (pa, pb) = (a.physical.unwrap(), b.physical.unwrap());
    assert_eq!(pa.num_smbs, pb.num_smbs);
    assert_eq!(pa.placement_cost, pb.placement_cost);
    assert_eq!(pa.routed_delay_ns, pb.routed_delay_ns);
    assert_eq!(pa.bitmap_bits, pb.bitmap_bits);
}

/// A full physical run records a span for every flow phase in the
/// observability collector, and the JSON sink round-trips through the
/// crate's own parser.
///
/// Note: the collector is global and other tests in this binary run
/// concurrently, so this test only makes presence/shape assertions (no
/// `reset()`, no exact counts).
#[test]
fn flow_records_phase_spans_and_metrics_json() {
    nanomap_observe::set_enabled(true);
    let circuit = ex1(4);
    let flow = NanoMap::new(ArchParams::paper_unbounded()).with_verification();
    let report = flow
        .map_rtl(&circuit, Objective::MinAreaDelayProduct)
        .expect("maps");

    let snap = nanomap_observe::snapshot();
    for phase in [
        "flow",
        "folding-select",
        "fds",
        "pack",
        "place",
        "route",
        "bitmap",
        "verify",
    ] {
        assert!(
            !snap.spans_named(phase).is_empty(),
            "expected at least one `{phase}` span, got spans: {:?}",
            snap.spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }
    // Nesting: bitmap generation happens inside routing.
    let bitmap = snap.spans_named("bitmap")[0];
    let parent_id = bitmap.parent.expect("bitmap has a parent span");
    let parent = snap
        .spans
        .iter()
        .find(|s| s.id == parent_id)
        .expect("parent span recorded");
    assert_eq!(parent.name, "route");
    // The flow's instrumented kernels counted work.
    assert!(snap.counter("fds.force_evals") > 0);
    assert!(snap.counter("flow.candidates_evaluated") > 0);

    // Wall-clock phase times are populated independently of the collector.
    let t = report.phase_times;
    assert!(t.total_ms > 0.0);
    assert!(t.folding_select_ms > 0.0);
    assert!(t.verify_ms > 0.0);

    // The JSON sink emits a document our own parser accepts, containing
    // the report and every phase name.
    let doc = nanomap_observe::JsonValue::object()
        .with("report", report.to_json())
        .with("metrics", snap.to_json());
    let text = doc.to_pretty_string();
    let parsed = nanomap_observe::json::parse(&text).expect("valid JSON");
    assert_eq!(
        parsed
            .get("report")
            .and_then(|r| r.get("circuit"))
            .and_then(|c| c.as_str()),
        Some("fig1")
    );
    for phase in [
        "folding-select",
        "fds",
        "pack",
        "place",
        "route",
        "bitmap",
        "verify",
    ] {
        assert!(text.contains(&format!("\"{phase}\"")), "JSON names {phase}");
    }
}

/// Under extreme congestion the router escalates to the global tier (the
/// hierarchical escalation of Section 4.4).
#[test]
fn router_escalates_to_global_under_congestion() {
    use nanomap_arch::{ChannelConfig, Grid, RrGraph, WireType};
    use nanomap_pack::SliceNet;
    use nanomap_route::{route_slice, tally_usage, RouteOptions};
    use std::collections::HashMap;

    // A skinny fabric with almost no cheap wiring.
    let grid = Grid::new(5, 1);
    let channels = ChannelConfig {
        direct: 1,
        length1: 1,
        length4: 0,
        global: 8,
    };
    let graph = RrGraph::build(grid, &channels);
    let pos: Vec<_> = grid.iter().collect();
    // Many parallel long nets exhaust the direct/length-1 tracks.
    let nets: Vec<SliceNet> = (0..6)
        .map(|_| SliceNet {
            driver: 0,
            sinks: vec![4],
            critical: false,
        })
        .collect();
    let routed = route_slice(&graph, &nets, &pos, RouteOptions::default()).expect("routes");
    let mut routes = HashMap::new();
    routes.insert(nanomap_pack::Slice { plane: 0, stage: 0 }, routed);
    let usage = tally_usage(&graph, &routes);
    assert!(
        usage.global > 0,
        "long congested nets must escalate to global lines: {usage:?}"
    );
    let _ = WireType::Global;
}
