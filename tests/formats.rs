//! Front-end integration: VHDL and BLIF inputs through the whole flow.

use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_netlist::rtl::RtlSimulator;
use nanomap_netlist::{blif, vhdl, LutSimulator};
use nanomap_techmap::{expand, ExpandOptions};

const COUNTER_VHDL: &str = r#"
entity counter is
  port ( step : in std_logic_vector(3 downto 0);
         q    : out std_logic_vector(3 downto 0) );
end counter;
architecture rtl of counter is
  signal state : std_logic_vector(3 downto 0);
  signal nxt   : std_logic_vector(3 downto 0);
  signal c     : std_logic;
begin
  u_add: add generic map (width => 4)
         port map (a => state, b => step, cin => '0', sum => nxt, cout => c);
  u_reg: reg generic map (width => 4) port map (d => nxt, q => state);
  q <= state;
end rtl;
"#;

/// VHDL -> RTL -> LUTs -> folded mapping, with simulation cross-checks at
/// each representation.
#[test]
fn vhdl_to_bitmap() {
    let circuit = vhdl::parse(COUNTER_VHDL).expect("parses");
    // RTL behaviour: accumulates step.
    let mut sim = RtlSimulator::new(&circuit).expect("simulates");
    sim.set_input("step", 3);
    sim.step();
    sim.step();
    sim.eval_comb();
    assert_eq!(sim.output("q"), Some(6));

    // Mapped behaviour matches.
    let net = expand(&circuit, ExpandOptions::default()).expect("expands");
    let report = nanomap_techmap::verify_equivalence(&circuit, &net, 200, 7).expect("runs");
    assert!(report.is_equivalent());

    // Full flow with verification.
    let flow = NanoMap::new(ArchParams::paper()).with_verification();
    let mapped = flow
        .map(&net, Objective::MinAreaDelayProduct)
        .expect("maps");
    assert!(mapped.physical.is_some());
}

/// BLIF -> LUT network -> folded mapping, and BLIF round-trip fidelity.
#[test]
fn blif_to_mapping_and_round_trip() {
    let text = "\
.model lfsr3
.inputs en
.outputs q0 q1 q2
.latch d0 q0 re clk 0
.latch d1 q1 re clk 0
.latch d2 q2 re clk 0
.names q2 en q0 d0
0-0 1
-01 1
11- 1
.names q0 d1
1 1
.names q1 d2
1 1
.end
";
    let net = blif::parse(text).expect("parses");
    assert_eq!(net.num_ffs(), 3);

    // Round-trip through the writer.
    let net2 = blif::parse(&blif::write(&net)).expect("round-trips");
    let mut sim1 = LutSimulator::new(&net).expect("simulates");
    let mut sim2 = LutSimulator::new(&net2).expect("simulates");
    for cycle in 0..40 {
        let input = [cycle % 3 != 0];
        sim1.set_inputs(&input);
        sim2.set_inputs(&input);
        sim1.step();
        sim2.step();
        assert_eq!(sim1.outputs(), sim2.outputs(), "cycle {cycle}");
    }

    // The sequential BLIF design maps through the full flow.
    let flow = NanoMap::new(ArchParams::paper()).with_verification();
    let report = flow
        .map(&net, Objective::MinAreaDelayProduct)
        .expect("maps");
    assert!(report.num_les >= 1);
}

/// The benchmark c5315-class network survives a BLIF round trip (write,
/// re-parse, same LUT count) — exercises the writer on a real netlist.
#[test]
fn c5315_blif_round_trip() {
    let net = nanomap_bench::circuits::c5315_like();
    let text = blif::write(&net);
    let net2 = blif::parse(&text).expect("round-trips");
    // The writer adds buffer blocks for renamed outputs, so the LUT count
    // may only grow.
    assert!(net2.num_luts() >= net.num_luts());
    assert_eq!(net.num_inputs(), net2.num_inputs());
    assert_eq!(net.outputs().len(), net2.outputs().len());
    // Spot-check functional agreement on a few vectors.
    let mut sim1 = LutSimulator::new(&net).expect("simulates");
    let mut sim2 = LutSimulator::new(&net2).expect("simulates");
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..16 {
        let inputs: Vec<bool> = (0..net.num_inputs())
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> (i % 64)) & 1 == 1
            })
            .collect();
        sim1.set_inputs(&inputs);
        sim2.set_inputs(&inputs);
        sim1.eval_comb();
        sim2.eval_comb();
        assert_eq!(sim1.outputs(), sim2.outputs());
    }
}
