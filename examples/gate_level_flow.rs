//! Gate-level flow: parse a BLIF netlist, map it to LUTs with FlowMap
//! (optimal depth), and fold it onto NATURE.
//!
//! Run: `cargo run -p nanomap-bench --release --example gate_level_flow`

use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_netlist::blif;
use nanomap_netlist::gate::{GateKind, GateNetwork};
use nanomap_techmap::{map_network, FlowMapOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A: straight from BLIF (already LUT-mapped netlists). ---
    let blif_text = "\
.model majority5
.inputs a b c d e
.outputs y
.names a b c d t
111- 1
11-1 1
1-11 1
-111 1
.names t e c y
1-- 1
-11 1
.end
";
    let net = blif::parse(blif_text)?;
    println!(
        "BLIF `{}`: {} LUTs, {} inputs",
        net.name(),
        net.num_luts(),
        net.num_inputs()
    );

    // --- B: a raw gate network through FlowMap. ---
    // An 8-bit parity-checked comparator built from primitive gates.
    let mut gates = GateNetwork::new("cmp8");
    let a: Vec<_> = (0..8).map(|i| gates.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..8).map(|i| gates.add_input(format!("b{i}"))).collect();
    let bits: Vec<_> = (0..8)
        .map(|i| gates.add_gate(GateKind::Xnor, vec![a[i], b[i]]))
        .collect();
    let equal = gates.add_gate(GateKind::And, bits.clone());
    let mut parity_in = a.clone();
    parity_in.extend(b.iter().copied());
    let parity = gates.add_gate(GateKind::Xor, parity_in);
    gates.add_output("equal", equal);
    gates.add_output("parity", parity);

    let mapped = map_network(&gates, FlowMapOptions { lut_inputs: 4 })?;
    println!(
        "FlowMap: {} gates -> {} LUTs at optimal depth {}",
        gates.num_gates(),
        mapped.network.num_luts(),
        mapped.depth
    );

    // --- C: fold the mapped network onto NATURE. ---
    let flow = NanoMap::new(ArchParams::paper()).with_verification();
    let report = flow.map(&mapped.network, Objective::MinAreaDelayProduct)?;
    println!("{}", report.summary());
    Ok(())
}
