//! Quickstart: build a small RTL circuit, map it onto NATURE with
//! NanoMap, and inspect the report.
//!
//! Run: `cargo run -p nanomap-bench --release --example quickstart`

use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_netlist::rtl::{CombOp, RtlBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Describe a multiply-accumulate datapath. ---
    //     acc <= acc + a * b (8-bit operands, 16-bit accumulator)
    let mut b = RtlBuilder::new("mac8");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let acc = b.register("acc", 16);
    let mul = b.comb("mul", CombOp::Mul { width: 8 });
    b.connect(a, 0, mul, 0)?;
    b.connect(x, 0, mul, 1)?;
    let gnd = b.constant("gnd", 1, 0);
    let add = b.comb("add", CombOp::Add { width: 16 });
    b.connect(mul, 0, add, 0)?;
    b.connect(acc, 0, add, 1)?;
    b.connect(gnd, 0, add, 2)?;
    b.connect(add, 0, acc, 0)?;
    let y = b.output("y", 16);
    b.connect(acc, 0, y, 0)?;
    let circuit = b.finish()?;

    // --- 2. Configure the flow for the paper's NATURE instance. ---
    // One 4-input LUT + two flip-flops per LE, 4 LEs/MB, 4 MBs/SMB.
    let flow = NanoMap::new(ArchParams::paper_unbounded()).with_verification();

    // --- 3. Map under three different objectives. ---
    for (label, objective) in [
        (
            "fastest (no area bound)",
            Objective::MinDelay { max_les: None },
        ),
        ("smallest", Objective::MinArea { max_delay_ns: None }),
        ("best area-delay product", Objective::MinAreaDelayProduct),
    ] {
        let report = flow.map_rtl(&circuit, objective)?;
        println!("{label:>26}: {}", report.summary());
        if let Some(physical) = &report.physical {
            println!(
                "{:>26}  placed on a {}x{} grid, {} SMBs, routed delay {:.2} ns, {} bitmap bits",
                "",
                physical.grid.0,
                physical.grid.1,
                physical.num_smbs,
                physical.routed_delay_ns,
                physical.bitmap_bits
            );
        }
    }
    Ok(())
}
