//! Architecture exploration: how the NRAM set count `k` and the
//! flip-flops-per-LE choice shape the folding decision — the tradeoffs
//! behind Section 5's architecture instance (2 FFs/LE, 16-set NRAM).
//!
//! Run: `cargo run -p nanomap-bench --release --example architecture_sweep`

use nanomap::{NanoMap, Objective};
use nanomap_arch::{ArchParams, AreaModel};
use nanomap_bench::circuits::ex1;
use nanomap_techmap::{expand, ExpandOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ex1(16);
    let net = expand(&circuit, ExpandOptions::default())?;
    let area = AreaModel::nature_100nm();

    println!("ex1 (16-bit) under AT-product optimization\n");
    println!(
        "{:>4} {:>7} {:>7} {:>6} {:>10} {:>12} {:>14}",
        "k", "FFs/LE", "level", "#LEs", "delay", "NRAM sets", "silicon (um2)"
    );
    for ffs_per_le in [1u32, 2] {
        for k in [4u32, 8, 16, 32, u32::MAX] {
            let arch = ArchParams {
                num_reconf: k,
                ffs_per_le,
                ..ArchParams::paper()
            };
            let flow = NanoMap::new(arch).without_physical();
            match flow.map(&net, Objective::MinAreaDelayProduct) {
                Ok(r) => {
                    println!(
                        "{:>4} {:>7} {:>7} {:>6} {:>8.2}ns {:>12} {:>14.0}",
                        if k == u32::MAX {
                            "inf".into()
                        } else {
                            k.to_string()
                        },
                        ffs_per_le,
                        r.folding_level.map_or("-".to_string(), |l| l.to_string()),
                        r.num_les,
                        r.delay_ns,
                        r.nram_sets_used,
                        area.design_area(&arch, r.num_les),
                    );
                }
                Err(e) => println!("{k:>4} {ffs_per_le:>7}  failed: {e}"),
            }
        }
        println!();
    }
    println!("More NRAM sets permit deeper folding (fewer LEs); the second");
    println!("flip-flop per LE absorbs the register pressure deep folding");
    println!("creates, at 1.5x SMB area (Section 5).");
    Ok(())
}
