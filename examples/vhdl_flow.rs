//! End-to-end flow from VHDL source: parse the structural-VHDL subset,
//! elaborate to RTL, map onto NATURE, and show the folding decision.
//!
//! Run: `cargo run -p nanomap-bench --release --example vhdl_flow`

use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_netlist::vhdl;

const SOURCE: &str = r#"
-- A small filter stage: y_reg <= (a * coeff) + y_reg
entity stage is
  port ( a     : in  std_logic_vector(7 downto 0);
         coeff : in  std_logic_vector(7 downto 0);
         y     : out std_logic_vector(15 downto 0) );
end stage;

architecture rtl of stage is
  signal prod     : std_logic_vector(15 downto 0);
  signal acc      : std_logic_vector(15 downto 0);
  signal acc_next : std_logic_vector(15 downto 0);
  signal ovf      : std_logic;
begin
  u_mul: mul generic map (width => 8)
         port map (a => a, b => coeff, prod => prod);
  u_add: add generic map (width => 16)
         port map (a => prod, b => acc, cin => '0', sum => acc_next, cout => ovf);
  u_acc: reg generic map (width => 16)
         port map (d => acc_next, q => acc);
  y <= acc;
end rtl;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = vhdl::parse(SOURCE)?;
    println!(
        "parsed `{}`: {} nodes, {} registers",
        circuit.name(),
        circuit.num_nodes(),
        circuit.num_registers()
    );

    let flow = NanoMap::new(ArchParams::paper()).with_verification();
    let report = flow.map_rtl(&circuit, Objective::MinAreaDelayProduct)?;
    println!("{}", report.summary());
    println!(
        "folding uses {} of the NRAM's {} configuration sets",
        report.nram_sets_used,
        ArchParams::paper().num_reconf
    );
    if let Some(physical) = &report.physical {
        println!(
            "global interconnect nodes used: {} of {} total wire nodes",
            physical.usage.global,
            physical.usage.total()
        );
    }
    Ok(())
}
