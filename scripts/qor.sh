#!/usr/bin/env bash
# QoR regression gate: regenerate quality-of-results snapshots for the
# paper benchmarks (full physical flow) and the accumulator CLI design,
# then diff them against the committed baselines in results/qor/.
#
#   scripts/qor.sh            run the gate (non-zero exit on regression)
#   scripts/qor.sh --rebase   regenerate and commit-ready the baselines
#
# Fresh snapshots land at the repo root (BENCH_qor.json, ACCUM_qor.json,
# ACCUM_qor0.json; all gitignored) so a failing run leaves the evidence
# behind. The final leg re-runs the accumulator with an explicit
# `--defect-rate 0` and diffs with `--exact`: the defect layer must be a
# strict no-op on a clean fabric, bit for bit.
#
# The explain-smoke leg runs `nanomap explain` on two paper benchmarks,
# validates each artifact with `nanomap explain --check` (per-hop delay
# sums, the delay identity, congestion/usage reconciliation), and
# requires a second run to be byte-identical.
#
# The timeout-smoke leg maps under a 50 ms budget with --anytime: the run
# must degrade gracefully (exit 0 or 4, never a hang or panic) and still
# emit a parseable QoR artifact. The kill-and-resume leg SIGKILLs a run
# mid-flight, then resumes from the crash-safe checkpoint and requires
# the explain artifact to match the uninterrupted baseline byte for byte.
#
# The perf leg re-measures the paper suite (bench `perf` bin, 3 runs)
# and gates phase medians against results/perf/bench.json with
# `nanomap perf-diff`. Thresholds are deliberately loose (2x relative
# AND 25 ms absolute must both be exceeded) — this catches order-of-
# magnitude regressions, not machine noise. `--rebase` also refreshes
# the committed perf baselines (results/perf/bench.json and the repo-
# root BENCH_perf.json trajectory point, 5 runs).
#
# The runs-smoke leg exercises the structured event bus end to end: two
# accumulator runs stream `--live-status` NDJSON (to a file and to
# stdout) that `nanomap runs check-stream` must validate, every mapping
# appends to the flight-recorder ledger at results/runs/ledger.jsonl,
# and `nanomap runs list/trend/regress` must aggregate the history.
#
# The failpoints leg proves the fault-injection registry costs nothing
# disarmed (an explicitly-empty NANOMAP_FAILPOINTS run is bit-identical
# to the baseline) and fails typed when armed (artifact.write=always →
# exit 1, no torn artifact). The kill-and-resume leg additionally feeds
# `--resume` a torn checkpoint: strict mode must fail typed, `--anytime`
# must fall back to a fresh run matching the uninterrupted artifact.
#
# The yield-deep leg drives a hopeless high-defect fabric through the
# exact SAT recovery rung under a time budget: the run must exit 5
# (typed infeasibility proof naming the dominant defect class), never
# hang or fall back to the untyped recovery-exhausted error. A second
# pair of runs asserts `--exact-recovery` determinism: same seed, same
# fabric => byte-identical QoR artifacts under `qor-diff --exact`.
#
# The daemon leg boots `nanomapd`, proves repeat submissions replay from
# the crash-safe cache byte for byte, SIGKILLs the daemon and requires
# the restarted instance to serve the same bytes from disk, checks the
# ledger recorded exactly the computed run, and finishes with a SIGTERM
# drain that must exit 0.
#
# The stats-smoke leg (inside the daemon leg, against the restarted
# instance) submits a traced request, validates the `stats` op's
# nanomapd-stats-v1 document (schema + histogram/counter
# reconciliation), requires `nanomap top --once` to stay EPIPE-safe
# under `| head`, and reconstructs the traced request's timeline with
# `nanomap runs show --trace` from the daemon's --events capture.
set -euo pipefail
cd "$(dirname "$0")/.."

REBASE=0
if [[ "${1:-}" == "--rebase" ]]; then
  REBASE=1
fi

echo "==> build (release)"
cargo build --release -p nanomap -p nanomap-bench -p nanomap-daemon

echo "==> bench QoR: full physical flow over the Table 1 circuits"
./target/release/qor --out BENCH_qor.json --explain-dir EXPLAIN_qor

echo "==> accumulator QoR via the nanomap CLI"
./target/release/nanomap designs/accumulator.vhd --qor ACCUM_qor.json >/dev/null

if [[ $REBASE -eq 1 ]]; then
  mkdir -p results/qor results/perf
  cp BENCH_qor.json results/qor/bench.json
  cp ACCUM_qor.json results/qor/accumulator.json
  echo "==> perf baselines: 5-run sweep of the paper suite"
  ./target/release/perf --runs 5 --out BENCH_perf.json
  cp BENCH_perf.json results/perf/bench.json
  echo "baselines rebased -> results/qor/{bench,accumulator}.json,"
  echo "  results/perf/bench.json and BENCH_perf.json"
  echo "review the diff and commit them with the change that moved the numbers"
else
  echo "==> gate: bench circuits"
  ./target/release/nanomap qor-diff results/qor/bench.json BENCH_qor.json
  echo "==> gate: accumulator"
  ./target/release/nanomap qor-diff results/qor/accumulator.json ACCUM_qor.json
  echo "==> gate: determinism (explicit --defect-rate 0 is bit-identical)"
  ./target/release/nanomap designs/accumulator.vhd --defect-rate 0 \
    --qor ACCUM_qor0.json >/dev/null
  ./target/release/nanomap qor-diff --exact results/qor/accumulator.json ACCUM_qor0.json
  echo "==> gate: explain smoke (artifact invariants on two paper benchmarks)"
  for circuit in ex1 FIR; do
    ./target/release/nanomap explain --check "EXPLAIN_qor/$circuit.explain.json"
  done
  echo "==> gate: explain determinism (second sweep is byte-identical)"
  rm -rf results/runs
  ./target/release/qor --out BENCH_qor2.json --explain-dir EXPLAIN_qor2 \
    --ledger results/runs/ledger.jsonl 2>/dev/null
  for circuit in ex1 FIR; do
    cmp "EXPLAIN_qor/$circuit.explain.json" "EXPLAIN_qor2/$circuit.explain.json"
  done
  ./target/release/nanomap explain designs/accumulator.vhd \
    --out ACCUM_explain.json >/dev/null
  ./target/release/nanomap explain --check ACCUM_explain.json
  echo "==> gate: timeout smoke (50 ms budget degrades gracefully)"
  set +e
  ./target/release/nanomap designs/accumulator.vhd --time-budget-ms 50 --anytime \
    --qor TIMEOUT_qor.json >/dev/null 2>&1
  status=$?
  set -e
  if [[ $status -ne 0 && $status -ne 4 ]]; then
    echo "timeout smoke: expected exit 0 (clean) or 4 (degraded), got $status" >&2
    exit 1
  fi
  # Atomic sinks: the artifact is complete, valid JSON or absent — a
  # self-diff parses it through the same reader the gate uses.
  ./target/release/nanomap qor-diff TIMEOUT_qor.json TIMEOUT_qor.json >/dev/null
  echo "==> gate: kill-and-resume (checkpoint reproduces the uninterrupted run)"
  rm -rf CKPT_resume
  ./target/release/nanomap designs/accumulator.vhd --checkpoint-dir CKPT_resume \
    --explain BASE_explain.json >/dev/null
  # Simulate a crash: SIGKILL a fresh run mid-flight. Atomic writes mean
  # the checkpoint left behind is a complete earlier-phase snapshot,
  # never a truncated file.
  ./target/release/nanomap designs/accumulator.vhd --checkpoint-dir CKPT_resume \
    --explain KILLED_explain.json >/dev/null 2>&1 &
  victim=$!
  kill -9 "$victim" 2>/dev/null || true
  wait "$victim" 2>/dev/null || true
  ./target/release/nanomap designs/accumulator.vhd \
    --resume CKPT_resume/accumulator.ckpt.json --explain RESUME_explain.json >/dev/null
  cmp BASE_explain.json RESUME_explain.json
  # Torn checkpoint: strict --resume must fail with a typed error (never
  # a panic), and --anytime must fall back to a fresh run that still
  # reproduces the uninterrupted artifact.
  head -c 64 CKPT_resume/accumulator.ckpt.json > CKPT_torn.json
  set +e
  ./target/release/nanomap designs/accumulator.vhd \
    --resume CKPT_torn.json >/dev/null 2>TORN_err.log
  torn_status=$?
  set -e
  if [[ $torn_status -eq 0 || $torn_status -gt 4 ]]; then
    echo "torn resume: expected a typed failure (1-4), got $torn_status" >&2
    cat TORN_err.log >&2
    exit 1
  fi
  ./target/release/nanomap designs/accumulator.vhd --resume CKPT_torn.json \
    --anytime --explain TORN_resume_explain.json >/dev/null 2>&1
  cmp BASE_explain.json TORN_resume_explain.json
  echo "==> gate: perf (phase medians vs results/perf/bench.json)"
  ./target/release/perf --runs 3 --out BENCH_perf_new.json --profile-dir PERF_prof
  ./target/release/nanomap perf-diff --rel 2.0 --abs-ms 25 \
    results/perf/bench.json BENCH_perf_new.json
  echo "==> gate: runs smoke (live NDJSON stream + flight-recorder ledger)"
  # Stream to a file; the capture must parse, nest, and end in run-end.
  ./target/release/nanomap designs/accumulator.vhd \
    --live-status RUNS_events.ndjson --ledger results/runs/ledger.jsonl \
    >/dev/null
  ./target/release/nanomap runs check-stream RUNS_events.ndjson
  # Stream to stdout: `-` keeps stdout pure NDJSON (report on stderr),
  # so the live protocol composes with pipes.
  ./target/release/nanomap designs/accumulator.vhd --live-status - \
    --ledger results/runs/ledger.jsonl 2>/dev/null >RUNS_events_stdout.ndjson
  ./target/release/nanomap runs check-stream RUNS_events_stdout.ndjson
  # The ledger now holds the paper suite (appended by the explain
  # determinism sweep) plus two accumulator runs: the history tooling
  # must aggregate it.
  ./target/release/nanomap runs --ledger results/runs/ledger.jsonl list
  ./target/release/nanomap runs --ledger results/runs/ledger.jsonl trend
  ./target/release/nanomap runs --ledger results/runs/ledger.jsonl regress
  echo "==> gate: failpoints (disarmed = zero drift, armed = typed failure)"
  # The fault-injection registry must be a strict no-op when disarmed:
  # an explicitly-empty NANOMAP_FAILPOINTS run is bit-identical to the
  # committed baseline.
  NANOMAP_FAILPOINTS="" ./target/release/nanomap designs/accumulator.vhd \
    --defect-rate 0 --qor FP_disarmed_qor.json >/dev/null
  ./target/release/nanomap qor-diff --exact results/qor/accumulator.json \
    FP_disarmed_qor.json
  # Armed, the same binary fails the artifact write with a typed error —
  # exit 1, no panic, and the atomic sink leaves no torn file behind.
  set +e
  NANOMAP_FAILPOINTS="artifact.write=always" ./target/release/nanomap \
    designs/accumulator.vhd --qor FP_armed_qor.json >/dev/null 2>FP_err.log
  fp_status=$?
  set -e
  if [[ $fp_status -ne 1 ]]; then
    echo "armed failpoint: expected exit 1, got $fp_status" >&2
    cat FP_err.log >&2
    exit 1
  fi
  if [[ -e FP_armed_qor.json ]]; then
    echo "armed failpoint: torn artifact FP_armed_qor.json left behind" >&2
    exit 1
  fi
  echo "==> gate: yield-deep (exact rung proves infeasibility, typed exit 5)"
  set +e
  ./target/release/nanomap designs/accumulator.vhd --defect-rate 1.0 \
    --exact-recovery --time-budget-ms 10000 >/dev/null 2>YIELD_deep_err.log
  deep_status=$?
  set -e
  if [[ $deep_status -ne 5 ]]; then
    echo "yield-deep: expected exit 5 (proven infeasible), got $deep_status" >&2
    cat YIELD_deep_err.log >&2
    exit 1
  fi
  grep -q 'infeasibility proof' YIELD_deep_err.log
  echo "==> gate: exact-recovery determinism (same seed is byte-identical)"
  ./target/release/nanomap designs/accumulator.vhd --defect-rate 0.2 \
    --defect-seed 1 --exact-recovery --qor EXACT_a_qor.json >/dev/null
  ./target/release/nanomap designs/accumulator.vhd --defect-rate 0.2 \
    --defect-seed 1 --exact-recovery --qor EXACT_b_qor.json >/dev/null
  ./target/release/nanomap qor-diff --exact EXACT_a_qor.json EXACT_b_qor.json
  echo "==> gate: daemon (cache replay, kill -9 survival, graceful drain)"
  rm -rf DAEMON_state DAEMON_ledger.jsonl nanomapd-stats.json
  start_daemon() {
    : > DAEMON_out.log
    ./target/release/nanomapd --addr 127.0.0.1:0 --state-dir DAEMON_state \
      --ledger DAEMON_ledger.jsonl "$@" > DAEMON_out.log 2>DAEMON_err.log &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
      grep -q 'listening on' DAEMON_out.log && break
      sleep 0.1
    done
    DAEMON_ADDR=$(sed -n 's/.*listening on //p' DAEMON_out.log | head -1)
    if [[ -z "$DAEMON_ADDR" ]]; then
      echo "nanomapd did not announce an address" >&2
      cat DAEMON_err.log >&2
      exit 1
    fi
  }
  start_daemon
  ./target/release/nanomap submit designs/accumulator.vhd \
    --addr "$DAEMON_ADDR" --report DAEMON_first.json 2>/dev/null
  ./target/release/nanomap submit designs/accumulator.vhd \
    --addr "$DAEMON_ADDR" --report DAEMON_hit.json 2>/dev/null
  cmp DAEMON_first.json DAEMON_hit.json
  # kill -9: no drain, no cleanup. Durable state must survive intact.
  kill -9 "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  start_daemon --events DAEMON_events.ndjson --stats-interval-ms 200
  ./target/release/nanomap submit designs/accumulator.vhd \
    --addr "$DAEMON_ADDR" --report DAEMON_replay.json 2>DAEMON_replay.log
  cmp DAEMON_first.json DAEMON_replay.json
  grep -q 'cache hit' DAEMON_replay.log
  # Exactly one computed run reached the ledger (hits are replays), and
  # the history tooling reads it like any CLI traffic.
  [[ $(wc -l < DAEMON_ledger.jsonl) -eq 1 ]]
  ./target/release/nanomap runs --ledger DAEMON_ledger.jsonl list >/dev/null
  echo "==> gate: stats smoke (stats op, nanomap top, trace reconstruction)"
  # A traced submit under a fresh objective: a cache miss, so the trace
  # id must reach the ledger record as well as the service events. The
  # client echoes the propagated id on stderr.
  ./target/release/nanomap submit designs/accumulator.vhd \
    --addr "$DAEMON_ADDR" --objective delay --trace-id feedfacecafebeef \
    --report DAEMON_traced.json 2>DAEMON_traced.log
  grep -q 'trace feedfacecafebeef' DAEMON_traced.log
  # `top --once` emits one nanomapd-stats-v1 line; the histogram counts
  # must reconcile exactly with the lifetime counters.
  ./target/release/nanomap top --addr "$DAEMON_ADDR" --once > DAEMON_stats.json
  python3 - <<'PYEOF'
import json
doc = json.load(open('DAEMON_stats.json'))
assert doc['schema'] == 'nanomapd-stats-v1', doc['schema']
c, lat = doc['counters'], doc['latency_us']
assert lat['ok']['count'] == c['served'], (lat, c)
assert lat['shed']['count'] + lat['shutdown']['count'] == c['shed'], (lat, c)
assert lat['panic']['count'] == c['panics'], (lat, c)
assert (lat['invalid']['count'] + lat['budget']['count']
        + lat['failed']['count']) == c['failures'], (lat, c)
assert c['served'] >= 2 and c['cache_hits'] >= 1, c
for seg in ('queue', 'compute', 'cache', 'serialize'):
    assert seg in doc['segments_us'], doc['segments_us']
for field in ('uptime_ms', 'version', 'draining', 'gauges'):
    assert field in doc, field
print('stats smoke: schema + reconciliation OK')
PYEOF
  # `top --once | head` must stay EPIPE-safe: exit 0 on a closed pipe.
  ./target/release/nanomap top --addr "$DAEMON_ADDR" --once | head -c 64 >/dev/null
  # The ticker persisted a crash-safe snapshot next to the ledger (one
  # cadence of slack for the first tick), and the events capture had
  # time to drain.
  sleep 0.5
  grep -q 'nanomapd-stats-v1' nanomapd-stats.json
  # Trace reconstruction: the --events capture and the ledger agree.
  ./target/release/nanomap runs show --trace feedfacecafebeef \
    --events DAEMON_events.ndjson --ledger DAEMON_ledger.jsonl > DAEMON_trace.log
  grep -q 'completed' DAEMON_trace.log
  grep -q 'feedfacecafebeef' DAEMON_trace.log
  # SIGTERM with nothing in flight: clean drain, exit 0.
  kill -TERM "$DAEMON_PID"
  set +e
  wait "$DAEMON_PID"
  drain_status=$?
  set -e
  if [[ $drain_status -ne 0 ]]; then
    echo "nanomapd drain: expected exit 0, got $drain_status" >&2
    cat DAEMON_err.log >&2
    exit 1
  fi
  echo "QoR gate passed."
fi
