#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the offline tier-1 suite.
# Mirrors .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: release build + tests (offline)"
cargo build --release --workspace --offline
cargo test --workspace --offline -q

echo "All checks passed."
echo "(CI parity: .github/workflows/ci.yml additionally runs the QoR gate"
echo " via scripts/qor.sh — which includes the perf-diff leg against"
echo " results/perf/bench.json — and a perf-smoke job: 1 benchmark, loose"
echo " catastrophe-only thresholds, profile-artifact validation.)"
