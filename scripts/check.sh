#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the offline tier-1 suite.
# Mirrors .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: release build + tests (offline)"
cargo build --release --workspace --offline
cargo test --workspace --offline -q

echo "All checks passed."
